"""Transient analysis: trapezoidal / backward-Euler with adaptive steps.

The integrator is charge-based: at each accepted time point the solver
records the charge of every dynamic term, and each Newton solve at the
new time point stamps the companion current

    BE:    i = (q(x) - q_prev) / dt
    TRAP:  i = 2 (q(x) - q_prev) / dt - i_prev

Waveform breakpoints (pulse edges etc.) are always landed on exactly.

Two step controllers are available (``TransientOptions.step_control``):

* ``"lte"`` (default) -- a local-truncation-error controller: each
  accepted candidate solution is compared against a polynomial
  predictor extrapolated through the last accepted points; the
  difference, scaled by the standard per-method error constant
  (``dt^3 x'''/12`` for trap, ``dt^2 x''/2`` for backward Euler),
  estimates the LTE, and the step size is driven toward the
  ``reltol``/``abstol`` target.  Steps whose estimated error exceeds
  the target are rejected and retried smaller -- telemetry
  distinguishes these *LTE rejections* from *Newton rejections*.
* ``"legacy"`` -- the original grow-on-easy-steps heuristic, kept
  bit-compatible (it also pins the Newton kernel to the
  always-refactorize linear solver) for reproducing old waveforms.

The per-step Newton solves share one Jacobian LU factorization through
a :class:`~repro.spice.strategies.LuReuseState` held across accepted
steps and invalidated on every dt change; see
:class:`~repro.spice.strategies.NewtonOptions.lu_reuse`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import math
import time as _time

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from ..scope.capture import ScopeSession

from .. import telemetry
from ..errors import AnalysisError, ConvergenceError, NetlistError
from .dc import NewtonOptions, _newton, operating_point
from .elements import CurrentSource, Stamper, VoltageSource
from .netlist import Circuit
from .results import OpResult, TranResult
from .strategies import LuReuseState


@dataclass(frozen=True)
class TransientOptions:
    """Transient-engine knobs.

    Attributes:
        dt_initial: First step size [s]; default t_stop / 1000.
        dt_min: Smallest allowed step [s]; default t_stop * 1e-9.
        dt_max: Largest allowed step [s]; default t_stop / 50.
        method: 'trap' (default) or 'be'.
        newton: Nonlinear-solver options per step.
        record_currents: Also record branch currents of voltage sources.
        max_rejections: Total step-rejection budget for the whole run
            (None: unlimited), counting Newton and LTE rejections
            alike.  A circuit that keeps rejecting steps is diagnosed
            early with its telemetry instead of grinding the step size
            down to ``dt_min``.
        step_control: ``"lte"`` (default) for the truncation-error
            controller, ``"legacy"`` for the pre-LTE grow-only
            heuristic (bit-compatible: also disables LU reuse in the
            per-step Newton solves).
        reltol: Relative waveform-error target per step (LTE control).
        abstol: Absolute waveform-error floor per step [V].
        trtol: Truncation-error overestimation divisor (SPICE's TRTOL).
            The divided-difference LTE estimate is conservative by
            roughly this factor on smooth waveforms.
        max_wall_time: Wall-clock budget [s] for the whole run (initial
            operating point included).  When exceeded, the run aborts
            with :class:`~repro.errors.ConvergenceError` carrying the
            :class:`TransientTelemetry` gathered so far (stage
            ``"wall-clock"``); None (default) means unlimited and
            leaves the step loop's instruction sequence untouched.
    """

    dt_initial: float | None = None
    dt_min: float | None = None
    dt_max: float | None = None
    method: str = "trap"
    newton: NewtonOptions = NewtonOptions(max_iterations=60)
    record_currents: bool = False
    max_rejections: int | None = None
    step_control: str = "lte"
    reltol: float = 1.0e-3
    abstol: float = 1.0e-6
    trtol: float = 7.0
    max_wall_time: float | None = None


@dataclass
class TransientTelemetry:
    """Step-acceptance record of one transient run.

    Attributes:
        steps_accepted: Time points committed.
        steps_rejected: Attempts that shrank the step (all causes).
        newton_rejections: Rejections caused by a Newton failure.
        lte_rejections: Rejections caused by the LTE controller.
        newton_iterations: Total Newton iterations over accepted steps.
        rejection_times: Simulation times [s] at which rejections
            happened (capped at 64 entries; earliest kept).
        dt_smallest: Smallest step size actually committed [s].
    """

    steps_accepted: int = 0
    steps_rejected: int = 0
    newton_rejections: int = 0
    lte_rejections: int = 0
    newton_iterations: int = 0
    rejection_times: list[float] = field(default_factory=list)
    dt_smallest: float = float("inf")

    _REJECTION_LOG_LIMIT = 64

    def record_rejection(self, time: float, kind: str = "newton") -> None:
        self.steps_rejected += 1
        if kind == "lte":
            self.lte_rejections += 1
        else:
            self.newton_rejections += 1
        if len(self.rejection_times) < self._REJECTION_LOG_LIMIT:
            self.rejection_times.append(time)

    def describe(self) -> str:
        rate = self.steps_rejected / max(
            1, self.steps_accepted + self.steps_rejected)
        # dt_smallest is the identity of min() until a step commits; a
        # run that died before its first commit must not report an
        # "inf seconds" step size.
        dt_text = (f"{self.dt_smallest:.3e} s"
                   if math.isfinite(self.dt_smallest)
                   else "n/a (no committed steps)")
        text = (f"{self.steps_accepted} steps accepted, "
                f"{self.steps_rejected} rejected ({rate:.0%}), "
                f"{self.newton_iterations} Newton iterations, "
                f"smallest dt {dt_text}")
        # Breakdown appended after the historical string shape, so
        # prefix-matching log parsers keep working.
        if self.steps_rejected:
            text += (f"; rejections: {self.newton_rejections} newton, "
                     f"{self.lte_rejections} lte")
        return text


#: Breakpoints closer together than this fraction of t_stop are merged
#: (and ones this close to t=0 / t=t_stop dropped): two waveform edges
#: a few float-ulps apart must not force a sub-``dt_min`` landing step.
_BREAKPOINT_MERGE_RTOL = 1.0e-9


def _breakpoints(circuit: Circuit, t_stop: float) -> list[float]:
    from .subckt import Instance
    points: set[float] = set()

    def collect(element) -> None:
        if isinstance(element, (VoltageSource, CurrentSource)):
            # breakpoints_within drops corners at or beyond t_stop at
            # the waveform (pre-merge), and lets periodic waveforms
            # generate corners for the whole window instead of a
            # fixed-length table.
            for t in element.waveform.breakpoints_within(t_stop):
                if 0.0 < t < t_stop:
                    points.add(float(t))
        elif isinstance(element, Instance):
            for source in element.waveform_sources():
                collect(source)

    for element in circuit.elements:
        collect(element)
    merge_below = _BREAKPOINT_MERGE_RTOL * t_stop
    merged: list[float] = []
    for t in sorted(points):
        if t <= merge_below or t >= t_stop - merge_below:
            continue  # coincides with an endpoint the loop lands anyway
        if merged and t - merged[-1] <= merge_below:
            continue  # near-duplicate edge: keep the earliest
        merged.append(t)
    return merged


#: Step-growth cap, shrink floor and safety factor of the LTE
#: controller (standard embedded-error-controller constants).
_LTE_MAX_GROWTH = 3.0
_LTE_MIN_SHRINK = 0.1
_LTE_SAFETY = 0.9

#: First step after a waveform corner, as a fraction of the run to the
#: next breakpoint.  The predictor history is empty right after a
#: corner, so that one step is taken blind (no LTE check); starting it
#: small bounds the unchecked error, and the controller's growth cap
#: recovers the step size within a couple of accepted steps.
_BREAKPOINT_RESTART_FRACTION = 0.125


def _predict(t_new: float, hist_t: list[float],
             hist_x: list[np.ndarray], k: int) -> np.ndarray:
    """Lagrange extrapolation through the last ``k`` accepted points."""
    ts = hist_t[-k:]
    xs = hist_x[-k:]
    pred = np.zeros_like(xs[0])
    for i in range(k):
        weight = 1.0
        for j in range(k):
            if j != i:
                weight *= (t_new - ts[j]) / (ts[i] - ts[j])
        pred += weight * xs[i]
    return pred


def _lte_norm(t_new: float, x_new: np.ndarray, x_pred: np.ndarray,
              hist_t: list[float], hist_x: list[np.ndarray],
              n_nodes: int, order: int,
              options: TransientOptions) -> float:
    """Estimated LTE over the node voltages, normalised to the
    ``reltol``/``abstol`` target (``<= 1`` accepts the step).

    The predictor difference ``x_new - p(t_new)`` equals
    ``prod(t_new - t_i) * DD_{k}`` with ``DD_k`` the k-th divided
    difference including the new point, which yields the standard
    truncation-error estimates ``dt^3 x'''/12`` (trap, ``x''' ~ 6 DD3``)
    and ``dt^2 x''/2`` (BE, ``x'' ~ 2 DD2``).
    """
    if n_nodes == 0:
        return 0.0
    err = np.abs(x_new[:n_nodes] - x_pred[:n_nodes])
    dt = t_new - hist_t[-1]
    if order == 2:
        w = (dt * (t_new - hist_t[-2]) * (t_new - hist_t[-3]))
        lte = err * (dt ** 3) / (2.0 * w)
    else:
        w = dt * (t_new - hist_t[-2])
        lte = err * (dt ** 2) / w
    tol = options.abstol + options.reltol * np.maximum(
        np.abs(x_new[:n_nodes]), np.abs(hist_x[-1][:n_nodes]))
    return float(np.max(lte / (options.trtol * tol)))


def _lte_factor(err_norm: float, order: int) -> float:
    """Step-scale factor an error norm asks for (clamped by caller)."""
    if err_norm <= 0.0:
        return _LTE_MAX_GROWTH
    return _LTE_SAFETY * err_norm ** (-1.0 / (order + 1))


def _lte_norms_batch(t_new: float, X_new: np.ndarray,
                     X_pred: np.ndarray, hist_t: list[float],
                     X_last: np.ndarray, n_nodes: int, order: int,
                     options: TransientOptions) -> np.ndarray:
    """Per-lane twin of :func:`_lte_norm` for the batched transient
    engine: one normalised error norm per lane row of ``X_new`` (A, N),
    against the shared-grid history times ``hist_t`` and the last
    accepted solutions ``X_last`` (A, N).  Row ``k`` equals a serial
    ``_lte_norm`` call on lane ``k``'s vectors."""
    if n_nodes == 0:
        return np.zeros(X_new.shape[0])
    err = np.abs(X_new[:, :n_nodes] - X_pred[:, :n_nodes])
    dt = t_new - hist_t[-1]
    if order == 2:
        w = (dt * (t_new - hist_t[-2]) * (t_new - hist_t[-3]))
        lte = err * (dt ** 3) / (2.0 * w)
    else:
        w = dt * (t_new - hist_t[-2])
        lte = err * (dt ** 2) / w
    tol = options.abstol + options.reltol * np.maximum(
        np.abs(X_new[:, :n_nodes]), np.abs(X_last[:, :n_nodes]))
    return np.max(lte / (options.trtol * tol), axis=1)


def transient(circuit: Circuit, t_stop: float,
              options: TransientOptions | None = None,
              initial_op: OpResult | None = None,
              max_wall_time: float | None = None,
              scope: "ScopeSession | None" = None) -> TranResult:
    """Integrate ``circuit`` from t = 0 (DC operating point) to ``t_stop``.

    Under an active telemetry trace the whole run is wrapped in a
    ``transient`` span: step-acceptance counters, one ``step-rejected``
    event per shrink (annotated with its cause, ``newton`` or ``lte``),
    and the per-step Newton spans of the inner solver nest underneath.

    ``max_wall_time`` is a convenience override for
    :attr:`TransientOptions.max_wall_time`.

    ``scope`` attaches a :class:`repro.scope.capture.ScopeSession`: the
    session sees every committed sample (t = 0 included) for triggered
    ring-buffer capture.  With ``scope.replace_dense`` set the engine
    skips its own dense full-history record entirely -- the returned
    result then carries the time axis and telemetry but an empty
    ``voltages`` dict, and the session's bounded windows are the only
    waveform storage of the run (O(window), not O(steps)).
    """
    if t_stop <= 0.0:
        raise NetlistError(f"t_stop must be positive, got {t_stop}")
    options = options or TransientOptions()
    if max_wall_time is not None:
        options = replace(options, max_wall_time=max_wall_time)
    if options.method not in ("trap", "be"):
        raise NetlistError(f"unknown method {options.method!r}")
    if options.step_control not in ("lte", "legacy"):
        raise NetlistError(
            f"step_control must be 'lte' or 'legacy', "
            f"got {options.step_control!r}")
    with telemetry.span("transient", circuit=circuit.name,
                        t_stop=t_stop, method=options.method,
                        step_control=options.step_control) as tspan:
        return _transient_run(circuit, t_stop, options, initial_op, tspan,
                              scope)


def _transient_run(circuit: Circuit, t_stop: float,
                   options: TransientOptions,
                   initial_op: OpResult | None, tspan,
                   scope: "ScopeSession | None" = None) -> TranResult:
    dt = options.dt_initial or t_stop / 1000.0
    dt_min = options.dt_min or t_stop * 1e-9
    dt_max = options.dt_max or t_stop / 50.0
    dt = min(dt, dt_max)
    legacy = options.step_control == "legacy"
    newton_options = options.newton
    deadline = None
    if options.max_wall_time is not None:
        # One absolute deadline covers the whole run; it is also
        # threaded into the per-step Newton solves so a single stuck
        # solve cannot outlive the budget.  When unset (the default)
        # the options are untouched -- the legacy bit-compat contract.
        deadline = _time.perf_counter() + options.max_wall_time
        newton_options = replace(newton_options, deadline=deadline)
    if legacy:
        # Bit-compatibility mode: the pre-LTE heuristic must execute
        # the historical instruction sequence exactly, so the chord /
        # LU-reuse fast path is pinned off as well (including for the
        # initial operating point feeding the waveform).
        newton_options = replace(newton_options, lu_reuse=False)
    else:
        # Under LTE control the waveform accuracy contract is
        # (reltol, abstol); resolving each nonlinear solve tighter than
        # the absolute waveform tolerance is wasted iterations, so the
        # Newton update tolerance is raised to ``abstol`` (a tighter
        # user-set ``vntol`` is honoured by lowering ``abstol``).
        newton_options = replace(
            newton_options,
            vntol=max(newton_options.vntol, options.abstol))
    order = 2 if options.method == "trap" else 1

    if initial_op is None:
        initial_op = operating_point(circuit, newton_options)
    if initial_op.x is None:
        raise AnalysisError(
            "initial_op carries no solution vector (x is None): it is a "
            "NaN placeholder from a non-converged sweep point recorded "
            "under on_error='skip'; filter those out (OpResult.converged) "
            "before handing them to transient()")
    compiled = circuit.compile()
    assembler = compiled.prepare()
    x = initial_op.x.copy()

    # Initial charge state; capacitor currents are zero at DC.  The
    # vectorized charge system is used whenever no foreign element
    # subclass overrides charge_terms (then: per-element fallback).
    vectorized = assembler.charges_vectorized
    if vectorized:
        q_prev = assembler.charge_vector(x)
    else:
        q_prev = np.array([term.q for term in compiled.charge_terms(x)])
    i_prev = np.zeros(len(q_prev))

    breakpoints = _breakpoints(circuit, t_stop)
    bp_cursor = 0

    # Dense recording keeps the full MNA vector of every accepted step
    # and transposes into per-node waveforms once at the end -- a
    # per-name python append loop per step is measurable against the
    # solver hot path.  An attached scope session with replace_dense
    # skips this entirely: the session's bounded windows are then the
    # only waveform storage (the scalar time axis is always kept).
    record_dense = scope is None or not scope.replace_dense
    times = [0.0]
    samples = [x.copy()] if record_dense else []
    if scope is not None:
        scope._bind(compiled.node_index, circuit.name, tspan)
        scope._on_sample(0.0, x)
    # Only voltage-defined elements own an MNA branch current; with
    # record_currents set, exactly the independent VoltageSource
    # branches are recorded (CurrentSource currents are their waveform
    # values and carry no branch unknown).
    recorded_sources = [e for e in circuit.elements
                        if isinstance(e, VoltageSource)]

    step_log = TransientTelemetry()
    # One factorization is carried across iterations *and* accepted
    # steps; keyed on the companion coefficient so any dt change
    # refactorizes.
    lu_state = LuReuseState() if newton_options.lu_reuse else None
    n_nodes = len(compiled.node_index)
    # Predictor history for the LTE estimator: the last (order + 1)
    # accepted points.  Truncated whenever a breakpoint is crossed --
    # the input waveform has a derivative corner there and a polynomial
    # must not extrapolate across it.
    hist_t: list[float] = [0.0]
    hist_x: list[np.ndarray] = [x.copy()]

    def reject(kind: str, t: float, step: float, err_norm=None) -> None:
        step_log.record_rejection(t, kind)
        tspan.inc("transient_steps_rejected")
        tspan.inc(f"transient_{kind}_rejections")
        tspan.event("step-rejected", t=t, dt=step, cause=kind,
                    **({} if err_norm is None else
                       {"err_norm": err_norm}))
        if (options.max_rejections is not None
                and step_log.steps_rejected > options.max_rejections):
            raise ConvergenceError(
                f"transient exhausted its rejection budget of "
                f"{options.max_rejections} at t={t:.3e}s in "
                f"{circuit.name} ({step_log.describe()})",
                diagnostics=step_log, stage="rejection-budget")

    t = 0.0
    # Relative tolerance above float epsilon: accumulated rounding in
    # ``t`` must not leave a ~1e-16*t_stop residue to be "stepped" over
    # (it would pollute the telemetry's smallest committed step).
    while t < t_stop * (1.0 - 1e-12):
        if deadline is not None and _time.perf_counter() >= deadline:
            raise ConvergenceError(
                f"transient exceeded its wall-clock budget of "
                f"{options.max_wall_time:.3g}s at t={t:.3e}s "
                f"({t / t_stop:.0%} of t_stop) in {circuit.name} "
                f"({step_log.describe()})",
                diagnostics=step_log, stage="wall-clock")
        # Snap the step onto the next breakpoint or the stop time.
        while bp_cursor < len(breakpoints) and breakpoints[bp_cursor] <= t * (1 + 1e-12):
            bp_cursor += 1
        t_limit = breakpoints[bp_cursor] if bp_cursor < len(breakpoints) else t_stop
        t_limit = min(t_limit, t_stop)
        step = min(dt, t_limit - t)
        if step <= 0.0:
            bp_cursor += 1
            continue

        accepted = False
        err_norm: float | None = None
        while not accepted:
            t_new = t + step
            if options.method == "trap":
                c0 = 2.0 / step
                rhs = -c0 * q_prev - i_prev
            else:
                c0 = 1.0 / step
                rhs = -c0 * q_prev

            if vectorized:
                def dynamic_stamp(st: Stamper, xv: np.ndarray) -> None:
                    assembler.stamp_charges(st, xv, c0, rhs)
            else:
                def dynamic_stamp(st: Stamper, xv: np.ndarray) -> None:
                    for k, term in enumerate(compiled.charge_terms(xv)):
                        i_k = c0 * term.q + rhs[k]
                        st.add_f(term.pos, i_k)
                        st.add_f(term.neg, -i_k)
                        for col, dqdv in term.derivs:
                            st.add_j(term.pos, col, c0 * dqdv)
                            st.add_j(term.neg, col, -c0 * dqdv)

            if lu_state is not None:
                # dt (hence c0) changed => the dynamic stamps changed
                # => any held factorization is stale.
                lu_state.ensure_key(c0)
            # Polynomial predictor through the accepted history: the
            # LTE reference AND -- being the best available forecast of
            # the solution -- Newton's starting point (a stale x_prev
            # start costs several extra iterations per large step).
            # While the history is still rebuilding after a waveform
            # corner, a shorter (lower-order) predictor is used: its
            # divided-difference LTE estimate is conservative for the
            # trap step, which beats taking the step blind.
            x_pred = None
            pred_order = 0
            if not legacy and len(hist_t) >= 2:
                k = min(order + 1, len(hist_t))
                candidate = _predict(t_new, hist_t, hist_x, k)
                if np.all(np.isfinite(candidate)):
                    x_pred = candidate
                    pred_order = k - 1
            try:
                x_new, iters = _newton(compiled,
                                       x if x_pred is None else x_pred,
                                       t_new, newton_options,
                                       newton_options.gmin,
                                       extra_stamp=dynamic_stamp,
                                       lu_state=lu_state)
                step_log.newton_iterations += iters
            except ConvergenceError:
                if deadline is not None and \
                        _time.perf_counter() >= deadline:
                    # A budget-killed Newton solve must surface as the
                    # wall-clock abort, not grind dt to the dt-min
                    # stall diagnosis.
                    raise ConvergenceError(
                        f"transient exceeded its wall-clock budget of "
                        f"{options.max_wall_time:.3g}s at t={t:.3e}s "
                        f"in {circuit.name} ({step_log.describe()})",
                        diagnostics=step_log, stage="wall-clock")
                reject("newton", t, step)
                step /= 4.0
                if step < dt_min:
                    raise ConvergenceError(
                        f"transient stalled at t={t:.3e}s in "
                        f"{circuit.name} (dt below {dt_min:.1e}; "
                        f"{step_log.describe()})",
                        diagnostics=step_log, stage="dt-min")
                continue

            err_norm = None
            if x_pred is not None:
                err_norm = _lte_norm(t_new, x_new, x_pred, hist_t,
                                     hist_x, n_nodes, pred_order,
                                     options)
                # A reduced-order estimate (history still rebuilding
                # after a corner; trap stepping but only a linear
                # predictor) systematically *overstates* the trap
                # error, so it steers the next step size but must not
                # reject -- post-corner steps are restarted small, and
                # full-order control resumes one step later.
                if err_norm > 1.0 and pred_order == order:
                    if step <= dt_min * (1.0 + 1e-9):
                        # The floor wins: accept rather than stall --
                        # but leave a forensic marker.
                        tspan.event("lte-floor", t=t, dt=step,
                                    err_norm=err_norm)
                    else:
                        reject("lte", t, step, err_norm)
                        factor = max(_LTE_MIN_SHRINK,
                                     min(0.9, _lte_factor(err_norm,
                                                          pred_order)))
                        step = max(dt_min, step * factor)
                        continue
            accepted = True

        # Commit the step: update charge state.
        if vectorized:
            q_new = assembler.charge_vector(x_new)
        else:
            q_new = np.array([term.q
                              for term in compiled.charge_terms(x_new)])
        i_new = c0 * q_new + rhs
        q_prev, i_prev = q_new, i_new
        x = x_new
        t = t_new
        step_log.steps_accepted += 1
        tspan.inc("transient_steps_accepted")
        step_log.dt_smallest = min(step_log.dt_smallest, step)
        times.append(t)
        # x_new is never mutated in place downstream (_newton copies
        # its start vector), so recording it unaliased needs no copy.
        if record_dense:
            samples.append(x_new)
        if scope is not None:
            scope._on_sample(t, x_new)

        if legacy:
            # Adapt: the accepted step may have been shortened by a
            # breakpoint; grow the nominal dt gently either way.
            dt = min(dt_max, max(step * 1.4, dt * 0.5))
        else:
            landed_on_breakpoint = (
                bp_cursor < len(breakpoints)
                and t >= breakpoints[bp_cursor] * (1 - 1e-12))
            if landed_on_breakpoint:
                # Waveform corner: restart the predictor history so no
                # polynomial spans the derivative discontinuity.  The
                # landing sample itself is excluded too -- it holds the
                # *pre-edge* source values, which would poison the
                # extrapolation of every driven node.  The first step
                # past the corner runs without an LTE check, so it is
                # restarted small relative to the upcoming breakpoint
                # interval; the controller grows it back once the
                # estimator is online.
                hist_t = []
                hist_x = []
                gap = (breakpoints[bp_cursor + 1]
                       if bp_cursor + 1 < len(breakpoints)
                       else t_stop) - t
                dt = max(dt_min,
                         min(step, gap * _BREAKPOINT_RESTART_FRACTION))
            else:
                hist_t.append(t)
                hist_x.append(x)
                if len(hist_t) > order + 1:
                    del hist_t[0], hist_x[0]
                if err_norm is None:
                    # No estimate yet (history still rebuilding after
                    # t=0 or a waveform corner): hold dt -- blind
                    # growth here is what causes spurious rejections
                    # once the estimator comes back online.
                    factor = 1.0
                else:
                    factor = min(_LTE_MAX_GROWTH,
                                 max(0.3, _lte_factor(err_norm,
                                                      pred_order)))
                dt = min(dt_max, max(dt_min, step * factor))

    tspan.annotate(steps_accepted=step_log.steps_accepted,
                   steps_rejected=step_log.steps_rejected,
                   newton_rejections=step_log.newton_rejections,
                   lte_rejections=step_log.lte_rejections,
                   newton_iterations=step_log.newton_iterations)
    if scope is not None:
        scope._finish()
    if not record_dense:
        return TranResult(time=np.asarray(times), voltages={},
                          branch_currents={}, telemetry=step_log)
    # Transpose the step vectors into ONE (unknowns, steps) store and
    # hand out contiguous row views.  Each step vector is released the
    # moment it is copied, so peak waveform memory is ~2x the final
    # footprint (the old per-node ascontiguousarray materialisation
    # held samples + a stacked trace + the growing copies: ~3x).
    n_samples = len(samples)
    store = np.empty((samples[0].size, n_samples))
    for k in range(n_samples):
        store[:, k] = samples[k]
        samples[k] = None
    return TranResult(
        time=np.asarray(times),
        voltages={name: store[idx]
                  for name, idx in compiled.node_index.items()},
        branch_currents=(
            {e.name: store[compiled.aux_index[e.name][0]]
             for e in recorded_sources}
            if options.record_currents else {}),
        telemetry=step_log)
