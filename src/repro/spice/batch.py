"""Batched ensemble Newton: many independent DC points as one tensor.

Monte-Carlo populations, bias sweeps and parameter-perturbation fault
campaigns all solve the *same* circuit topology at many independent
points -- only per-device parameters (a mismatch draw), a source value
(a sweep point) or a single element value (a fault) differ.  The serial
path pays one full Python Newton loop per point; this module solves the
whole population as one stacked system instead:

* a :class:`LaneSpec` describes one population member ("lane") as a
  perturbation of the base circuit -- per-device VT/beta deltas, scaled
  resistors, overridden source values -- without mutating anything;
* :class:`BatchAssembler` extends the compile-once
  :class:`~repro.spice.assembly.CircuitAssembler` with a ``(B, N)``
  assembly path: the MOS/diode banks are evaluated over ``(B,
  n_devices)`` voltage arrays in one numpy call and scattered into a
  ``(B, N, N)`` stacked Jacobian;
* :func:`batch_newton` runs damped Newton on all lanes at once -- one
  ``np.linalg.solve`` on the stacked Jacobian per iteration (LAPACK's
  batched path) -- with per-lane damping, convergence and stall
  detection.  Converged lanes freeze and leave the active set, so the
  work per iteration shrinks as the population converges;
* :func:`batch_operating_point` orchestrates the whole solve and
  re-runs every lane the batched loop could not converge *individually*
  through the existing strategy ladder
  (:func:`~repro.spice.strategies.run_ladder`), from the same initial
  guess a serial solve would use -- robustness is never worse than
  serial, and failed lanes carry the identical forensic
  :class:`~repro.spice.strategies.SolverDiagnostics`.

The per-lane Newton math mirrors the serial kernel exactly (same
damping rule, same update-norm convergence criterion via
:func:`~repro.spice.strategies.step_converged`, same stall window), so
a lane's trajectory matches its serial solve to LAPACK rounding --
population summaries agree with the serial backend far inside 1e-9
relative tolerance.

Circuits that resolve to the sparse backend
(:meth:`~repro.spice.netlist.CompiledCircuit.solver_backend`) swap the
dense ``(B, N, N)`` tensor for a shared-pattern sparse path: every lane
of an ensemble has the *same* sparsity structure, so the symbolic work
(triplet dedup, CSC ``indices``/``indptr``, the structure COLAMD orders
on) is computed **once** per campaign and each Newton iteration only
refactors per-active-lane numeric data rows ``(B, nnz)`` over it --
with the serial kernel's chord/LU-reuse discipline applied per lane
(reused SuperLU handles under the ``lu_contraction`` monitor, fresh
full-Newton step required before convergence is accepted).  That is
what makes thousand-unknown mismatch campaigns (the 32-bit adder, the
transistor-level ADC slices) feasible as ensembles instead of
one-lane-at-a-time serial solves.

:class:`BatchedOpMetric` and :class:`BatchedOpSweep` package the
pattern for the analysis layer: one spec object is both a plain
callable (the serial path: build, perturb, solve, measure) and the
vectorizable description the batched backends of
:class:`~repro.analysis.montecarlo.MonteCarlo`,
:func:`~repro.analysis.sweep.sweep_1d` and
:class:`~repro.faults.campaign.FaultCampaign` consume.
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from .. import telemetry
from ..errors import AnalysisError, ConvergenceError, NetlistError
from .elements import CurrentSource, Resistor, VoltageSource
from .sparse import (SparseSystem, coo_to_csr, sparse_available,
                     sparse_factorize)
from .strategies import (DEFAULT_LADDER, GminSteppingStrategy,
                         NewtonOptions, SolverDiagnostics, StageReport,
                         run_ladder, step_converged)
from .assembly import CircuitAssembler
from .results import TranResult
from .transient import (TransientOptions, TransientTelemetry,
                        _BREAKPOINT_RESTART_FRACTION, _LTE_MAX_GROWTH,
                        _LTE_MIN_SHRINK, _breakpoints, _lte_factor,
                        _lte_norms_batch, _predict, transient)
from .waveforms import dc_wave

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .netlist import Circuit, CompiledCircuit
    from .results import OpResult

#: Stage name recorded in :class:`SolverDiagnostics` for lanes the
#: batched loop converged (and, as a failed first stage, for lanes it
#: handed to the serial fallback ladder).
BATCHED_STAGE = "batched-newton"

#: Stage name of the batched gmin-stepping continuation phase.
BATCHED_GMIN_STAGE = "batched-gmin-stepping"


@dataclass(frozen=True, eq=False)
class LaneSpec:
    """One population member, described as a perturbation of the base
    circuit.

    All fields are optional; an empty ``LaneSpec()`` is the unperturbed
    base circuit (used e.g. as the baseline lane of a batched fault
    campaign).

    Attributes:
        vt_delta: Additive VT shift per MOS element [V], in
            ``circuit.mos_elements()`` order (length ``n_mos``).
        beta_scale: Multiplicative current-factor error per MOS element,
            same order/length.
        resistor_scale: ``(name, factor)`` pairs scaling named
            resistors.
        source_values: ``(name, value)`` pairs overriding the DC value
            of named independent sources.
        label: Free-form tag for diagnostics (seed, sweep value, fault
            name).
    """

    vt_delta: np.ndarray | None = None
    beta_scale: np.ndarray | None = None
    resistor_scale: tuple[tuple[str, float], ...] = ()
    source_values: tuple[tuple[str, float], ...] = ()
    label: str = ""

    @classmethod
    def mismatch(cls, vt_delta, beta_scale=None,
                 label: str = "") -> "LaneSpec":
        """Lane from per-device mismatch arrays (bank order)."""
        return cls(vt_delta=np.asarray(vt_delta, dtype=float),
                   beta_scale=(None if beta_scale is None
                               else np.asarray(beta_scale, dtype=float)),
                   label=label)

    @classmethod
    def source(cls, name: str, value: float,
               label: str = "") -> "LaneSpec":
        """Lane overriding one independent source's DC value."""
        return cls(source_values=((name, float(value)),), label=label)


def _expand_bank_arrays(lane: LaneSpec, n_top: int, n_bank: int,
                        circuit_name: str) -> tuple[np.ndarray, np.ndarray]:
    """Normalize a lane's mismatch arrays to full-bank ``(n_bank,)``
    shape: top-level-length arrays land on the bank's head (top-level
    elements lead the bank), full-bank arrays pass through, anything
    else is a spec error."""
    vt = np.zeros(n_bank)
    beta = np.ones(n_bank)
    for label, arr, out in (("vt_delta", lane.vt_delta, vt),
                            ("beta_scale", lane.beta_scale, beta)):
        if arr is None:
            continue
        arr = np.asarray(arr, dtype=float)
        if arr.size == n_bank:
            out[:] = arr
        elif arr.size == n_top:
            out[:n_top] = arr
        else:
            raise AnalysisError(
                f"lane {lane.label!r}: {label} has {arr.size} entries "
                f"for {n_top} top-level / {n_bank} total MOS devices "
                f"of {circuit_name!r} (bank order)")
    return vt, beta


def _overlay_bank_lane(circuit: "Circuit", lane: LaneSpec,
                       n_top: int) -> Callable[[], None]:
    """Realize a full-bank mismatch lane on the compiled assembler's
    device bank; returns the undo restoring the original bank."""
    compiled = circuit.compile()
    asm = compiled.assembler
    asm.sync()
    bank = asm._mos_bank
    n_bank = bank.n_devices if bank is not None else 0
    vt, beta = _expand_bank_arrays(lane, n_top, n_bank, circuit.name)
    saved = bank
    asm._mos_bank = bank.overlay(bank.vt + vt, bank.i_spec * beta)

    def undo() -> None:
        asm._mos_bank = saved
    return undo


def apply_lane(circuit: "Circuit", lane: LaneSpec) -> Callable[[], None]:
    """Mutate ``circuit`` into the lane's perturbed twin; return an undo.

    This is the *serial* realization of a :class:`LaneSpec` -- the
    per-lane fallback and the serial paths of the spec objects go
    through it, so batched and serial evaluations perturb the circuit
    identically.  Devices are replaced (never mutated in place): MOS
    device objects are commonly shared between elements and only the
    addressed element must move.

    Mismatch arrays address the top-level ``circuit.mos_elements()``
    by default; on hierarchical circuits they may instead cover the
    *full device bank* (top-level elements followed by every
    subcircuit instance's devices, in bank order -- the order
    ``compiled.assembler._mos_names`` lists).  Full-bank lanes are
    realized as a :meth:`~repro.devices.mosfet.MosBank.overlay` on the
    compiled assembler's bank (per-instance devices share template
    element objects, so device replacement cannot address them
    individually), and the undo restores the original bank.
    """
    mos = circuit.mos_elements()
    n_top = len(mos)
    bank_wide = any(
        arr is not None and len(arr) != n_top
        for arr in (lane.vt_delta, lane.beta_scale))
    if bank_wide:
        undos = [_overlay_bank_lane(circuit, lane, n_top)]
    else:
        undos = []

        def _restore_device(element, device):
            def undo():
                element.device = device
            return undo

        for k, element in enumerate(mos):
            vt = (0.0 if lane.vt_delta is None
                  else float(lane.vt_delta[k]))
            beta = (1.0 if lane.beta_scale is None
                    else float(lane.beta_scale[k]))
            if vt == 0.0 and beta == 1.0:
                continue
            undos.append(_restore_device(element, element.device))
            element.device = dataclasses.replace(
                element.device,
                vt_shift=element.device.vt_shift + vt,
                beta_factor=element.device.beta_factor * beta)
    for name, factor in lane.resistor_scale:
        element = circuit.element(name)
        if not isinstance(element, Resistor):
            raise AnalysisError(f"{name!r} is not a resistor")
        saved = element.resistance

        def _restore_r(element=element, saved=saved):
            element.resistance = saved
        undos.append(_restore_r)
        element.resistance = saved * factor
    for name, value in lane.source_values:
        element = circuit.element(name)
        if not isinstance(element, (VoltageSource, CurrentSource)):
            raise AnalysisError(f"{name!r} is not an independent source")
        saved = element.waveform

        def _restore_s(element=element, saved=saved):
            element.waveform = saved
        undos.append(_restore_s)
        element.waveform = dc_wave(float(value))

    def undo_all() -> None:
        for undo in reversed(undos):
            undo()
    return undo_all


class BatchAssembler(CircuitAssembler):
    """Stacked ``(B, N)`` assembly over one compiled circuit.

    Builds on the serial assembler's compile-once structure (constant
    linear part, bank index scatter patterns) and adds per-lane
    parameter overlays: VT / beta arrays of shape ``(B, n_mos)``,
    per-lane delta conductances for scaled resistors, per-lane source
    values.  :meth:`assemble_batch` then assembles any subset of lanes
    (the batched Newton loop's shrinking active set) in one pass of
    numpy calls.

    Circuits containing element types the assembler does not know
    (user subclasses stamped through the per-element fallback) cannot
    be batched; constructing a :class:`BatchAssembler` for one raises
    :class:`~repro.errors.AnalysisError` -- use the serial backend.
    """

    def __init__(self, compiled: "CompiledCircuit",
                 lanes: Sequence[LaneSpec]) -> None:
        super().__init__(compiled)
        if self._fallback:
            kinds = sorted({type(e).__name__ for e in self._fallback})
            raise AnalysisError(
                f"circuit {compiled.circuit.name!r} contains element "
                f"types the batched assembler cannot vectorize "
                f"({', '.join(kinds)}); use the serial backend")
        self.lanes = list(lanes)
        self.batch = len(self.lanes)
        if self.batch == 0:
            raise AnalysisError("empty lane list")
        #: Whether the stacked Newton loop solves lanes through the
        #: shared-pattern sparse backend (set by :meth:`enable_sparse`).
        self.use_sparse = False
        self._batch_sparse_system: SparseSystem | None = None
        self._build_lane_overlays()

    # -- lane overlays --------------------------------------------------

    def _build_lane_overlays(self) -> None:
        n_mos = len(self._mos)
        n_bank = len(self._mos_all)
        vt_rows, beta_rows = [], []
        any_mos = False
        for lane in self.lanes:
            # Lanes may address the top-level elements (head of the
            # bank, instance tail untouched) or the full device bank --
            # the hierarchical-mismatch contract apply_lane shares.
            vt, beta = _expand_bank_arrays(
                lane, n_mos, n_bank, self.compiled.circuit.name)
            any_mos |= (lane.vt_delta is not None
                        or lane.beta_scale is not None)
            vt_rows.append(vt)
            beta_rows.append(beta)
        self._mos_vt_b = None
        self._mos_ispec_b = None
        if any_mos and self._mos_bank is not None:
            bank = self._mos_bank
            self._mos_vt_b = bank.vt[None, :] + np.vstack(vt_rows)
            self._mos_ispec_b = bank.i_spec[None, :] * np.vstack(beta_rows)

        # Resistor overlays: one column per resistor any lane scales.
        over_names: list[str] = []
        for lane in self.lanes:
            for name, _factor in lane.resistor_scale:
                if name not in over_names:
                    over_names.append(name)
        self._rov_dg = None
        if over_names:
            by_name = {r.name: r for r in self._resistors}
            elements = []
            for name in over_names:
                if name not in by_name:
                    raise AnalysisError(
                        f"{name!r} is not a resistor of "
                        f"{self.compiled.circuit.name!r}")
                elements.append(by_name[name])
            a = np.array([e._idx[0] for e in elements], dtype=np.intp)
            b = np.array([e._idx[1] for e in elements], dtype=np.intp)
            self._rov_a, self._rov_b = a, b
            self._rov_a_mask = a >= 0
            self._rov_b_mask = b >= 0
            rows = np.concatenate([a, a, b, b])
            cols = np.concatenate([a, b, a, b])
            valid = (rows >= 0) & (cols >= 0)
            self._rov_flat = (rows[valid].astype(np.intp) * self.size
                              + cols[valid].astype(np.intp))
            self._rov_valid = valid
            n_over = len(elements)
            self._rov_sign = np.concatenate(
                [np.ones(n_over), -np.ones(n_over),
                 -np.ones(n_over), np.ones(n_over)])
            dg = np.zeros((self.batch, n_over))
            base_g = np.array([1.0 / e.resistance for e in elements])
            for li, lane in enumerate(self.lanes):
                for name, factor in lane.resistor_scale:
                    k = over_names.index(name)
                    if factor <= 0.0:
                        raise AnalysisError(
                            f"lane {lane.label!r}: resistor scale for "
                            f"{name!r} must be positive, got {factor}")
                    dg[li, k] = base_g[k] / factor - base_g[k]
            self._rov_dg = dg

        # Source overlays: per-source (B,) value arrays, None when no
        # lane overrides that source.
        vsrc_over: dict[str, np.ndarray] = {}
        isrc_over: dict[str, np.ndarray] = {}
        vsrc_names = {e.name for e in self._vsources}
        isrc_names = {e.name for e in self._isources}
        for li, lane in enumerate(self.lanes):
            for name, value in lane.source_values:
                if name in vsrc_names:
                    table = vsrc_over
                    base = next(e for e in self._vsources
                                if e.name == name)
                elif name in isrc_names:
                    table = isrc_over
                    base = next(e for e in self._isources
                                if e.name == name)
                else:
                    raise AnalysisError(
                        f"{name!r} is not an independent source of "
                        f"{self.compiled.circuit.name!r}")
                if name not in table:
                    table[name] = np.full(self.batch,
                                          base.value_at(None))
                table[name][li] = float(value)
        # Parallel to the *expanded* source lists (top-level sources
        # followed by every instance's template sources).  Overrides
        # are looked up against the top-level prefix only, so a
        # template source that happens to share a top-level source's
        # name is never accidentally overridden.
        n_inst_v = len(self._vsrc_elements) - len(self._vsources)
        n_inst_i = len(self._isrc_elements) - len(self._isources)
        self._vsrc_over = ([vsrc_over.get(e.name) for e in self._vsources]
                           + [None] * n_inst_v)
        self._isrc_over = ([isrc_over.get(e.name) for e in self._isources]
                           + [None] * n_inst_i)

    # -- stacked hot path -----------------------------------------------

    def _grounded_batch(self, X: np.ndarray) -> np.ndarray:
        """``X`` (A, N) padded with a zero column so index -1 reads 0."""
        Xg = np.empty((X.shape[0], X.shape[1] + 1))
        Xg[:, :-1] = X
        Xg[:, -1] = 0.0
        return Xg

    def _batch_source_rhs(self, res: np.ndarray, lane_idx: np.ndarray,
                          time: float | None) -> None:
        """Independent-source excitations into the stacked residual,
        honouring per-lane value overrides."""
        for element, row, over in zip(self._vsrc_elements,
                                      self._vsrc_branch_rows,
                                      self._vsrc_over):
            if over is None:
                res[:, row] -= element.value_at(time)
            else:
                res[:, row] -= over[lane_idx]
        for element, (p, n), over in zip(self._isrc_elements,
                                         self._isrc_nodes,
                                         self._isrc_over):
            value = (element.value_at(time) if over is None
                     else over[lane_idx])
            if p >= 0:
                res[:, p] += value
            if n >= 0:
                res[:, n] -= value

    def _batch_mos_scatter(self, res: np.ndarray, Xg: np.ndarray,
                           lane_idx: np.ndarray) -> np.ndarray:
        """One lane-overlaid MOS bank evaluation: drain/source currents
        accumulated into the stacked residual, masked Jacobian scatter
        values (A, n_valid) returned -- the same array both the dense
        flat scatter and the sparse ``mos`` segment consume, so the two
        backends agree bit for bit."""
        d, g, s, b = self._mos_terms
        all_rows = (slice(None),)
        bank = self._lane_mos_bank(lane_idx)
        r = bank.evaluate(Xg[:, d], Xg[:, g], Xg[:, s], Xg[:, b])
        np.add.at(res, all_rows + (d[self._mos_d_mask],),
                  r.ids[:, self._mos_d_mask])
        np.add.at(res, all_rows + (s[self._mos_s_mask],),
                  -r.ids[:, self._mos_s_mask])
        partials = np.concatenate(
            [r.p_d, r.p_g, r.p_s, r.p_b,
             r.p_d, r.p_g, r.p_s, r.p_b], axis=1)
        return (self._mos_sign * partials)[:, self._mos_valid]

    def _batch_diode_scatter(self, res: np.ndarray,
                             Xg: np.ndarray) -> np.ndarray:
        """Diode bank twin of :meth:`_batch_mos_scatter`."""
        a, c = self._diode_terms
        all_rows = (slice(None),)
        current, conductance = self._diode_bank.current(
            Xg[:, a] - Xg[:, c])
        np.add.at(res, all_rows + (a[self._diode_a_mask],),
                  current[:, self._diode_a_mask])
        np.add.at(res, all_rows + (c[self._diode_c_mask],),
                  -current[:, self._diode_c_mask])
        values = self._diode_sign * np.tile(conductance, (1, 4))
        return values[:, self._diode_valid]

    def _batch_rov_scatter(self, res: np.ndarray, Xg: np.ndarray,
                           lane_idx: np.ndarray) -> np.ndarray:
        """Per-lane resistor-overlay delta conductances: currents into
        the stacked residual, scatter values returned."""
        dg = self._rov_dg[lane_idx]
        all_rows = (slice(None),)
        va = Xg[:, self._rov_a]
        vb = Xg[:, self._rov_b]
        i = dg * (va - vb)
        np.add.at(res, all_rows + (self._rov_a[self._rov_a_mask],),
                  i[:, self._rov_a_mask])
        np.add.at(res, all_rows + (self._rov_b[self._rov_b_mask],),
                  -i[:, self._rov_b_mask])
        values = self._rov_sign * np.tile(dg, (1, 4))
        return values[:, self._rov_valid]

    def assemble_batch(self, jac: np.ndarray, res: np.ndarray,
                       X: np.ndarray, lane_idx: np.ndarray,
                       time: float | None = None) -> None:
        """Overwrite ``jac`` (A, N, N) / ``res`` (A, N) with the full
        static system of lanes ``lane_idx`` at solutions ``X`` (A, N)."""
        n_active = X.shape[0]
        jac[:] = self._g_const
        np.matmul(X, self._g_const.T, out=res)
        self._batch_source_rhs(res, lane_idx, time)
        if telemetry.is_enabled():
            span = telemetry.current_span()
            if self._mos_bank is not None:
                span.inc("device_bank_evals")
            if self._diode_bank is not None:
                span.inc("device_bank_evals")
        Xg = self._grounded_batch(X)
        jac_flat = jac.reshape(n_active, -1)
        all_rows = (slice(None),)
        if self._mos_bank is not None:
            np.add.at(jac_flat, all_rows + (self._mos_flat,),
                      self._batch_mos_scatter(res, Xg, lane_idx))
        if self._diode_bank is not None:
            np.add.at(jac_flat, all_rows + (self._diode_flat,),
                      self._batch_diode_scatter(res, Xg))
        if self._rov_dg is not None:
            np.add.at(jac_flat, all_rows + (self._rov_flat,),
                      self._batch_rov_scatter(res, Xg, lane_idx))

    # -- shared-pattern sparse path --------------------------------------

    def enable_sparse(self) -> None:
        """Switch the stacked Newton loop to the shared-pattern sparse
        backend: the symbolic structure (triplet dedup, CSC
        ``indices``/``indptr``, COLAMD ordering input) is computed once
        here and reused by every lane's numeric refactorization across
        every Newton iteration."""
        if not sparse_available():  # pragma: no cover - guarded upstream
            raise AnalysisError(
                "sparse batched backend requires scipy.sparse")
        self.use_sparse = True
        self.sparse_batch_system()

    def sparse_batch_system(self) -> SparseSystem:
        """The ensemble's shared triplet->CSC scatter (built once).

        Lanes of an ensemble differ only in *values* (device overlays,
        source overrides, resistor-scale deltas), never in structure,
        so one symbolic build serves all B lanes.  Ensembles that scale
        resistors get one extra ``rov`` segment appended to the serial
        segment sequence -- the per-lane delta conductances land on
        entries the ``lin`` segment already owns, so the pattern (and
        its factorization structure) is lane-independent either way.
        """
        if self._batch_sparse_system is None:
            if self._rov_dg is None:
                # Identical pattern to the serial assembler's (both are
                # derived from the same compiled structure), so borrow
                # its cached system: pilot solves, per-lane serial
                # fallbacks and repeated ensembles over one compile all
                # share a single symbolic factorization.
                self._batch_sparse_system = \
                    self.compiled.assembler.sparse_system()
            else:
                segments = self._sparse_segments()
                segments["rov"] = (self._rov_flat // self.size,
                                   self._rov_flat % self.size)
                self._batch_sparse_system = SparseSystem(self.size,
                                                         segments)
        return self._batch_sparse_system

    def assemble_batch_sparse(self, vals: np.ndarray, res: np.ndarray,
                              X: np.ndarray, lane_idx: np.ndarray,
                              time: float | None = None) -> None:
        """Sparse twin of :meth:`assemble_batch`: overwrite ``vals``
        (A, n_triplets) / ``res`` (A, N) with per-lane triplet values
        over the shared pattern of :meth:`sparse_batch_system`.

        Segment values are produced by the same bank evaluations and
        scatter-value expressions as the dense stacked path, and the
        linear part rides the same cached CSR matvec as the serial
        sparse assembler -- so per-lane assembled entries are
        bit-identical to both.
        """
        system = self.sparse_batch_system()
        sl = system.segment_slices
        if self._lin_csr is None:
            self._lin_csr = coo_to_csr(self._lin_rows, self._lin_cols,
                                       self._lin_vals, self.size)
        vals.fill(0.0)
        vals[:, sl["lin"]] = self._lin_vals
        res[:] = self._lin_csr.dot(X.T).T
        self._batch_source_rhs(res, lane_idx, time)
        if telemetry.is_enabled():
            span = telemetry.current_span()
            if self._mos_bank is not None:
                span.inc("device_bank_evals")
            if self._diode_bank is not None:
                span.inc("device_bank_evals")
        Xg = self._grounded_batch(X)
        if self._mos_bank is not None:
            vals[:, sl["mos"]] = self._batch_mos_scatter(res, Xg,
                                                         lane_idx)
        if self._diode_bank is not None:
            vals[:, sl["dio"]] = self._batch_diode_scatter(res, Xg)
        if self._rov_dg is not None:
            vals[:, sl["rov"]] = self._batch_rov_scatter(res, Xg,
                                                         lane_idx)

    def _lane_mos_bank(self, lane_idx):
        """A bank view whose VT / I_spec rows are the selected lanes'.

        The bank math is pure elementwise numpy, so swapping the (n,)
        parameter arrays for (A, n) slices broadcasts the evaluation
        over the lane axis with zero duplicated model code.
        ``MosBank.overlay`` rebuilds the bank's derived packed
        constants along the way.
        """
        if self._mos_vt_b is None:
            return self._mos_bank
        return self._mos_bank.overlay(self._mos_vt_b[lane_idx],
                                      self._mos_ispec_b[lane_idx])

    def lane_device_ops(self, lane: int, x: np.ndarray) -> dict:
        """MOS element name -> operating point at ``x`` under the lane's
        parameter overlay (the batched analogue of
        :meth:`CircuitAssembler.device_operating_points`)."""
        if self._mos_bank is None:
            return {}
        bank = self._mos_bank
        if self._mos_vt_b is not None:
            bank = bank.overlay(self._mos_vt_b[lane],
                                self._mos_ispec_b[lane])
        d, g, s, b = self._mos_terms
        vd, vg, vs, vb = self._terminal_voltages(x, (d, g, s, b))
        points = bank.operating_points(vd, vg, vs, vb)
        return dict(zip(self._mos_names, points))


class _LaneDeviceOps(Mapping):
    """Per-lane ``device_ops`` mapping, materialized on first access."""

    def __init__(self, assembler: BatchAssembler, lane: int,
                 x: np.ndarray) -> None:
        self._assembler = assembler
        self._lane = lane
        self._x = x
        self._data: dict | None = None

    def _materialize(self) -> dict:
        if self._data is None:
            self._data = self._assembler.lane_device_ops(self._lane,
                                                         self._x)
        return self._data

    def __getitem__(self, key):
        return self._materialize()[key]

    def __iter__(self):
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())


# -- batched Newton kernel ------------------------------------------------


@dataclass
class BatchDiagnostics:
    """What the batched solve did for one population.

    Attributes:
        circuit: Circuit name.
        batch: Population size B.
        iterations: Stacked Newton iterations run across both batched
            phases (shared clock).
        active_history: Lanes still active entering each stacked
            iteration -- the convergence-masking decay curve (phase 1
            then the gmin rungs).
        n_converged_batched: Lanes plain batched Newton converged
            directly.
        n_converged_gmin: Lanes the batched gmin-stepping continuation
            rescued.
        n_fallback: Lanes re-solved individually through the strategy
            ladder.
        n_failed: Lanes that failed the ladder too.
        fallback_lanes: ``(lane index, reason)`` per handed-off lane.
        wall_time: Seconds spent in the whole batched solve (stacked
            loop plus fallbacks).
    """

    circuit: str
    batch: int
    iterations: int = 0
    active_history: list[int] = field(default_factory=list)
    n_converged_batched: int = 0
    n_converged_gmin: int = 0
    n_fallback: int = 0
    n_failed: int = 0
    fallback_lanes: list[tuple[int, str]] = field(default_factory=list)
    wall_time: float = 0.0

    def describe(self) -> str:
        decay = " -> ".join(str(n) for n in self.active_history[:12])
        if len(self.active_history) > 12:
            decay += " -> ..."
        return (f"batched solve of {self.circuit!r}: B={self.batch}, "
                f"{self.n_converged_batched} converged directly + "
                f"{self.n_converged_gmin} via gmin stepping in "
                f"{self.iterations} stacked iterations "
                f"(active {decay}), {self.n_fallback} fell back to the "
                f"ladder, {self.n_failed} failed "
                f"({self.wall_time * 1e3:.1f} ms)")


@dataclass
class _BatchNewtonOutcome:
    converged: np.ndarray            # (B,) bool, scoped to entry lanes
    iterations: np.ndarray           # (B,) int, iterations this call
    reasons: dict[int, str]          # lane -> why it left the batch loop
    n_iterations: int


def _newton_rounds(assembler: BatchAssembler, X: np.ndarray,
                   lanes_idx: np.ndarray, options: NewtonOptions,
                   gmin: float,
                   active_history: list[int],
                   time: float | None = None,
                   extra=None,
                   chord: "_SparseChordState | None" = None,
                   ) -> _BatchNewtonOutcome:
    """One batched damped-Newton solve over ``lanes_idx``, in place.

    The per-lane math mirrors the serial kernel exactly: same damping
    rule, same update-norm convergence criterion
    (:func:`~repro.spice.strategies.step_converged`), same stall window
    -- applied with per-lane state.  Converged lanes freeze (their rows
    stop being assembled and solved, shrinking the stacked system each
    iteration); lanes with non-finite updates or a stalled trajectory
    are kicked out with their serial-identical failure reason.
    ``active_history`` accumulates the active-lane count entering each
    iteration (the masking decay curve for diagnostics).

    ``time`` is the source-waveform timestamp (None: DC).  ``extra``,
    when given, stamps additional per-lane contributions after the
    static assembly and before the gmin shunt -- the serial kernel's
    ``extra_stamp`` slot, which the batched transient engine fills with
    the stacked charge companions; it is called as
    ``extra(jac_or_vals, res, X_active, active_idx)``.  ``chord``
    carries the per-lane sparse LU/chord state across calls (the
    batched transient holds one across accepted steps, invalidated on
    dt changes); None creates one scoped to this call, preserving the
    gmin-rung isolation guarantee.
    """
    compiled = assembler.compiled
    B, N = X.shape
    n_nodes = len(compiled.node_index)
    diag = np.arange(n_nodes)
    use_sparse = assembler.use_sparse
    system = assembler.sparse_batch_system() if use_sparse else None
    diag_slice = system.segment_slices["diag"] if use_sparse else None
    if not (use_sparse and options.lu_reuse):
        chord = None
    elif chord is None:
        chord = _SparseChordState()
    converged = np.zeros(B, dtype=bool)
    iterations = np.zeros(B, dtype=int)
    stall_checkpoint = np.full(B, np.inf)
    stall_residual = np.full(B, np.inf)
    reasons: dict[int, str] = {}
    active = np.asarray(lanes_idx, dtype=np.intp).copy()
    tspan = telemetry.current_span() if telemetry.is_enabled() else None
    deadline = options.deadline
    iteration = 0
    for iteration in range(1, options.max_iterations + 1):
        n_active = active.size
        if n_active == 0:
            iteration -= 1
            break
        if deadline is not None and _time.perf_counter() >= deadline:
            # Wall-clock budget exhausted mid-population: the serial
            # kernel raises stage="wall-clock" here; the batched loop
            # instead kicks every still-active lane out with that
            # reason (converged lanes keep their solutions) so the
            # caller's diagnostics carry the partial outcome.
            iteration -= 1
            for lane in active:
                reasons[int(lane)] = (
                    f"wall-clock budget exhausted after "
                    f"{int(iterations[lane])} batched Newton iterations "
                    f"in {compiled.circuit.name} [stage wall-clock]")
            if tspan is not None:
                tspan.event("batch-deadline", n_active=n_active,
                            iteration=iteration)
            active = active[:0]
            break
        active_history.append(n_active)
        res = np.empty((n_active, N))
        Xa = X[active]
        if use_sparse:
            vals = np.empty((n_active, system.n_triplets))
            assembler.assemble_batch_sparse(vals, res, Xa, active,
                                            time=time)
            if extra is not None:
                extra(vals, res, Xa, active)
            if gmin > 0.0:
                vals[:, diag_slice] += gmin
                res[:, :n_nodes] += gmin * Xa[:, :n_nodes]
        else:
            jac = np.empty((n_active, N, N))
            assembler.assemble_batch(jac, res, Xa, active, time=time)
            if extra is not None:
                extra(jac, res, Xa, active)
            if gmin > 0.0:
                jac[:, diag, diag] += gmin
                res[:, :n_nodes] += gmin * Xa[:, :n_nodes]
            if tspan is not None:
                # The dense stacked solve factors every active lane;
                # the sparse path counts per-lane inside the solver so
                # chord reuse shows up as fewer factorizations.
                tspan.inc("jacobian_factorizations", n_active)
        # Per-lane residual norms feed the stall detector (mirroring
        # the serial kernel); only window boundaries read them.
        res_norm = None
        if iteration == 1 or (options.stall_window > 0 and
                              iteration % options.stall_window == 0):
            res_norm = np.abs(res).max(axis=1)
        if use_sparse:
            dX, fresh = _solve_stacked_sparse(system, vals, res, active,
                                              n_nodes, options, chord,
                                              tspan)
        else:
            dX = _solve_stacked(jac, res)
            fresh = None
        finite = np.all(np.isfinite(dX), axis=1)
        if not finite.all():
            for lane in active[~finite]:
                reasons[int(lane)] = ("non-finite Newton update in "
                                      f"{compiled.circuit.name}")
                iterations[lane] = iteration
            active = active[finite]
            dX = dX[finite]
            if fresh is not None:
                fresh = fresh[finite]
            if res_norm is not None:
                res_norm = res_norm[finite]
            if active.size == 0:
                if tspan is not None:
                    tspan.event("batch-iter", i=iteration, n_active=0)
                continue
        v_updates = (np.abs(dX[:, :n_nodes]) if n_nodes
                     else np.zeros((active.size, 1)))
        biggest = (v_updates.max(axis=1) if v_updates.shape[1]
                   else np.zeros(active.size))
        scale = np.where(biggest <= options.max_step, 1.0,
                         options.max_step / np.maximum(biggest, 1e-300))
        X[active] += scale[:, None] * dX
        iterations[active] = iteration
        step_norm = biggest * scale
        if iteration == 1:
            # Arm the stall detector from the opening update norm and
            # residual -- mirrors the serial kernel so both paths kick
            # out a stalled lane after one window, not two.
            stall_checkpoint[active] = step_norm
            stall_residual[active] = res_norm
        v_max = (np.abs(X[active][:, :n_nodes]).max(axis=1) if n_nodes
                 else np.zeros(active.size))
        conv = step_converged(step_norm, v_max, options) & (scale == 1.0)
        if chord is not None:
            # Never declare victory on a stale (chord) Jacobian: drop
            # the lane's cached factorization and let the next
            # iteration take -- and re-check -- a fresh full-Newton
            # step, exactly like the serial kernel.
            for lane in active[conv & ~fresh]:
                chord.handles.pop(int(lane), None)
            conv &= fresh
            chord.note_norms(active, step_norm)
        if tspan is not None:
            tspan.event("batch-iter", i=iteration,
                        n_active=int(active.size),
                        n_converged=int(conv.sum()),
                        max_step_norm=float(step_norm.max(initial=0.0)))
        keep = ~conv
        converged[active[conv]] = True
        if options.stall_window > 0 and \
                iteration % options.stall_window == 0:
            stalled = (step_norm > 0.5 * stall_checkpoint[active]) \
                & (res_norm > 0.5 * stall_residual[active])
            stalled &= keep
            for lane, norm, rnorm in zip(active[stalled],
                                         step_norm[stalled],
                                         res_norm[stalled]):
                reasons[int(lane)] = (
                    f"Newton stalled after {iteration} iterations in "
                    f"{compiled.circuit.name} (neither the update norm "
                    f"{norm:.3e} nor the residual {rnorm:.3e} halved "
                    f"over the last "
                    f"{options.stall_window} iterations)")
            keep &= ~stalled
            stall_checkpoint[active] = step_norm
            stall_residual[active] = res_norm
        active = active[keep]
    for lane in active:
        reasons[int(lane)] = (
            f"Newton failed after {options.max_iterations} iterations "
            f"in {compiled.circuit.name}")
        iterations[lane] = iteration
    return _BatchNewtonOutcome(converged=converged,
                               iterations=iterations, reasons=reasons,
                               n_iterations=iteration)


def batch_newton(assembler: BatchAssembler, X: np.ndarray,
                 options: NewtonOptions, gmin: float,
                 active_history: list[int] | None = None,
                 ) -> _BatchNewtonOutcome:
    """Plain damped Newton over all lanes at once (in place on ``X``)."""
    if active_history is None:
        active_history = []
    return _newton_rounds(assembler, X, np.arange(X.shape[0]), options,
                          gmin, active_history)


def batch_gmin_stepping(assembler: BatchAssembler, X: np.ndarray,
                        lanes_idx: np.ndarray, options: NewtonOptions,
                        active_history: list[int],
                        start_exponent: int = 3, stop_exponent: int = 15,
                        ) -> _BatchNewtonOutcome:
    """Batched continuation in the shunt conductance.

    The stacked analogue of
    :class:`~repro.spice.strategies.GminSteppingStrategy` (same default
    schedule): solve all lanes with a heavy shunt, relax it one decade
    at a time down to ``options.gmin``, warm-starting each rung from
    the previous one, then polish with a plain solve.  A lane that
    fails any rung leaves the batch (its ``X`` row holds the last rung
    it did converge -- callers fall back per-lane from the original
    guess anyway); lanes that survive every rung converge exactly like
    their serial counterparts.
    """
    B = X.shape[0]
    converged = np.zeros(B, dtype=bool)
    iterations = np.zeros(B, dtype=int)
    reasons: dict[int, str] = {}
    total_rounds = 0
    active = np.asarray(lanes_idx, dtype=np.intp).copy()
    tspan = telemetry.current_span() if telemetry.is_enabled() else None
    schedule = [max(10.0 ** (-e), options.gmin)
                for e in range(start_exponent, stop_exponent + 1)]
    schedule.append(options.gmin)
    for rung, gmin in enumerate(schedule):
        if active.size == 0:
            break
        outcome = _newton_rounds(assembler, X, active, options, gmin,
                                 active_history)
        total_rounds += outcome.n_iterations
        iterations += outcome.iterations
        for lane, why in outcome.reasons.items():
            reasons[lane] = (f"gmin rung {rung} (gmin={gmin:.1e}): "
                             f"{why}")
        if tspan is not None:
            tspan.event("batch-gmin-step", gmin=gmin,
                        n_active=int(active.size),
                        iterations=outcome.n_iterations)
        active = active[outcome.converged[active]]
    converged[active] = True
    return _BatchNewtonOutcome(converged=converged,
                               iterations=iterations, reasons=reasons,
                               n_iterations=total_rounds)


def _solve_stacked(jac: np.ndarray, res: np.ndarray) -> np.ndarray:
    """Solve every lane's system; singular lanes degrade to lstsq
    instead of poisoning the whole stacked call."""
    try:
        return np.linalg.solve(jac, -res[..., None])[..., 0]
    except np.linalg.LinAlgError:
        dX = np.empty_like(res)
        for k in range(jac.shape[0]):
            try:
                dX[k] = np.linalg.solve(jac[k], -res[k])
            except np.linalg.LinAlgError:
                dX[k], *_ = np.linalg.lstsq(jac[k], -res[k], rcond=None)
        return dX


class _SparseChordState:
    """Per-lane chord-Newton bookkeeping for batched sparse solves.

    By default scoped to a single :func:`_newton_rounds` call, so a
    gmin-rung change can never serve a factorization of the previous
    rung's shunted Jacobian.  The batched transient engine instead
    holds one instance across accepted steps (cached SuperLU handles
    from the last step's companion Jacobian are excellent chord
    candidates at the next one) and keys it on the companion
    coefficient ``c0 = f(dt)``: :meth:`ensure_key` drops every cached
    handle whenever dt changes, and :meth:`invalidate` clears the cache
    after rejected attempts whose trial states were discarded.
    """

    __slots__ = ("handles", "prev_norm", "key")

    def __init__(self) -> None:
        self.handles: dict[int, object] = {}
        self.prev_norm: dict[int, float] = {}
        self.key: float | None = None

    def note_norms(self, active: np.ndarray,
                   step_norm: np.ndarray) -> None:
        for lane, norm in zip(active, step_norm):
            self.prev_norm[int(lane)] = float(norm)

    def ensure_key(self, key: float) -> None:
        if key != self.key:
            self.invalidate()
            self.key = key

    def invalidate(self) -> None:
        self.handles.clear()
        self.prev_norm.clear()


def _solve_stacked_sparse(system: SparseSystem, vals: np.ndarray,
                          res: np.ndarray, active: np.ndarray,
                          n_nodes: int, options: NewtonOptions,
                          chord: _SparseChordState | None,
                          tspan) -> tuple[np.ndarray, np.ndarray]:
    """Per-lane sparse solves over the shared symbolic pattern.

    Mirrors the serial sparse kernel lane by lane: a lane with a cached
    SuperLU handle first tries a chord step, accepted only under the
    ``lu_contraction`` monitor; otherwise its CSC data row is
    numerically refactorized on the shared ``indices``/``indptr``
    structure (the symbolic phase never repeats).  Exactly-singular and
    non-finite lanes degrade to dense least squares; a NaN-parameter
    lane produces a NaN row that flows into the caller's non-finite
    kick-out, i.e. the per-lane serial-ladder fallback.

    Returns ``(dX, fresh)``; ``fresh`` flags lanes whose step came from
    a fresh factorization -- the caller refuses convergence on stale
    chord steps exactly like the serial kernel.
    """
    data = system.batch_data(vals)
    dX = np.empty_like(res)
    fresh = np.zeros(active.size, dtype=bool)
    for k in range(active.size):
        lane = int(active[k])
        rhs = -res[k]
        if chord is not None:
            handle = chord.handles.get(lane)
            if handle is not None:
                candidate = handle.solve(rhs)
                if np.all(np.isfinite(candidate)):
                    biggest = (float(np.abs(candidate[:n_nodes]).max())
                               if n_nodes else 0.0)
                    scale = (1.0 if biggest <= options.max_step
                             else options.max_step / max(biggest, 1e-300))
                    prev = chord.prev_norm.get(lane, np.inf)
                    if biggest * scale <= options.lu_contraction * prev:
                        dX[k] = candidate
                        if tspan is not None:
                            tspan.inc("lu_reuses")
                        continue
        a_csc = system.matrix_from_data(data[k])
        handle = sparse_factorize(a_csc)
        fresh[k] = True
        if chord is not None:
            chord.handles[lane] = handle
        if tspan is not None:
            tspan.inc("jacobian_factorizations")
            tspan.inc("sparse_factorizations")
            if chord is not None:
                tspan.inc("lu_refactorizations")
        if handle is not None:
            dX[k] = handle.solve(rhs)
        else:
            try:
                dX[k], *_ = np.linalg.lstsq(a_csc.toarray(), rhs,
                                            rcond=None)
            except np.linalg.LinAlgError:
                dX[k] = np.nan
    return dX, fresh


# -- orchestration --------------------------------------------------------


@dataclass
class BatchOpResult:
    """Per-lane operating points of one batched solve.

    Attributes:
        points: One :class:`~repro.spice.results.OpResult` per lane, in
            lane order (NaN placeholders for lanes that failed every
            strategy, recorded under ``on_error="skip"``).
        failures: ``(lane index, error)`` per failed lane; the stored
            :class:`~repro.errors.ConvergenceError` carries the full
            ladder diagnostics.
        diagnostics: The population-level :class:`BatchDiagnostics`.
    """

    points: list
    failures: list[tuple[int, ConvergenceError]]
    diagnostics: BatchDiagnostics

    @property
    def n_failed(self) -> int:
        return len(self.failures)


def batch_operating_point(circuit: "Circuit",
                          lanes: Sequence[LaneSpec],
                          options: NewtonOptions | None = None,
                          strategies=None,
                          on_error: str = "raise",
                          x0: np.ndarray | None = None,
                          matrix_backend: str | None = None,
                          ) -> BatchOpResult:
    """Solve one DC operating point per lane, stacked.

    Every lane starts from the circuit's nodeset initial guess (or
    ``x0``), exactly like a cold serial
    :func:`~repro.spice.dc.operating_point`.  Lanes the batched Newton
    loop cannot converge are re-solved individually through the serial
    strategy ladder with the lane perturbation applied to the circuit
    (and reverted afterwards), so the failure behaviour -- and the
    forensic diagnostics of lanes that fail everything -- is identical
    to the serial path.

    ``matrix_backend``, when given, overrides the circuit's own
    setting before backend resolution (same ``"auto"``/``"dense"``/
    ``"sparse"`` vocabulary as :class:`~repro.spice.netlist.Circuit`);
    a circuit resolving to the sparse backend runs the stacked Newton
    loop over one shared COLAMD symbolic pattern with per-lane numeric
    refactorization, instead of dense ``(B, N, N)`` tensors.

    ``on_error="raise"`` propagates the first failed lane's
    :class:`~repro.errors.ConvergenceError`; ``"skip"`` records NaN
    placeholder points and keeps going.
    """
    if on_error not in ("raise", "skip"):
        raise NetlistError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}")
    if matrix_backend is not None:
        if matrix_backend not in circuit.MATRIX_BACKENDS:
            raise NetlistError(
                f"unknown matrix backend {matrix_backend!r}, expected "
                f"one of {circuit.MATRIX_BACKENDS}")
        if matrix_backend != circuit.matrix_backend:
            circuit.matrix_backend = matrix_backend
            if circuit._compiled is not None:
                # Backend resolution is cached on the compiled artifact;
                # a changed preference must re-resolve without forcing a
                # full recompile of unchanged structure.
                circuit._compiled._solver_backend = None
    options = options or NewtonOptions()
    lanes = list(lanes)
    with telemetry.span("batch-operating-point", circuit=circuit.name,
                        batch=len(lanes)) as tspan:
        return _batch_op(circuit, lanes, options, strategies, on_error,
                         x0, tspan)


def _ladder_gmin_rung(strategies) -> GminSteppingStrategy | None:
    """The gmin-stepping rung of the effective ladder, if it has one.

    The stacked phase 2 exists to mirror that rung; a ladder without
    one (``strategies=(NewtonStrategy(),)`` in a robustness test, say)
    must fail the same lanes batched as it would serially.
    """
    for strategy in (DEFAULT_LADDER if strategies is None else strategies):
        if isinstance(strategy, GminSteppingStrategy):
            return strategy
    return None


def _batch_op(circuit: "Circuit", lanes: list[LaneSpec],
              options: NewtonOptions, strategies, on_error: str,
              x0: np.ndarray | None, tspan) -> BatchOpResult:
    from .dc import _nan_point, _package  # local: avoids import cycle

    start = _time.perf_counter()
    if options.max_wall_time is not None and options.deadline is None:
        # One absolute deadline covers both stacked phases and the
        # per-lane ladder fallback (run_ladder reuses a preset
        # deadline), mirroring the serial wall-clock semantics.
        options = dataclasses.replace(
            options, deadline=start + options.max_wall_time)
    compiled = circuit.compile()
    assembler = BatchAssembler(compiled, lanes)
    if compiled.solver_backend() == "sparse":
        assembler.enable_sparse()
        tspan.annotate(matrix_backend="sparse")
    guess = (circuit.initial_guess(compiled) if x0 is None else
             np.asarray(x0, dtype=float))
    if guess.shape != (compiled.size,):
        raise NetlistError(
            f"warm-start vector has wrong size {guess.shape}, "
            f"expected ({compiled.size},)")
    X = np.tile(guess, (len(lanes), 1))
    tspan.inc("batch_lanes", len(lanes))
    active_history: list[int] = []
    # Phase 1: plain batched Newton, the analogue of NewtonStrategy.
    phase1 = batch_newton(assembler, X, options, options.gmin,
                          active_history)
    # Phase 2: batched gmin stepping for the lanes plain Newton lost --
    # restarted from the original guess, exactly like the serial
    # ladder's second rung.  Only when the caller's ladder actually
    # carries a gmin rung (the default ladder does): a custom
    # ``strategies`` without one must fail the same lanes serially and
    # batched, so the stacked phase mirrors the rung's own schedule and
    # iteration budget -- or does not run at all.
    gmin_rung = _ladder_gmin_rung(strategies)
    pending1 = np.nonzero(~phase1.converged)[0]
    phase2 = None
    if pending1.size and gmin_rung is not None:
        X[pending1] = guess
        phase2 = batch_gmin_stepping(
            assembler, X, pending1, gmin_rung._options(options),
            active_history,
            start_exponent=gmin_rung.start_exponent,
            stop_exponent=gmin_rung.stop_exponent)
    converged = phase1.converged.copy()
    if phase2 is not None:
        converged |= phase2.converged
    diagnostics = BatchDiagnostics(
        circuit=circuit.name, batch=len(lanes),
        iterations=(phase1.n_iterations
                    + (phase2.n_iterations if phase2 else 0)),
        active_history=active_history,
        n_converged_batched=int(phase1.converged.sum()),
        n_converged_gmin=(int(phase2.converged.sum()) if phase2 else 0))

    def _lane_stages(lane_index: int) -> list[StageReport]:
        """The batched stages lane ``lane_index`` went through, as
        serial-style stage reports (converged flag per phase)."""
        stages = [StageReport(
            strategy=BATCHED_STAGE,
            converged=bool(phase1.converged[lane_index]),
            iterations=int(phase1.iterations[lane_index]),
            wall_time=0.0,
            detail=phase1.reasons.get(lane_index, ""))]
        if phase2 is not None and not phase1.converged[lane_index]:
            stages.append(StageReport(
                strategy=BATCHED_GMIN_STAGE,
                converged=bool(phase2.converged[lane_index]),
                iterations=int(phase2.iterations[lane_index]),
                wall_time=0.0,
                detail=phase2.reasons.get(lane_index, "")))
        return stages

    points: list = [None] * len(lanes)
    failures: list[tuple[int, ConvergenceError]] = []
    for lane_index in np.nonzero(converged)[0]:
        lane_index = int(lane_index)
        if not np.all(np.isfinite(X[lane_index])):
            # A lane must never be *packaged* with NaN/inf in its
            # solution vector, whatever the convergence bookkeeping
            # says -- demote it to the serial fallback below, which
            # either produces a real solution or a diagnosed failure.
            converged[lane_index] = False
            phase1.reasons.setdefault(
                lane_index,
                "non-finite solution vector after batched convergence")
            tspan.event("lane-nonfinite", lane=lane_index)
            continue
        stages = _lane_stages(lane_index)
        total = sum(s.iterations for s in stages)
        lane_diag = SolverDiagnostics(
            circuit=circuit.name, stages=stages,
            rescued_by=stages[-1].strategy, total_iterations=total)
        result = _package(compiled, X[lane_index], total, lane_diag)
        result.device_ops = _LaneDeviceOps(assembler, lane_index,
                                           result.x)
        points[lane_index] = result

    # Per-lane fallback: anything the stacked phases could not converge
    # re-runs the full serial ladder from the same cold start.
    pending = [k for k in range(len(lanes)) if points[k] is None]
    diagnostics.n_fallback = len(pending)

    def _lane_reason(k: int) -> str:
        if phase2 is not None and k in phase2.reasons:
            return phase2.reasons[k]
        return phase1.reasons.get(k, "")

    diagnostics.fallback_lanes = [(k, _lane_reason(k)) for k in pending]
    if pending:
        tspan.inc("batch_lane_fallbacks", len(pending))
    first_error: ConvergenceError | None = None
    for lane_index in pending:
        lane = lanes[lane_index]
        batched_stages = _lane_stages(lane_index)
        batched_iters = sum(s.iterations for s in batched_stages)
        undo = apply_lane(circuit, lane)
        try:
            x, lane_diag = run_ladder(circuit, compiled, guess.copy(),
                                      None, options, strategies)
        except ConvergenceError as error:
            if error.diagnostics is not None:
                error.diagnostics.stages[0:0] = batched_stages
                error.diagnostics.total_iterations += batched_iters
            failures.append((lane_index, error))
            points[lane_index] = _nan_point(compiled, error.diagnostics)
            tspan.event("lane-failed", lane=lane_index,
                        label=lane.label, why=str(error))
            if first_error is None:
                first_error = error
            continue
        finally:
            undo()
        lane_diag.stages[0:0] = batched_stages
        lane_diag.total_iterations += batched_iters
        result = _package(compiled, x, lane_diag.total_iterations,
                          lane_diag)
        result.device_ops = _LaneDeviceOps(assembler, lane_index,
                                           result.x)
        points[lane_index] = result
    diagnostics.n_failed = len(failures)
    diagnostics.wall_time = _time.perf_counter() - start
    tspan.annotate(n_converged_batched=diagnostics.n_converged_batched,
                   n_converged_gmin=diagnostics.n_converged_gmin,
                   n_fallback=diagnostics.n_fallback,
                   n_failed=diagnostics.n_failed,
                   iterations=diagnostics.iterations)
    if failures and on_error == "raise":
        raise first_error
    return BatchOpResult(points=points, failures=failures,
                         diagnostics=diagnostics)


# -- analysis-layer specs -------------------------------------------------


@dataclass(frozen=True)
class BatchedOpMetric:
    """A Monte-Carlo metric whose evaluation is one DC operating point.

    The spec is *both* the serial metric function -- calling it with a
    seed builds a fresh circuit, applies the drawn lane perturbation,
    solves serially and measures -- and the vectorizable description
    :class:`~repro.analysis.montecarlo.MonteCarlo` consumes under
    ``backend="batched"``.  Both paths share :func:`apply_lane` /
    ``draw``, so they see bit-identical perturbations.

    Attributes:
        build: Zero-argument factory for a fresh base circuit.
        draw: ``(seed, circuit) -> LaneSpec``; must be a pure function
            of the seed (same seed, same draw -- the batched and serial
            backends both rely on it).
        measure: ``OpResult -> {metric: value}``.
        options / strategies: Solver overrides shared by both paths.
    """

    build: Callable[[], "Circuit"]
    draw: Callable[[int, "Circuit"], LaneSpec]
    measure: Callable[["OpResult"], Mapping[str, float]]
    options: NewtonOptions | None = None
    strategies: tuple | None = None

    def __call__(self, seed: int) -> dict[str, float]:
        from .dc import operating_point
        circuit = self.build()
        lane = self.draw(seed, circuit)
        undo = apply_lane(circuit, lane)
        try:
            result = operating_point(circuit, self.options,
                                     strategies=self.strategies)
            return {name: float(value)
                    for name, value in self.measure(result).items()}
        finally:
            undo()

    def plan(self) -> "PlannedOpMetric":
        """Materialize the spec into a reusable, shippable plan.

        Builds the base circuit and compiles it **once**; the returned
        :class:`PlannedOpMetric` carries the compiled circuit along, so
        every later evaluation -- in this process or in a worker that
        received the plan through the shared-memory cache -- reuses the
        assembler instead of rebuilding and recompiling per seed.  This
        is what makes ``compile_cache_misses == 1`` across a whole
        parallel Monte-Carlo fleet.
        """
        circuit = self.build()
        circuit.compile()
        return PlannedOpMetric(circuit=circuit, draw=self.draw,
                               measure=self.measure, options=self.options,
                               strategies=self.strategies)


@dataclass(frozen=True)
class PlannedOpMetric:
    """A :class:`BatchedOpMetric` with its circuit built and compiled.

    Evaluation applies the seed's lane to the *shared* prebuilt circuit
    and undoes it afterwards -- :func:`apply_lane`'s undo contract
    restores the circuit exactly, and every solve cold-starts from the
    circuit's nodesets, so per-seed results are bit-identical to the
    fresh-build :class:`BatchedOpMetric` path.  The plan pickles whole
    (compiled assembler included), which is the payload the
    shared-memory Monte-Carlo publishes once per campaign.
    """

    circuit: "Circuit"
    draw: Callable[[int, "Circuit"], LaneSpec]
    measure: Callable[["OpResult"], Mapping[str, float]]
    options: NewtonOptions | None = None
    strategies: tuple | None = None

    def __call__(self, seed: int) -> dict[str, float]:
        from .dc import operating_point
        lane = self.draw(seed, self.circuit)
        undo = apply_lane(self.circuit, lane)
        try:
            result = operating_point(self.circuit, self.options,
                                     strategies=self.strategies)
            return {name: float(value)
                    for name, value in self.measure(result).items()}
        finally:
            undo()


# -- batched transient ----------------------------------------------------


@dataclass
class BatchTranDiagnostics:
    """Population-level record of one lockstep transient run.

    Attributes:
        circuit: Circuit name.
        batch: Number of lanes the run started with.
        steps_accepted: Shared time points committed by the lockstep
            grid (every surviving lane holds exactly this many samples
            past t = 0).
        steps_rejected: Shared-grid attempts that shrank the step, all
            causes and lanes pooled.
        newton_iterations: Total stacked Newton iterations over
            converged lanes of every attempt.
        lane_rejections: ``(B,)`` rejections *attributed* to each lane
            (the lanes whose Newton failure or LTE estimate forced the
            shared shrink) -- the kick-out budget counts these.
        fallback_lanes: ``(lane index, reason)`` per lane that left the
            lockstep grid for the serial path (initial-DC failures
            included).
        n_failed: Lanes without a result (serial fallback failed too).
        dt_smallest: Smallest shared step committed [s].
        wall_time: Whole-run wall time [s].
    """

    circuit: str
    batch: int
    steps_accepted: int = 0
    steps_rejected: int = 0
    newton_iterations: int = 0
    lane_rejections: np.ndarray | None = None
    fallback_lanes: list[tuple[int, str]] = field(default_factory=list)
    n_failed: int = 0
    dt_smallest: float = float("inf")
    wall_time: float = 0.0

    def describe(self) -> str:
        lockstep = self.batch - len(self.fallback_lanes)
        text = (f"{self.circuit}: {lockstep}/{self.batch} lanes in "
                f"lockstep, {self.steps_accepted} shared steps accepted, "
                f"{self.steps_rejected} rejected")
        if self.fallback_lanes:
            text += f", {len(self.fallback_lanes)} serial fallbacks"
        if self.n_failed:
            text += f", {self.n_failed} failed"
        return text


@dataclass
class BatchTranResult:
    """Per-lane transient waveforms of one batched run.

    Attributes:
        results: One :class:`~repro.spice.results.TranResult` per lane
            in lane order (None for lanes that failed even the serial
            fallback, recorded under ``on_error="skip"``).  Lockstep
            lanes share one time axis; serial-fallback lanes carry
            their own adaptive grid.
        failures: ``(lane index, error)`` per failed lane.
        diagnostics: The population-level :class:`BatchTranDiagnostics`.
    """

    results: list
    failures: list[tuple[int, ConvergenceError]]
    diagnostics: BatchTranDiagnostics

    @property
    def n_failed(self) -> int:
        return len(self.failures)


def batch_transient(circuit: "Circuit", lanes: Sequence[LaneSpec],
                    t_stop: float,
                    options: TransientOptions | None = None,
                    on_error: str = "raise",
                    scopes: Sequence | None = None,
                    matrix_backend: str | None = None,
                    lane_rejection_budget: int = 24) -> BatchTranResult:
    """Integrate every lane from t = 0 to ``t_stop`` in lockstep.

    All lanes advance on one shared adaptive grid: per attempted step
    there is a single stacked damped-Newton solve over ``(B, N, N)``
    dense or ``(B, nnz)`` shared-pattern sparse rows (the trapezoidal /
    BE charge companions stamped per lane through the serial kernel's
    ``extra_stamp`` slot), then one LTE estimate *per lane*, reduced to
    a shared verdict by the min-rule: any lane over tolerance rejects
    the step for everyone, and the accepted-growth factor is the most
    conservative lane's ask (same growth cap / shrink floor as the
    serial controller).  Sparse campaigns keep one
    :class:`_SparseChordState` across accepted steps, so an unchanged
    dt lets lanes ride chord steps on the previous step's LU handles.

    Per-lane kick-out mirrors the batched-DC fallback contract: a lane
    that fails its initial DC point, fails Newton with the step floored
    at ``dt_min``, or accumulates more than ``lane_rejection_budget``
    attributed rejections leaves the grid and re-runs the full serial
    ladder + serial :func:`~repro.spice.transient.transient` with its
    perturbation applied -- robustness is never worse than serial, and
    lanes that fail everything carry a failed-lane record.

    ``scopes``, when given, is one
    :class:`~repro.scope.capture.ScopeSession` (or None) per lane;
    every committed shared sample is fed to the lane's session exactly
    as the serial engine would (t = 0 included), and a kicked-out
    lane's session is reset and handed to its serial fallback run.

    ``on_error="raise"`` propagates the first failed lane's error;
    ``"skip"`` records None results and keeps going.  Telemetry: the
    run counts ``batch_transient_steps`` (one per accepted shared
    step) and ``batch_transient_lane_rejections`` (one per attributed
    lane rejection) under its ``batch-transient`` span.
    """
    if t_stop <= 0.0:
        raise NetlistError(f"t_stop must be positive, got {t_stop}")
    options = options or TransientOptions()
    if options.method not in ("trap", "be"):
        raise NetlistError(f"unknown method {options.method!r}")
    if options.step_control != "lte":
        raise AnalysisError(
            "the batched transient engine is LTE-only; "
            "step_control='legacy' is a serial bit-compat mode -- run "
            "those lanes through the serial transient()")
    if on_error not in ("raise", "skip"):
        raise NetlistError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}")
    lanes = list(lanes)
    if scopes is not None:
        scopes = list(scopes)
        if len(scopes) != len(lanes):
            raise AnalysisError(
                f"scopes must be one session (or None) per lane: got "
                f"{len(scopes)} for {len(lanes)} lanes")
    if matrix_backend is not None:
        if matrix_backend not in circuit.MATRIX_BACKENDS:
            raise NetlistError(
                f"unknown matrix backend {matrix_backend!r}, expected "
                f"one of {circuit.MATRIX_BACKENDS}")
        if matrix_backend != circuit.matrix_backend:
            circuit.matrix_backend = matrix_backend
            if circuit._compiled is not None:
                circuit._compiled._solver_backend = None
    with telemetry.span("batch-transient", circuit=circuit.name,
                        batch=len(lanes), t_stop=t_stop,
                        method=options.method) as tspan:
        return _batch_transient_run(circuit, lanes, t_stop, options,
                                    on_error, scopes,
                                    lane_rejection_budget, tspan)


def _batch_transient_run(circuit: "Circuit", lanes: list[LaneSpec],
                         t_stop: float, options: TransientOptions,
                         on_error: str, scopes,
                         budget: int, tspan) -> BatchTranResult:
    start = _time.perf_counter()
    B = len(lanes)
    dt = options.dt_initial or t_stop / 1000.0
    dt_min = options.dt_min or t_stop * 1e-9
    dt_max = options.dt_max or t_stop / 50.0
    dt = min(dt, dt_max)
    newton_options = options.newton
    deadline = None
    if options.max_wall_time is not None:
        deadline = start + options.max_wall_time
        newton_options = dataclasses.replace(newton_options,
                                             deadline=deadline)
    # Same Newton/waveform tolerance coupling as the serial LTE path.
    newton_options = dataclasses.replace(
        newton_options, vntol=max(newton_options.vntol, options.abstol))
    order = 2 if options.method == "trap" else 1

    compiled = circuit.compile()
    assembler = BatchAssembler(compiled, lanes)
    use_sparse = compiled.solver_backend() == "sparse"
    if use_sparse:
        assembler.enable_sparse()
        tspan.annotate(matrix_backend="sparse")
    system = assembler.sparse_batch_system() if use_sparse else None
    seg_slices = system.segment_slices if use_sparse else None
    n_nodes = len(compiled.node_index)
    N = compiled.size

    results: list = [None] * B
    failures: list[tuple[int, ConvergenceError]] = []
    lane_logs = [TransientTelemetry() for _ in range(B)]
    lane_newton_iters = np.zeros(B, dtype=int)
    diag = BatchTranDiagnostics(circuit=circuit.name, batch=B,
                                lane_rejections=np.zeros(B, dtype=int))
    first_error: ConvergenceError | None = None
    live_mask = np.ones(B, dtype=bool)

    def _serial_options() -> TransientOptions:
        if deadline is None:
            return options
        remaining = max(deadline - _time.perf_counter(), 0.0)
        return dataclasses.replace(options, max_wall_time=remaining)

    def _kick_out(lane_index: int, reason: str) -> None:
        """Move one lane off the shared grid onto the serial path."""
        nonlocal first_error
        live_mask[lane_index] = False
        diag.fallback_lanes.append((lane_index, reason))
        tspan.inc("batch_lane_fallbacks")
        tspan.event("lane-fallback", lane=lane_index,
                    label=lanes[lane_index].label, why=reason)
        scope = scopes[lane_index] if scopes is not None else None
        if scope is not None:
            # The session saw the lane's partial lockstep stream; the
            # serial rerun replays the waveform from t = 0, so the
            # session restarts clean (single-use contract preserved).
            scope.reset()
        undo = apply_lane(circuit, lanes[lane_index])
        try:
            results[lane_index] = transient(circuit, t_stop,
                                            _serial_options(),
                                            scope=scope)
        except ConvergenceError as error:
            failures.append((lane_index, error))
            if first_error is None:
                first_error = error
            tspan.event("lane-failed", lane=lane_index,
                        label=lanes[lane_index].label, why=str(error))
        finally:
            undo()

    # Initial DC point per lane, stacked; a lane that fails every DC
    # strategy never enters the grid (serial transient would have
    # raised before its first step too).
    dc = batch_operating_point(circuit, lanes, options=newton_options,
                               on_error="skip")
    for lane_index, error in dc.failures:
        live_mask[lane_index] = False
        diag.fallback_lanes.append(
            (lane_index, f"initial operating point failed: {error}"))
        failures.append((lane_index, error))
        if first_error is None:
            first_error = error
    if on_error == "raise" and failures:
        raise first_error

    X = np.zeros((B, N))
    for k in np.nonzero(live_mask)[0]:
        X[k] = dc.points[k].x

    live = np.nonzero(live_mask)[0].astype(np.intp)
    q_prev = np.zeros((B, assembler.n_charge_terms))
    i_prev = np.zeros_like(q_prev)
    if live.size:
        q_prev[live] = assembler.charge_vector_batch(X[live])

    record_dense = [scopes is None or scopes[k] is None
                    or not scopes[k].replace_dense for k in range(B)]
    times = [0.0]
    samples: dict[int, list] = {}
    for k in live:
        k = int(k)
        if record_dense[k]:
            samples[k] = [X[k].copy()]
        scope = scopes[k] if scopes is not None else None
        if scope is not None:
            scope._bind(compiled.node_index, circuit.name, tspan)
            scope._on_sample(0.0, X[k])
    recorded_sources = [e for e in circuit.elements
                        if isinstance(e, VoltageSource)]

    breakpoints = _breakpoints(circuit, t_stop)
    bp_cursor = 0
    hist_t: list[float] = [0.0]
    hist_X: list[np.ndarray] = [X.copy()]
    chord = (_SparseChordState()
             if use_sparse and newton_options.lu_reuse else None)
    aborted: ConvergenceError | None = None

    def _reject(cause: str, bad: np.ndarray, t: float, step: float,
                err_norms=None) -> bool:
        """Book one shared rejection attributed to lanes ``bad``;
        returns False when the run-level rejection budget is gone."""
        nonlocal aborted
        diag.steps_rejected += 1
        diag.lane_rejections[bad] += 1
        tspan.inc("batch_transient_lane_rejections", int(bad.size))
        tspan.event("batch-step-rejected", t=t, dt=step, cause=cause,
                    lanes=[int(l) for l in bad],
                    **({} if err_norms is None else
                       {"err_norm": float(np.max(err_norms))}))
        for lane in bad:
            lane_logs[int(lane)].record_rejection(t, cause)
        if (options.max_rejections is not None
                and diag.steps_rejected > options.max_rejections):
            aborted = ConvergenceError(
                f"batched transient exhausted its rejection budget of "
                f"{options.max_rejections} at t={t:.3e}s in "
                f"{circuit.name} ({diag.describe()})",
                diagnostics=diag, stage="rejection-budget")
            return False
        return True

    t = 0.0
    while live_mask.any() and t < t_stop * (1.0 - 1e-12):
        if deadline is not None and _time.perf_counter() >= deadline:
            aborted = ConvergenceError(
                f"batched transient exceeded its wall-clock budget of "
                f"{options.max_wall_time:.3g}s at t={t:.3e}s "
                f"({t / t_stop:.0%} of t_stop) in {circuit.name} "
                f"({diag.describe()})",
                diagnostics=diag, stage="wall-clock")
            break
        while (bp_cursor < len(breakpoints)
               and breakpoints[bp_cursor] <= t * (1 + 1e-12)):
            bp_cursor += 1
        t_limit = (breakpoints[bp_cursor] if bp_cursor < len(breakpoints)
                   else t_stop)
        t_limit = min(t_limit, t_stop)
        step = min(dt, t_limit - t)
        if step <= 0.0:
            bp_cursor += 1
            continue

        accepted = False
        err_norms = None
        pred_order = 0
        while not accepted:
            live = np.nonzero(live_mask)[0].astype(np.intp)
            if live.size == 0:
                break
            t_new = t + step
            if options.method == "trap":
                c0 = 2.0 / step
                RHS = -c0 * q_prev - i_prev
            else:
                c0 = 1.0 / step
                RHS = -c0 * q_prev
            if chord is not None:
                # dt (hence c0) changed => the companion stamps changed
                # => every cached per-lane factorization is stale.
                chord.ensure_key(c0)

            def dynamic_stamp(target, res, Xa, lane_idx,
                              _c0=c0, _rhs=RHS):
                assembler.stamp_charges_batch(
                    target, res, Xa, _c0, _rhs[lane_idx],
                    segment_slices=seg_slices)

            # Shared-grid predictor: the LTE reference and Newton's
            # warm start, exactly like the serial controller (the
            # scalar Lagrange weights broadcast over the stacked
            # history rows unchanged).
            X_pred = None
            pred_order = 0
            if len(hist_t) >= 2:
                k = min(order + 1, len(hist_t))
                candidate = _predict(t_new, hist_t, hist_X, k)
                if np.all(np.isfinite(candidate[live])):
                    X_pred = candidate
                    pred_order = k - 1
            X_try = X.copy()
            if X_pred is not None:
                X_try[live] = X_pred[live]
            outcome = _newton_rounds(assembler, X_try, live,
                                     newton_options,
                                     newton_options.gmin, [],
                                     time=t_new, extra=dynamic_stamp,
                                     chord=chord)
            ok = (outcome.converged[live]
                  & np.all(np.isfinite(X_try[live]), axis=1))
            solved_iters = np.where(ok, outcome.iterations[live], 0)
            lane_newton_iters[live] += solved_iters
            diag.newton_iterations += int(solved_iters.sum())
            if not ok.all():
                if deadline is not None and \
                        _time.perf_counter() >= deadline:
                    # Budget-killed stacked solves surface as the
                    # wall-clock abort, not a dt-min grind.
                    aborted = ConvergenceError(
                        f"batched transient exceeded its wall-clock "
                        f"budget of {options.max_wall_time:.3g}s at "
                        f"t={t:.3e}s in {circuit.name} "
                        f"({diag.describe()})",
                        diagnostics=diag, stage="wall-clock")
                    break
                failed = live[~ok]
                if not _reject("newton", failed, t, step):
                    break
                at_floor = step / 4.0 < dt_min
                for lane in failed:
                    lane = int(lane)
                    why = outcome.reasons.get(
                        lane, "Newton failed on the shared grid")
                    if at_floor:
                        _kick_out(lane,
                                  f"Newton failed with the shared step "
                                  f"floored at dt_min={dt_min:.1e} "
                                  f"(t={t:.3e}s): {why}")
                    elif diag.lane_rejections[lane] > budget:
                        _kick_out(lane,
                                  f"lane exceeded its rejection budget "
                                  f"of {budget} on the shared grid "
                                  f"(t={t:.3e}s, Newton: {why})")
                if any(live_mask[lane] for lane in failed):
                    step /= 4.0
                continue

            err_norms = None
            if X_pred is not None:
                err_norms = _lte_norms_batch(
                    t_new, X_try[live], X_pred[live], hist_t,
                    hist_X[-1][live], n_nodes, pred_order, options)
                # Reduced-order estimates steer but never reject, as
                # in the serial controller.
                if pred_order == order:
                    rejecting = err_norms > 1.0
                    if rejecting.any():
                        if step <= dt_min * (1.0 + 1e-9):
                            tspan.event(
                                "lte-floor", t=t, dt=step,
                                err_norm=float(err_norms.max()))
                        else:
                            bad = live[rejecting]
                            bad_errs = err_norms[rejecting]
                            if not _reject("lte", bad, t, step,
                                           bad_errs):
                                break
                            for lane, e_norm in zip(bad, bad_errs):
                                lane = int(lane)
                                if diag.lane_rejections[lane] > budget:
                                    _kick_out(
                                        lane,
                                        f"lane kept rejecting the "
                                        f"shared grid (budget {budget} "
                                        f"exceeded at t={t:.3e}s, last "
                                        f"LTE norm {float(e_norm):.3g})")
                            survivors = [live_mask[int(lane)]
                                         for lane in bad]
                            if any(survivors):
                                # Min-rule: the worst surviving lane's
                                # ask shrinks the shared step.
                                worst = float(np.max(
                                    bad_errs[np.asarray(survivors)]))
                                factor = max(
                                    _LTE_MIN_SHRINK,
                                    min(0.9, _lte_factor(worst,
                                                         pred_order)))
                                step = max(dt_min, step * factor)
                            continue
            accepted = True

        if aborted is not None:
            break
        if not accepted:
            continue

        # Commit the shared step.
        q_new = assembler.charge_vector_batch(X_try[live])
        q_prev[live] = q_new
        i_prev[live] = c0 * q_new + RHS[live]
        X[live] = X_try[live]
        t = t_new
        diag.steps_accepted += 1
        diag.dt_smallest = min(diag.dt_smallest, step)
        tspan.inc("batch_transient_steps")
        times.append(t)
        for k in live:
            k = int(k)
            lane_logs[k].steps_accepted += 1
            lane_logs[k].dt_smallest = min(lane_logs[k].dt_smallest,
                                           step)
            if record_dense[k]:
                samples[k].append(X[k].copy())
            scope = scopes[k] if scopes is not None else None
            if scope is not None:
                scope._on_sample(t, X[k])

        landed_on_breakpoint = (
            bp_cursor < len(breakpoints)
            and t >= breakpoints[bp_cursor] * (1 - 1e-12))
        if landed_on_breakpoint:
            hist_t = []
            hist_X = []
            gap = (breakpoints[bp_cursor + 1]
                   if bp_cursor + 1 < len(breakpoints)
                   else t_stop) - t
            dt = max(dt_min,
                     min(step, gap * _BREAKPOINT_RESTART_FRACTION))
        else:
            hist_t.append(t)
            hist_X.append(X.copy())
            if len(hist_t) > order + 1:
                del hist_t[0], hist_X[0]
            if err_norms is None:
                factor = 1.0
            else:
                # Min-rule growth: the most conservative lane (largest
                # error norm) sets the shared next step.
                factor = min(_LTE_MAX_GROWTH,
                             max(0.3, _lte_factor(float(err_norms.max()),
                                                  pred_order)))
            dt = min(dt_max, max(dt_min, step * factor))

    if aborted is not None:
        if on_error == "raise":
            raise aborted
        for k in np.nonzero(live_mask)[0]:
            failures.append((int(k), aborted))
            live_mask[k] = False

    # Package the lockstep survivors onto the shared time axis.
    lockstep = np.nonzero(live_mask)[0]
    time_axis = np.asarray(times)
    for k in lockstep:
        k = int(k)
        scope = scopes[k] if scopes is not None else None
        if scope is not None:
            scope._finish()
        lane_logs[k].newton_iterations = int(lane_newton_iters[k])
        if record_dense[k]:
            lane_samples = samples[k]
            store = np.empty((N, len(lane_samples)))
            for j, vec in enumerate(lane_samples):
                store[:, j] = vec
                lane_samples[j] = None
            voltages = {name: store[idx]
                        for name, idx in compiled.node_index.items()}
            branch = ({e.name: store[compiled.aux_index[e.name][0]]
                       for e in recorded_sources}
                      if options.record_currents else {})
        else:
            voltages = {}
            branch = {}
        results[k] = TranResult(time=time_axis, voltages=voltages,
                                branch_currents=branch,
                                telemetry=lane_logs[k])

    fallback_serial_steps = sum(
        results[k].telemetry.steps_accepted
        for k, _reason in diag.fallback_lanes
        if results[k] is not None and results[k].telemetry is not None)
    lane_samples_total = sum(len(r.time) - 1
                             for r in results if r is not None)
    diag.n_failed = len(failures)
    diag.wall_time = _time.perf_counter() - start
    tspan.annotate(steps_accepted=diag.steps_accepted,
                   steps_rejected=diag.steps_rejected,
                   lanes_lockstep=int(lockstep.size),
                   lane_rejections=int(diag.lane_rejections.sum()),
                   n_fallback=len(diag.fallback_lanes),
                   n_failed=diag.n_failed,
                   fallback_serial_steps=int(fallback_serial_steps),
                   lane_samples=int(lane_samples_total))
    if failures and on_error == "raise":
        raise first_error
    return BatchTranResult(results=results, failures=failures,
                           diagnostics=diag)


@dataclass(frozen=True)
class BatchedOpSweep:
    """A 1-D sweep whose evaluation is one DC operating point per value.

    Serial path (calling the spec with a value) and the batched backend
    of :func:`~repro.analysis.sweep.sweep_1d` share ``lane`` /
    :func:`apply_lane`, so both stamp the swept value identically.
    """

    build: Callable[[], "Circuit"]
    lane: Callable[[float, "Circuit"], LaneSpec]
    measure: Callable[["OpResult"], Mapping[str, float]]
    options: NewtonOptions | None = None
    strategies: tuple | None = None

    def __call__(self, value: float) -> dict[str, float]:
        from .dc import operating_point
        circuit = self.build()
        spec = self.lane(float(value), circuit)
        undo = apply_lane(circuit, spec)
        try:
            result = operating_point(circuit, self.options,
                                     strategies=self.strategies)
            return {name: float(v)
                    for name, v in self.measure(result).items()}
        finally:
            undo()


@dataclass(frozen=True)
class BatchedTranMetric:
    """A Monte-Carlo metric whose evaluation is one transient run.

    The transient twin of :class:`BatchedOpMetric`: calling the spec
    with a seed is the serial path (build a fresh circuit, apply the
    drawn lane, run the serial :func:`~repro.spice.transient.transient`,
    measure the waveform), and the same spec is the vectorizable
    description :class:`~repro.analysis.montecarlo.MonteCarlo` runs as
    **one** lockstep :func:`batch_transient` campaign under
    ``backend="batched"``.  Both paths share ``draw`` /
    :func:`apply_lane`, so they see bit-identical perturbations.

    Attributes:
        build: Zero-argument factory for a fresh base circuit.
        draw: ``(seed, circuit) -> LaneSpec``; a pure function of the
            seed.
        measure: ``TranResult -> {metric: value}`` over the waveforms.
        t_stop: Integration stop time [s].
        options: Transient options shared by both paths (on a fixed
            grid -- ``dt_initial == dt_min == dt_max`` -- the two
            backends walk the identical time axis).
    """

    build: Callable[[], "Circuit"]
    draw: Callable[[int, "Circuit"], LaneSpec]
    measure: Callable[[TranResult], Mapping[str, float]]
    t_stop: float = 0.0
    options: TransientOptions | None = None

    def __call__(self, seed: int) -> dict[str, float]:
        circuit = self.build()
        lane = self.draw(seed, circuit)
        undo = apply_lane(circuit, lane)
        try:
            result = transient(circuit, self.t_stop, self.options)
            return {name: float(value)
                    for name, value in self.measure(result).items()}
        finally:
            undo()
