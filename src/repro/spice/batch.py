"""Batched ensemble Newton: many independent DC points as one tensor.

Monte-Carlo populations, bias sweeps and parameter-perturbation fault
campaigns all solve the *same* circuit topology at many independent
points -- only per-device parameters (a mismatch draw), a source value
(a sweep point) or a single element value (a fault) differ.  The serial
path pays one full Python Newton loop per point; this module solves the
whole population as one stacked system instead:

* a :class:`LaneSpec` describes one population member ("lane") as a
  perturbation of the base circuit -- per-device VT/beta deltas, scaled
  resistors, overridden source values -- without mutating anything;
* :class:`BatchAssembler` extends the compile-once
  :class:`~repro.spice.assembly.CircuitAssembler` with a ``(B, N)``
  assembly path: the MOS/diode banks are evaluated over ``(B,
  n_devices)`` voltage arrays in one numpy call and scattered into a
  ``(B, N, N)`` stacked Jacobian;
* :func:`batch_newton` runs damped Newton on all lanes at once -- one
  ``np.linalg.solve`` on the stacked Jacobian per iteration (LAPACK's
  batched path) -- with per-lane damping, convergence and stall
  detection.  Converged lanes freeze and leave the active set, so the
  work per iteration shrinks as the population converges;
* :func:`batch_operating_point` orchestrates the whole solve and
  re-runs every lane the batched loop could not converge *individually*
  through the existing strategy ladder
  (:func:`~repro.spice.strategies.run_ladder`), from the same initial
  guess a serial solve would use -- robustness is never worse than
  serial, and failed lanes carry the identical forensic
  :class:`~repro.spice.strategies.SolverDiagnostics`.

The per-lane Newton math mirrors the serial kernel exactly (same
damping rule, same update-norm convergence criterion via
:func:`~repro.spice.strategies.step_converged`, same stall window), so
a lane's trajectory matches its serial solve to LAPACK rounding --
population summaries agree with the serial backend far inside 1e-9
relative tolerance.

:class:`BatchedOpMetric` and :class:`BatchedOpSweep` package the
pattern for the analysis layer: one spec object is both a plain
callable (the serial path: build, perturb, solve, measure) and the
vectorizable description the batched backends of
:class:`~repro.analysis.montecarlo.MonteCarlo`,
:func:`~repro.analysis.sweep.sweep_1d` and
:class:`~repro.faults.campaign.FaultCampaign` consume.
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from .. import telemetry
from ..errors import AnalysisError, ConvergenceError, NetlistError
from .elements import CurrentSource, Resistor, VoltageSource
from .strategies import (DEFAULT_LADDER, GminSteppingStrategy,
                         NewtonOptions, SolverDiagnostics, StageReport,
                         run_ladder, step_converged)
from .assembly import CircuitAssembler
from .waveforms import dc_wave

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .netlist import Circuit, CompiledCircuit
    from .results import OpResult

#: Stage name recorded in :class:`SolverDiagnostics` for lanes the
#: batched loop converged (and, as a failed first stage, for lanes it
#: handed to the serial fallback ladder).
BATCHED_STAGE = "batched-newton"

#: Stage name of the batched gmin-stepping continuation phase.
BATCHED_GMIN_STAGE = "batched-gmin-stepping"


@dataclass(frozen=True, eq=False)
class LaneSpec:
    """One population member, described as a perturbation of the base
    circuit.

    All fields are optional; an empty ``LaneSpec()`` is the unperturbed
    base circuit (used e.g. as the baseline lane of a batched fault
    campaign).

    Attributes:
        vt_delta: Additive VT shift per MOS element [V], in
            ``circuit.mos_elements()`` order (length ``n_mos``).
        beta_scale: Multiplicative current-factor error per MOS element,
            same order/length.
        resistor_scale: ``(name, factor)`` pairs scaling named
            resistors.
        source_values: ``(name, value)`` pairs overriding the DC value
            of named independent sources.
        label: Free-form tag for diagnostics (seed, sweep value, fault
            name).
    """

    vt_delta: np.ndarray | None = None
    beta_scale: np.ndarray | None = None
    resistor_scale: tuple[tuple[str, float], ...] = ()
    source_values: tuple[tuple[str, float], ...] = ()
    label: str = ""

    @classmethod
    def mismatch(cls, vt_delta, beta_scale=None,
                 label: str = "") -> "LaneSpec":
        """Lane from per-device mismatch arrays (bank order)."""
        return cls(vt_delta=np.asarray(vt_delta, dtype=float),
                   beta_scale=(None if beta_scale is None
                               else np.asarray(beta_scale, dtype=float)),
                   label=label)

    @classmethod
    def source(cls, name: str, value: float,
               label: str = "") -> "LaneSpec":
        """Lane overriding one independent source's DC value."""
        return cls(source_values=((name, float(value)),), label=label)


def apply_lane(circuit: "Circuit", lane: LaneSpec) -> Callable[[], None]:
    """Mutate ``circuit`` into the lane's perturbed twin; return an undo.

    This is the *serial* realization of a :class:`LaneSpec` -- the
    per-lane fallback and the serial paths of the spec objects go
    through it, so batched and serial evaluations perturb the circuit
    identically.  Devices are replaced (never mutated in place): MOS
    device objects are commonly shared between elements and only the
    addressed element must move.
    """
    mos = circuit.mos_elements()
    if lane.vt_delta is not None and len(lane.vt_delta) != len(mos):
        raise AnalysisError(
            f"lane vt_delta has {len(lane.vt_delta)} entries for "
            f"{len(mos)} MOS elements in {circuit.name!r}")
    if lane.beta_scale is not None and len(lane.beta_scale) != len(mos):
        raise AnalysisError(
            f"lane beta_scale has {len(lane.beta_scale)} entries for "
            f"{len(mos)} MOS elements in {circuit.name!r}")
    undos: list[Callable[[], None]] = []

    def _restore_device(element, device):
        def undo():
            element.device = device
        return undo

    for k, element in enumerate(mos):
        vt = 0.0 if lane.vt_delta is None else float(lane.vt_delta[k])
        beta = 1.0 if lane.beta_scale is None else float(lane.beta_scale[k])
        if vt == 0.0 and beta == 1.0:
            continue
        undos.append(_restore_device(element, element.device))
        element.device = dataclasses.replace(
            element.device,
            vt_shift=element.device.vt_shift + vt,
            beta_factor=element.device.beta_factor * beta)
    for name, factor in lane.resistor_scale:
        element = circuit.element(name)
        if not isinstance(element, Resistor):
            raise AnalysisError(f"{name!r} is not a resistor")
        saved = element.resistance

        def _restore_r(element=element, saved=saved):
            element.resistance = saved
        undos.append(_restore_r)
        element.resistance = saved * factor
    for name, value in lane.source_values:
        element = circuit.element(name)
        if not isinstance(element, (VoltageSource, CurrentSource)):
            raise AnalysisError(f"{name!r} is not an independent source")
        saved = element.waveform

        def _restore_s(element=element, saved=saved):
            element.waveform = saved
        undos.append(_restore_s)
        element.waveform = dc_wave(float(value))

    def undo_all() -> None:
        for undo in reversed(undos):
            undo()
    return undo_all


class BatchAssembler(CircuitAssembler):
    """Stacked ``(B, N)`` assembly over one compiled circuit.

    Builds on the serial assembler's compile-once structure (constant
    linear part, bank index scatter patterns) and adds per-lane
    parameter overlays: VT / beta arrays of shape ``(B, n_mos)``,
    per-lane delta conductances for scaled resistors, per-lane source
    values.  :meth:`assemble_batch` then assembles any subset of lanes
    (the batched Newton loop's shrinking active set) in one pass of
    numpy calls.

    Circuits containing element types the assembler does not know
    (user subclasses stamped through the per-element fallback) cannot
    be batched; constructing a :class:`BatchAssembler` for one raises
    :class:`~repro.errors.AnalysisError` -- use the serial backend.
    """

    def __init__(self, compiled: "CompiledCircuit",
                 lanes: Sequence[LaneSpec]) -> None:
        super().__init__(compiled)
        if self._fallback:
            kinds = sorted({type(e).__name__ for e in self._fallback})
            raise AnalysisError(
                f"circuit {compiled.circuit.name!r} contains element "
                f"types the batched assembler cannot vectorize "
                f"({', '.join(kinds)}); use the serial backend")
        self.lanes = list(lanes)
        self.batch = len(self.lanes)
        if self.batch == 0:
            raise AnalysisError("empty lane list")
        self._build_lane_overlays()

    # -- lane overlays --------------------------------------------------

    def _build_lane_overlays(self) -> None:
        n_mos = len(self._mos)
        mos_names = [m.name for m in self._mos]
        vt_rows, beta_rows = [], []
        any_mos = False
        for lane in self.lanes:
            vt = np.zeros(n_mos)
            beta = np.ones(n_mos)
            if lane.vt_delta is not None:
                if len(lane.vt_delta) != n_mos:
                    raise AnalysisError(
                        f"lane {lane.label!r}: vt_delta has "
                        f"{len(lane.vt_delta)} entries for {n_mos} MOS "
                        f"elements")
                vt = np.asarray(lane.vt_delta, dtype=float)
                any_mos = True
            if lane.beta_scale is not None:
                if len(lane.beta_scale) != n_mos:
                    raise AnalysisError(
                        f"lane {lane.label!r}: beta_scale has "
                        f"{len(lane.beta_scale)} entries for {n_mos} MOS "
                        f"elements")
                beta = np.asarray(lane.beta_scale, dtype=float)
                any_mos = True
            vt_rows.append(vt)
            beta_rows.append(beta)
        self._mos_vt_b = None
        self._mos_ispec_b = None
        if any_mos and self._mos_bank is not None:
            bank = self._mos_bank
            vt_b = np.vstack(vt_rows)
            beta_b = np.vstack(beta_rows)
            n_bank = len(self._mos_all)
            if n_bank > n_mos:
                # Hierarchy: the bank also carries every subcircuit
                # instance's devices, but lane overlays address
                # top-level MOS elements only (the documented
                # ``circuit.mos_elements()`` contract) -- pad the
                # instance tail with identity perturbations.
                vt_b = np.hstack(
                    [vt_b, np.zeros((self.batch, n_bank - n_mos))])
                beta_b = np.hstack(
                    [beta_b, np.ones((self.batch, n_bank - n_mos))])
            self._mos_vt_b = bank.vt[None, :] + vt_b
            self._mos_ispec_b = bank.i_spec[None, :] * beta_b
        del mos_names

        # Resistor overlays: one column per resistor any lane scales.
        over_names: list[str] = []
        for lane in self.lanes:
            for name, _factor in lane.resistor_scale:
                if name not in over_names:
                    over_names.append(name)
        self._rov_dg = None
        if over_names:
            by_name = {r.name: r for r in self._resistors}
            elements = []
            for name in over_names:
                if name not in by_name:
                    raise AnalysisError(
                        f"{name!r} is not a resistor of "
                        f"{self.compiled.circuit.name!r}")
                elements.append(by_name[name])
            a = np.array([e._idx[0] for e in elements], dtype=np.intp)
            b = np.array([e._idx[1] for e in elements], dtype=np.intp)
            self._rov_a, self._rov_b = a, b
            self._rov_a_mask = a >= 0
            self._rov_b_mask = b >= 0
            rows = np.concatenate([a, a, b, b])
            cols = np.concatenate([a, b, a, b])
            valid = (rows >= 0) & (cols >= 0)
            self._rov_flat = (rows[valid].astype(np.intp) * self.size
                              + cols[valid].astype(np.intp))
            self._rov_valid = valid
            n_over = len(elements)
            self._rov_sign = np.concatenate(
                [np.ones(n_over), -np.ones(n_over),
                 -np.ones(n_over), np.ones(n_over)])
            dg = np.zeros((self.batch, n_over))
            base_g = np.array([1.0 / e.resistance for e in elements])
            for li, lane in enumerate(self.lanes):
                for name, factor in lane.resistor_scale:
                    k = over_names.index(name)
                    if factor <= 0.0:
                        raise AnalysisError(
                            f"lane {lane.label!r}: resistor scale for "
                            f"{name!r} must be positive, got {factor}")
                    dg[li, k] = base_g[k] / factor - base_g[k]
            self._rov_dg = dg

        # Source overlays: per-source (B,) value arrays, None when no
        # lane overrides that source.
        vsrc_over: dict[str, np.ndarray] = {}
        isrc_over: dict[str, np.ndarray] = {}
        vsrc_names = {e.name for e in self._vsources}
        isrc_names = {e.name for e in self._isources}
        for li, lane in enumerate(self.lanes):
            for name, value in lane.source_values:
                if name in vsrc_names:
                    table = vsrc_over
                    base = next(e for e in self._vsources
                                if e.name == name)
                elif name in isrc_names:
                    table = isrc_over
                    base = next(e for e in self._isources
                                if e.name == name)
                else:
                    raise AnalysisError(
                        f"{name!r} is not an independent source of "
                        f"{self.compiled.circuit.name!r}")
                if name not in table:
                    table[name] = np.full(self.batch,
                                          base.value_at(None))
                table[name][li] = float(value)
        # Parallel to the *expanded* source lists (top-level sources
        # followed by every instance's template sources).  Overrides
        # are looked up against the top-level prefix only, so a
        # template source that happens to share a top-level source's
        # name is never accidentally overridden.
        n_inst_v = len(self._vsrc_elements) - len(self._vsources)
        n_inst_i = len(self._isrc_elements) - len(self._isources)
        self._vsrc_over = ([vsrc_over.get(e.name) for e in self._vsources]
                           + [None] * n_inst_v)
        self._isrc_over = ([isrc_over.get(e.name) for e in self._isources]
                           + [None] * n_inst_i)

    # -- stacked hot path -----------------------------------------------

    def _grounded_batch(self, X: np.ndarray) -> np.ndarray:
        """``X`` (A, N) padded with a zero column so index -1 reads 0."""
        Xg = np.empty((X.shape[0], X.shape[1] + 1))
        Xg[:, :-1] = X
        Xg[:, -1] = 0.0
        return Xg

    def assemble_batch(self, jac: np.ndarray, res: np.ndarray,
                       X: np.ndarray, lane_idx: np.ndarray,
                       time: float | None = None) -> None:
        """Overwrite ``jac`` (A, N, N) / ``res`` (A, N) with the full
        static system of lanes ``lane_idx`` at solutions ``X`` (A, N)."""
        n_active = X.shape[0]
        jac[:] = self._g_const
        np.matmul(X, self._g_const.T, out=res)
        for element, row, over in zip(self._vsrc_elements,
                                      self._vsrc_branch_rows,
                                      self._vsrc_over):
            if over is None:
                res[:, row] -= element.value_at(time)
            else:
                res[:, row] -= over[lane_idx]
        for element, (p, n), over in zip(self._isrc_elements,
                                         self._isrc_nodes,
                                         self._isrc_over):
            value = (element.value_at(time) if over is None
                     else over[lane_idx])
            if p >= 0:
                res[:, p] += value
            if n >= 0:
                res[:, n] -= value
        if telemetry.is_enabled():
            span = telemetry.current_span()
            if self._mos_bank is not None:
                span.inc("device_bank_evals")
            if self._diode_bank is not None:
                span.inc("device_bank_evals")
        Xg = self._grounded_batch(X)
        jac_flat = jac.reshape(n_active, -1)
        all_rows = (slice(None),)
        if self._mos_bank is not None:
            d, g, s, b = self._mos_terms
            bank = self._lane_mos_bank(lane_idx)
            r = bank.evaluate(Xg[:, d], Xg[:, g], Xg[:, s], Xg[:, b])
            np.add.at(res, all_rows + (d[self._mos_d_mask],),
                      r.ids[:, self._mos_d_mask])
            np.add.at(res, all_rows + (s[self._mos_s_mask],),
                      -r.ids[:, self._mos_s_mask])
            partials = np.concatenate(
                [r.p_d, r.p_g, r.p_s, r.p_b,
                 r.p_d, r.p_g, r.p_s, r.p_b], axis=1)
            values = (self._mos_sign * partials)[:, self._mos_valid]
            np.add.at(jac_flat, all_rows + (self._mos_flat,), values)
        if self._diode_bank is not None:
            a, c = self._diode_terms
            current, conductance = self._diode_bank.current(
                Xg[:, a] - Xg[:, c])
            np.add.at(res, all_rows + (a[self._diode_a_mask],),
                      current[:, self._diode_a_mask])
            np.add.at(res, all_rows + (c[self._diode_c_mask],),
                      -current[:, self._diode_c_mask])
            values = self._diode_sign * np.tile(conductance, (1, 4))
            np.add.at(jac_flat, all_rows + (self._diode_flat,),
                      values[:, self._diode_valid])
        if self._rov_dg is not None:
            dg = self._rov_dg[lane_idx]
            va = Xg[:, self._rov_a]
            vb = Xg[:, self._rov_b]
            i = dg * (va - vb)
            np.add.at(res, all_rows + (self._rov_a[self._rov_a_mask],),
                      i[:, self._rov_a_mask])
            np.add.at(res, all_rows + (self._rov_b[self._rov_b_mask],),
                      -i[:, self._rov_b_mask])
            values = self._rov_sign * np.tile(dg, (1, 4))
            np.add.at(jac_flat, all_rows + (self._rov_flat,),
                      values[:, self._rov_valid])

    def _lane_mos_bank(self, lane_idx):
        """A bank view whose VT / I_spec rows are the selected lanes'.

        The bank math is pure elementwise numpy, so swapping the (n,)
        parameter arrays for (A, n) slices broadcasts the evaluation
        over the lane axis with zero duplicated model code.
        ``MosBank.overlay`` rebuilds the bank's derived packed
        constants along the way.
        """
        if self._mos_vt_b is None:
            return self._mos_bank
        return self._mos_bank.overlay(self._mos_vt_b[lane_idx],
                                      self._mos_ispec_b[lane_idx])

    def lane_device_ops(self, lane: int, x: np.ndarray) -> dict:
        """MOS element name -> operating point at ``x`` under the lane's
        parameter overlay (the batched analogue of
        :meth:`CircuitAssembler.device_operating_points`)."""
        if self._mos_bank is None:
            return {}
        bank = self._mos_bank
        if self._mos_vt_b is not None:
            bank = bank.overlay(self._mos_vt_b[lane],
                                self._mos_ispec_b[lane])
        d, g, s, b = self._mos_terms
        vd, vg, vs, vb = self._terminal_voltages(x, (d, g, s, b))
        points = bank.operating_points(vd, vg, vs, vb)
        return dict(zip(self._mos_names, points))


class _LaneDeviceOps(Mapping):
    """Per-lane ``device_ops`` mapping, materialized on first access."""

    def __init__(self, assembler: BatchAssembler, lane: int,
                 x: np.ndarray) -> None:
        self._assembler = assembler
        self._lane = lane
        self._x = x
        self._data: dict | None = None

    def _materialize(self) -> dict:
        if self._data is None:
            self._data = self._assembler.lane_device_ops(self._lane,
                                                         self._x)
        return self._data

    def __getitem__(self, key):
        return self._materialize()[key]

    def __iter__(self):
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())


# -- batched Newton kernel ------------------------------------------------


@dataclass
class BatchDiagnostics:
    """What the batched solve did for one population.

    Attributes:
        circuit: Circuit name.
        batch: Population size B.
        iterations: Stacked Newton iterations run across both batched
            phases (shared clock).
        active_history: Lanes still active entering each stacked
            iteration -- the convergence-masking decay curve (phase 1
            then the gmin rungs).
        n_converged_batched: Lanes plain batched Newton converged
            directly.
        n_converged_gmin: Lanes the batched gmin-stepping continuation
            rescued.
        n_fallback: Lanes re-solved individually through the strategy
            ladder.
        n_failed: Lanes that failed the ladder too.
        fallback_lanes: ``(lane index, reason)`` per handed-off lane.
        wall_time: Seconds spent in the whole batched solve (stacked
            loop plus fallbacks).
    """

    circuit: str
    batch: int
    iterations: int = 0
    active_history: list[int] = field(default_factory=list)
    n_converged_batched: int = 0
    n_converged_gmin: int = 0
    n_fallback: int = 0
    n_failed: int = 0
    fallback_lanes: list[tuple[int, str]] = field(default_factory=list)
    wall_time: float = 0.0

    def describe(self) -> str:
        decay = " -> ".join(str(n) for n in self.active_history[:12])
        if len(self.active_history) > 12:
            decay += " -> ..."
        return (f"batched solve of {self.circuit!r}: B={self.batch}, "
                f"{self.n_converged_batched} converged directly + "
                f"{self.n_converged_gmin} via gmin stepping in "
                f"{self.iterations} stacked iterations "
                f"(active {decay}), {self.n_fallback} fell back to the "
                f"ladder, {self.n_failed} failed "
                f"({self.wall_time * 1e3:.1f} ms)")


@dataclass
class _BatchNewtonOutcome:
    converged: np.ndarray            # (B,) bool, scoped to entry lanes
    iterations: np.ndarray           # (B,) int, iterations this call
    reasons: dict[int, str]          # lane -> why it left the batch loop
    n_iterations: int


def _newton_rounds(assembler: BatchAssembler, X: np.ndarray,
                   lanes_idx: np.ndarray, options: NewtonOptions,
                   gmin: float,
                   active_history: list[int]) -> _BatchNewtonOutcome:
    """One batched damped-Newton solve over ``lanes_idx``, in place.

    The per-lane math mirrors the serial kernel exactly: same damping
    rule, same update-norm convergence criterion
    (:func:`~repro.spice.strategies.step_converged`), same stall window
    -- applied with per-lane state.  Converged lanes freeze (their rows
    stop being assembled and solved, shrinking the stacked system each
    iteration); lanes with non-finite updates or a stalled trajectory
    are kicked out with their serial-identical failure reason.
    ``active_history`` accumulates the active-lane count entering each
    iteration (the masking decay curve for diagnostics).
    """
    compiled = assembler.compiled
    B, N = X.shape
    n_nodes = len(compiled.node_index)
    diag = np.arange(n_nodes)
    converged = np.zeros(B, dtype=bool)
    iterations = np.zeros(B, dtype=int)
    stall_checkpoint = np.full(B, np.inf)
    stall_residual = np.full(B, np.inf)
    reasons: dict[int, str] = {}
    active = np.asarray(lanes_idx, dtype=np.intp).copy()
    tspan = telemetry.current_span() if telemetry.is_enabled() else None
    deadline = options.deadline
    iteration = 0
    for iteration in range(1, options.max_iterations + 1):
        n_active = active.size
        if n_active == 0:
            iteration -= 1
            break
        if deadline is not None and _time.perf_counter() >= deadline:
            # Wall-clock budget exhausted mid-population: the serial
            # kernel raises stage="wall-clock" here; the batched loop
            # instead kicks every still-active lane out with that
            # reason (converged lanes keep their solutions) so the
            # caller's diagnostics carry the partial outcome.
            iteration -= 1
            for lane in active:
                reasons[int(lane)] = (
                    f"wall-clock budget exhausted after "
                    f"{int(iterations[lane])} batched Newton iterations "
                    f"in {compiled.circuit.name} [stage wall-clock]")
            if tspan is not None:
                tspan.event("batch-deadline", n_active=n_active,
                            iteration=iteration)
            active = active[:0]
            break
        active_history.append(n_active)
        jac = np.empty((n_active, N, N))
        res = np.empty((n_active, N))
        assembler.assemble_batch(jac, res, X[active], active)
        if gmin > 0.0:
            jac[:, diag, diag] += gmin
            res[:, :n_nodes] += gmin * X[active][:, :n_nodes]
        if tspan is not None:
            tspan.inc("jacobian_factorizations", n_active)
        # Per-lane residual norms feed the stall detector (mirroring
        # the serial kernel); only window boundaries read them.
        res_norm = None
        if iteration == 1 or (options.stall_window > 0 and
                              iteration % options.stall_window == 0):
            res_norm = np.abs(res).max(axis=1)
        dX = _solve_stacked(jac, res)
        finite = np.all(np.isfinite(dX), axis=1)
        if not finite.all():
            for lane in active[~finite]:
                reasons[int(lane)] = ("non-finite Newton update in "
                                      f"{compiled.circuit.name}")
                iterations[lane] = iteration
            active = active[finite]
            dX = dX[finite]
            if res_norm is not None:
                res_norm = res_norm[finite]
            if active.size == 0:
                if tspan is not None:
                    tspan.event("batch-iter", i=iteration, n_active=0)
                continue
        v_updates = (np.abs(dX[:, :n_nodes]) if n_nodes
                     else np.zeros((active.size, 1)))
        biggest = (v_updates.max(axis=1) if v_updates.shape[1]
                   else np.zeros(active.size))
        scale = np.where(biggest <= options.max_step, 1.0,
                         options.max_step / np.maximum(biggest, 1e-300))
        X[active] += scale[:, None] * dX
        iterations[active] = iteration
        step_norm = biggest * scale
        if iteration == 1:
            # Arm the stall detector from the opening update norm and
            # residual -- mirrors the serial kernel so both paths kick
            # out a stalled lane after one window, not two.
            stall_checkpoint[active] = step_norm
            stall_residual[active] = res_norm
        v_max = (np.abs(X[active][:, :n_nodes]).max(axis=1) if n_nodes
                 else np.zeros(active.size))
        conv = step_converged(step_norm, v_max, options) & (scale == 1.0)
        if tspan is not None:
            tspan.event("batch-iter", i=iteration,
                        n_active=int(active.size),
                        n_converged=int(conv.sum()),
                        max_step_norm=float(step_norm.max(initial=0.0)))
        keep = ~conv
        converged[active[conv]] = True
        if options.stall_window > 0 and \
                iteration % options.stall_window == 0:
            stalled = (step_norm > 0.5 * stall_checkpoint[active]) \
                & (res_norm > 0.5 * stall_residual[active])
            stalled &= keep
            for lane, norm, rnorm in zip(active[stalled],
                                         step_norm[stalled],
                                         res_norm[stalled]):
                reasons[int(lane)] = (
                    f"Newton stalled after {iteration} iterations in "
                    f"{compiled.circuit.name} (neither the update norm "
                    f"{norm:.3e} nor the residual {rnorm:.3e} halved "
                    f"over the last "
                    f"{options.stall_window} iterations)")
            keep &= ~stalled
            stall_checkpoint[active] = step_norm
            stall_residual[active] = res_norm
        active = active[keep]
    for lane in active:
        reasons[int(lane)] = (
            f"Newton failed after {options.max_iterations} iterations "
            f"in {compiled.circuit.name}")
        iterations[lane] = iteration
    return _BatchNewtonOutcome(converged=converged,
                               iterations=iterations, reasons=reasons,
                               n_iterations=iteration)


def batch_newton(assembler: BatchAssembler, X: np.ndarray,
                 options: NewtonOptions, gmin: float,
                 active_history: list[int] | None = None,
                 ) -> _BatchNewtonOutcome:
    """Plain damped Newton over all lanes at once (in place on ``X``)."""
    if active_history is None:
        active_history = []
    return _newton_rounds(assembler, X, np.arange(X.shape[0]), options,
                          gmin, active_history)


def batch_gmin_stepping(assembler: BatchAssembler, X: np.ndarray,
                        lanes_idx: np.ndarray, options: NewtonOptions,
                        active_history: list[int],
                        start_exponent: int = 3, stop_exponent: int = 15,
                        ) -> _BatchNewtonOutcome:
    """Batched continuation in the shunt conductance.

    The stacked analogue of
    :class:`~repro.spice.strategies.GminSteppingStrategy` (same default
    schedule): solve all lanes with a heavy shunt, relax it one decade
    at a time down to ``options.gmin``, warm-starting each rung from
    the previous one, then polish with a plain solve.  A lane that
    fails any rung leaves the batch (its ``X`` row holds the last rung
    it did converge -- callers fall back per-lane from the original
    guess anyway); lanes that survive every rung converge exactly like
    their serial counterparts.
    """
    B = X.shape[0]
    converged = np.zeros(B, dtype=bool)
    iterations = np.zeros(B, dtype=int)
    reasons: dict[int, str] = {}
    total_rounds = 0
    active = np.asarray(lanes_idx, dtype=np.intp).copy()
    tspan = telemetry.current_span() if telemetry.is_enabled() else None
    schedule = [max(10.0 ** (-e), options.gmin)
                for e in range(start_exponent, stop_exponent + 1)]
    schedule.append(options.gmin)
    for rung, gmin in enumerate(schedule):
        if active.size == 0:
            break
        outcome = _newton_rounds(assembler, X, active, options, gmin,
                                 active_history)
        total_rounds += outcome.n_iterations
        iterations += outcome.iterations
        for lane, why in outcome.reasons.items():
            reasons[lane] = (f"gmin rung {rung} (gmin={gmin:.1e}): "
                             f"{why}")
        if tspan is not None:
            tspan.event("batch-gmin-step", gmin=gmin,
                        n_active=int(active.size),
                        iterations=outcome.n_iterations)
        active = active[outcome.converged[active]]
    converged[active] = True
    return _BatchNewtonOutcome(converged=converged,
                               iterations=iterations, reasons=reasons,
                               n_iterations=total_rounds)


def _solve_stacked(jac: np.ndarray, res: np.ndarray) -> np.ndarray:
    """Solve every lane's system; singular lanes degrade to lstsq
    instead of poisoning the whole stacked call."""
    try:
        return np.linalg.solve(jac, -res[..., None])[..., 0]
    except np.linalg.LinAlgError:
        dX = np.empty_like(res)
        for k in range(jac.shape[0]):
            try:
                dX[k] = np.linalg.solve(jac[k], -res[k])
            except np.linalg.LinAlgError:
                dX[k], *_ = np.linalg.lstsq(jac[k], -res[k], rcond=None)
        return dX


# -- orchestration --------------------------------------------------------


@dataclass
class BatchOpResult:
    """Per-lane operating points of one batched solve.

    Attributes:
        points: One :class:`~repro.spice.results.OpResult` per lane, in
            lane order (NaN placeholders for lanes that failed every
            strategy, recorded under ``on_error="skip"``).
        failures: ``(lane index, error)`` per failed lane; the stored
            :class:`~repro.errors.ConvergenceError` carries the full
            ladder diagnostics.
        diagnostics: The population-level :class:`BatchDiagnostics`.
    """

    points: list
    failures: list[tuple[int, ConvergenceError]]
    diagnostics: BatchDiagnostics

    @property
    def n_failed(self) -> int:
        return len(self.failures)


def batch_operating_point(circuit: "Circuit",
                          lanes: Sequence[LaneSpec],
                          options: NewtonOptions | None = None,
                          strategies=None,
                          on_error: str = "raise",
                          x0: np.ndarray | None = None) -> BatchOpResult:
    """Solve one DC operating point per lane, stacked.

    Every lane starts from the circuit's nodeset initial guess (or
    ``x0``), exactly like a cold serial
    :func:`~repro.spice.dc.operating_point`.  Lanes the batched Newton
    loop cannot converge are re-solved individually through the serial
    strategy ladder with the lane perturbation applied to the circuit
    (and reverted afterwards), so the failure behaviour -- and the
    forensic diagnostics of lanes that fail everything -- is identical
    to the serial path.

    ``on_error="raise"`` propagates the first failed lane's
    :class:`~repro.errors.ConvergenceError`; ``"skip"`` records NaN
    placeholder points and keeps going.
    """
    if on_error not in ("raise", "skip"):
        raise NetlistError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}")
    options = options or NewtonOptions()
    lanes = list(lanes)
    with telemetry.span("batch-operating-point", circuit=circuit.name,
                        batch=len(lanes)) as tspan:
        return _batch_op(circuit, lanes, options, strategies, on_error,
                         x0, tspan)


def _ladder_gmin_rung(strategies) -> GminSteppingStrategy | None:
    """The gmin-stepping rung of the effective ladder, if it has one.

    The stacked phase 2 exists to mirror that rung; a ladder without
    one (``strategies=(NewtonStrategy(),)`` in a robustness test, say)
    must fail the same lanes batched as it would serially.
    """
    for strategy in (DEFAULT_LADDER if strategies is None else strategies):
        if isinstance(strategy, GminSteppingStrategy):
            return strategy
    return None


def _batch_op(circuit: "Circuit", lanes: list[LaneSpec],
              options: NewtonOptions, strategies, on_error: str,
              x0: np.ndarray | None, tspan) -> BatchOpResult:
    from .dc import _nan_point, _package  # local: avoids import cycle

    start = _time.perf_counter()
    if options.max_wall_time is not None and options.deadline is None:
        # One absolute deadline covers both stacked phases and the
        # per-lane ladder fallback (run_ladder reuses a preset
        # deadline), mirroring the serial wall-clock semantics.
        options = dataclasses.replace(
            options, deadline=start + options.max_wall_time)
    compiled = circuit.compile()
    assembler = BatchAssembler(compiled, lanes)
    guess = (circuit.initial_guess(compiled) if x0 is None else
             np.asarray(x0, dtype=float))
    if guess.shape != (compiled.size,):
        raise NetlistError(
            f"warm-start vector has wrong size {guess.shape}, "
            f"expected ({compiled.size},)")
    X = np.tile(guess, (len(lanes), 1))
    tspan.inc("batch_lanes", len(lanes))
    active_history: list[int] = []
    # Phase 1: plain batched Newton, the analogue of NewtonStrategy.
    phase1 = batch_newton(assembler, X, options, options.gmin,
                          active_history)
    # Phase 2: batched gmin stepping for the lanes plain Newton lost --
    # restarted from the original guess, exactly like the serial
    # ladder's second rung.  Only when the caller's ladder actually
    # carries a gmin rung (the default ladder does): a custom
    # ``strategies`` without one must fail the same lanes serially and
    # batched, so the stacked phase mirrors the rung's own schedule and
    # iteration budget -- or does not run at all.
    gmin_rung = _ladder_gmin_rung(strategies)
    pending1 = np.nonzero(~phase1.converged)[0]
    phase2 = None
    if pending1.size and gmin_rung is not None:
        X[pending1] = guess
        phase2 = batch_gmin_stepping(
            assembler, X, pending1, gmin_rung._options(options),
            active_history,
            start_exponent=gmin_rung.start_exponent,
            stop_exponent=gmin_rung.stop_exponent)
    converged = phase1.converged.copy()
    if phase2 is not None:
        converged |= phase2.converged
    diagnostics = BatchDiagnostics(
        circuit=circuit.name, batch=len(lanes),
        iterations=(phase1.n_iterations
                    + (phase2.n_iterations if phase2 else 0)),
        active_history=active_history,
        n_converged_batched=int(phase1.converged.sum()),
        n_converged_gmin=(int(phase2.converged.sum()) if phase2 else 0))

    def _lane_stages(lane_index: int) -> list[StageReport]:
        """The batched stages lane ``lane_index`` went through, as
        serial-style stage reports (converged flag per phase)."""
        stages = [StageReport(
            strategy=BATCHED_STAGE,
            converged=bool(phase1.converged[lane_index]),
            iterations=int(phase1.iterations[lane_index]),
            wall_time=0.0,
            detail=phase1.reasons.get(lane_index, ""))]
        if phase2 is not None and not phase1.converged[lane_index]:
            stages.append(StageReport(
                strategy=BATCHED_GMIN_STAGE,
                converged=bool(phase2.converged[lane_index]),
                iterations=int(phase2.iterations[lane_index]),
                wall_time=0.0,
                detail=phase2.reasons.get(lane_index, "")))
        return stages

    points: list = [None] * len(lanes)
    failures: list[tuple[int, ConvergenceError]] = []
    for lane_index in np.nonzero(converged)[0]:
        lane_index = int(lane_index)
        if not np.all(np.isfinite(X[lane_index])):
            # A lane must never be *packaged* with NaN/inf in its
            # solution vector, whatever the convergence bookkeeping
            # says -- demote it to the serial fallback below, which
            # either produces a real solution or a diagnosed failure.
            converged[lane_index] = False
            phase1.reasons.setdefault(
                lane_index,
                "non-finite solution vector after batched convergence")
            tspan.event("lane-nonfinite", lane=lane_index)
            continue
        stages = _lane_stages(lane_index)
        total = sum(s.iterations for s in stages)
        lane_diag = SolverDiagnostics(
            circuit=circuit.name, stages=stages,
            rescued_by=stages[-1].strategy, total_iterations=total)
        result = _package(compiled, X[lane_index], total, lane_diag)
        result.device_ops = _LaneDeviceOps(assembler, lane_index,
                                           result.x)
        points[lane_index] = result

    # Per-lane fallback: anything the stacked phases could not converge
    # re-runs the full serial ladder from the same cold start.
    pending = [k for k in range(len(lanes)) if points[k] is None]
    diagnostics.n_fallback = len(pending)

    def _lane_reason(k: int) -> str:
        if phase2 is not None and k in phase2.reasons:
            return phase2.reasons[k]
        return phase1.reasons.get(k, "")

    diagnostics.fallback_lanes = [(k, _lane_reason(k)) for k in pending]
    if pending:
        tspan.inc("batch_lane_fallbacks", len(pending))
    first_error: ConvergenceError | None = None
    for lane_index in pending:
        lane = lanes[lane_index]
        batched_stages = _lane_stages(lane_index)
        batched_iters = sum(s.iterations for s in batched_stages)
        undo = apply_lane(circuit, lane)
        try:
            x, lane_diag = run_ladder(circuit, compiled, guess.copy(),
                                      None, options, strategies)
        except ConvergenceError as error:
            if error.diagnostics is not None:
                error.diagnostics.stages[0:0] = batched_stages
                error.diagnostics.total_iterations += batched_iters
            failures.append((lane_index, error))
            points[lane_index] = _nan_point(compiled, error.diagnostics)
            tspan.event("lane-failed", lane=lane_index,
                        label=lane.label, why=str(error))
            if first_error is None:
                first_error = error
            continue
        finally:
            undo()
        lane_diag.stages[0:0] = batched_stages
        lane_diag.total_iterations += batched_iters
        result = _package(compiled, x, lane_diag.total_iterations,
                          lane_diag)
        result.device_ops = _LaneDeviceOps(assembler, lane_index,
                                           result.x)
        points[lane_index] = result
    diagnostics.n_failed = len(failures)
    diagnostics.wall_time = _time.perf_counter() - start
    tspan.annotate(n_converged_batched=diagnostics.n_converged_batched,
                   n_converged_gmin=diagnostics.n_converged_gmin,
                   n_fallback=diagnostics.n_fallback,
                   n_failed=diagnostics.n_failed,
                   iterations=diagnostics.iterations)
    if failures and on_error == "raise":
        raise first_error
    return BatchOpResult(points=points, failures=failures,
                         diagnostics=diagnostics)


# -- analysis-layer specs -------------------------------------------------


@dataclass(frozen=True)
class BatchedOpMetric:
    """A Monte-Carlo metric whose evaluation is one DC operating point.

    The spec is *both* the serial metric function -- calling it with a
    seed builds a fresh circuit, applies the drawn lane perturbation,
    solves serially and measures -- and the vectorizable description
    :class:`~repro.analysis.montecarlo.MonteCarlo` consumes under
    ``backend="batched"``.  Both paths share :func:`apply_lane` /
    ``draw``, so they see bit-identical perturbations.

    Attributes:
        build: Zero-argument factory for a fresh base circuit.
        draw: ``(seed, circuit) -> LaneSpec``; must be a pure function
            of the seed (same seed, same draw -- the batched and serial
            backends both rely on it).
        measure: ``OpResult -> {metric: value}``.
        options / strategies: Solver overrides shared by both paths.
    """

    build: Callable[[], "Circuit"]
    draw: Callable[[int, "Circuit"], LaneSpec]
    measure: Callable[["OpResult"], Mapping[str, float]]
    options: NewtonOptions | None = None
    strategies: tuple | None = None

    def __call__(self, seed: int) -> dict[str, float]:
        from .dc import operating_point
        circuit = self.build()
        lane = self.draw(seed, circuit)
        undo = apply_lane(circuit, lane)
        try:
            result = operating_point(circuit, self.options,
                                     strategies=self.strategies)
            return {name: float(value)
                    for name, value in self.measure(result).items()}
        finally:
            undo()


@dataclass(frozen=True)
class BatchedOpSweep:
    """A 1-D sweep whose evaluation is one DC operating point per value.

    Serial path (calling the spec with a value) and the batched backend
    of :func:`~repro.analysis.sweep.sweep_1d` share ``lane`` /
    :func:`apply_lane`, so both stamp the swept value identically.
    """

    build: Callable[[], "Circuit"]
    lane: Callable[[float, "Circuit"], LaneSpec]
    measure: Callable[["OpResult"], Mapping[str, float]]
    options: NewtonOptions | None = None
    strategies: tuple | None = None

    def __call__(self, value: float) -> dict[str, float]:
        from .dc import operating_point
        circuit = self.build()
        spec = self.lane(float(value), circuit)
        undo = apply_lane(circuit, spec)
        try:
            result = operating_point(circuit, self.options,
                                     strategies=self.strategies)
            return {name: float(v)
                    for name, v in self.measure(result).items()}
        finally:
            undo()
