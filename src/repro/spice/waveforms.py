"""Time-domain source waveforms for transient analysis.

A waveform is a callable ``value(t)`` plus an optional list of
*breakpoints* -- times where the waveform has a corner -- that the
transient engine must land a timestep on exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import ModelError


@dataclass(frozen=True)
class Waveform:
    """A time-dependent source value."""

    func: Callable[[float], float]
    breakpoints: tuple[float, ...] = ()
    description: str = "waveform"

    def __call__(self, t: float) -> float:
        return self.func(t)


def dc_wave(value: float) -> Waveform:
    """A constant source."""
    return Waveform(func=lambda t: value, description=f"dc({value})")


def step_wave(before: float, after: float, t_step: float,
              t_rise: float = 0.0) -> Waveform:
    """A single step from ``before`` to ``after`` at ``t_step``."""
    if t_rise < 0.0:
        raise ModelError("t_rise must be >= 0")

    def value(t: float) -> float:
        if t <= t_step:
            return before
        if t_rise > 0.0 and t < t_step + t_rise:
            return before + (after - before) * (t - t_step) / t_rise
        return after

    points = (t_step,) if t_rise == 0.0 else (t_step, t_step + t_rise)
    return Waveform(func=value, breakpoints=points,
                    description=f"step({before}->{after}@{t_step})")


def pulse_wave(low: float, high: float, delay: float, rise: float,
               fall: float, width: float, period: float) -> Waveform:
    """SPICE-style periodic pulse."""
    if period <= 0.0 or width < 0.0 or rise < 0.0 or fall < 0.0:
        raise ModelError("pulse timing parameters must be non-negative, "
                         "period positive")
    if rise + width + fall > period:
        raise ModelError("rise + width + fall exceeds the period")

    def value(t: float) -> float:
        if t < delay:
            return low
        tau = (t - delay) % period
        if tau < rise:
            return low + (high - low) * (tau / rise) if rise > 0 else high
        if tau < rise + width:
            return high
        if tau < rise + width + fall:
            frac = (tau - rise - width) / fall if fall > 0 else 1.0
            return high + (low - high) * frac
        return low

    # Breakpoints for the first few periods; the engine also restarts the
    # step size at every period via the modulo corner list below.
    corners = []
    for k in range(64):
        t0 = delay + k * period
        corners.extend([t0, t0 + rise, t0 + rise + width,
                        t0 + rise + width + fall])
    return Waveform(func=value, breakpoints=tuple(corners),
                    description=f"pulse({low},{high},T={period})")


def sine_wave(offset: float, amplitude: float, frequency: float,
              delay: float = 0.0, phase_deg: float = 0.0) -> Waveform:
    """offset + amplitude * sin(2 pi f (t - delay) + phase)."""
    if frequency <= 0.0:
        raise ModelError(f"frequency must be positive, got {frequency}")
    phase = math.radians(phase_deg)

    def value(t: float) -> float:
        if t < delay:
            return offset + amplitude * math.sin(phase)
        return offset + amplitude * math.sin(
            2.0 * math.pi * frequency * (t - delay) + phase)

    return Waveform(func=value,
                    description=f"sine({offset},{amplitude},{frequency})")


def pwl_wave(points: Sequence[tuple[float, float]]) -> Waveform:
    """Piecewise-linear waveform through ``(time, value)`` points."""
    if len(points) < 1:
        raise ModelError("pwl needs at least one point")
    times = [p[0] for p in points]
    if any(t1 >= t2 for t1, t2 in zip(times, times[1:])):
        raise ModelError("pwl times must be strictly increasing")
    pts = tuple((float(t), float(v)) for t, v in points)

    def value(t: float) -> float:
        if t <= pts[0][0]:
            return pts[0][1]
        for (t1, v1), (t2, v2) in zip(pts, pts[1:]):
            if t <= t2:
                return v1 + (v2 - v1) * (t - t1) / (t2 - t1)
        return pts[-1][1]

    return Waveform(func=value, breakpoints=tuple(t for t, _v in pts),
                    description=f"pwl({len(pts)} pts)")
