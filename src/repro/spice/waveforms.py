"""Time-domain source waveforms for transient analysis.

A waveform is a callable ``value(t)`` plus an optional list of
*breakpoints* -- times where the waveform has a corner -- that the
transient engine must land a timestep on exactly.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import ModelError


@dataclass(frozen=True)
class Waveform:
    """A time-dependent source value.

    ``breakpoints`` is the static corner list; periodic waveforms with
    an unbounded corner sequence supply ``breakpoint_fn`` instead,
    which generates the corners intersecting a given run window on
    demand (so no fixed-length corner table can run out on long
    transients, the way :func:`pulse_wave`'s old 64-period table did).
    """

    func: Callable[[float], float]
    breakpoints: tuple[float, ...] = ()
    description: str = "waveform"
    breakpoint_fn: Callable[[float], tuple[float, ...]] | None = None

    def __call__(self, t: float) -> float:
        return self.func(t)

    def breakpoints_within(self, t_stop: float) -> tuple[float, ...]:
        """Corners strictly inside ``(0, t_stop)``, sorted.

        Corners at or beyond ``t_stop`` are dropped *here*, before the
        transient engine's breakpoint merge, so a pulse whose later
        periods extend past the stop time can never force a spurious
        pre-edge ``dt`` shrink on the final step.
        """
        corners = (self.breakpoint_fn(t_stop)
                   if self.breakpoint_fn is not None
                   else self.breakpoints)
        return tuple(sorted(t for t in corners if 0.0 < t < t_stop))


def _const_value(value: float, t: float) -> float:
    """Module-level constant evaluator: a ``functools.partial`` of this
    pickles, where the obvious lambda would not -- and DC circuits (the
    shared-memory Monte-Carlo plans above all) must ship to worker
    processes whole."""
    return value


def dc_wave(value: float) -> Waveform:
    """A constant source."""
    return Waveform(func=functools.partial(_const_value, value),
                    description=f"dc({value})")


def step_wave(before: float, after: float, t_step: float,
              t_rise: float = 0.0) -> Waveform:
    """A single step from ``before`` to ``after`` at ``t_step``."""
    if t_rise < 0.0:
        raise ModelError("t_rise must be >= 0")

    def value(t: float) -> float:
        if t <= t_step:
            return before
        if t_rise > 0.0 and t < t_step + t_rise:
            return before + (after - before) * (t - t_step) / t_rise
        return after

    points = (t_step,) if t_rise == 0.0 else (t_step, t_step + t_rise)
    return Waveform(func=value, breakpoints=points,
                    description=f"step({before}->{after}@{t_step})")


def pulse_wave(low: float, high: float, delay: float, rise: float,
               fall: float, width: float, period: float) -> Waveform:
    """SPICE-style periodic pulse."""
    if period <= 0.0 or width < 0.0 or rise < 0.0 or fall < 0.0:
        raise ModelError("pulse timing parameters must be non-negative, "
                         "period positive")
    if rise + width + fall > period:
        raise ModelError("rise + width + fall exceeds the period")

    def value(t: float) -> float:
        if t < delay:
            return low
        tau = (t - delay) % period
        if tau < rise:
            return low + (high - low) * (tau / rise) if rise > 0 else high
        if tau < rise + width:
            return high
        if tau < rise + width + fall:
            frac = (tau - rise - width) / fall if fall > 0 else 1.0
            return high + (low - high) * frac
        return low

    def corners_within(t_stop: float) -> tuple[float, ...]:
        # Every period whose start lies inside the window contributes
        # its four corners; corners past t_stop are filtered by
        # breakpoints_within.  Generated on demand so arbitrarily long
        # runs land every edge (a static table has a last entry).
        corners = []
        k = 0
        while True:
            t0 = delay + k * period
            if t0 >= t_stop:
                break
            corners.extend([t0, t0 + rise, t0 + rise + width,
                            t0 + rise + width + fall])
            k += 1
        return tuple(corners)

    # The static table keeps the historical first-64-period corners
    # for direct consumers; the engine uses corners_within.
    return Waveform(func=value, breakpoints=corners_within(delay + 64 * period),
                    description=f"pulse({low},{high},T={period})",
                    breakpoint_fn=corners_within)


def sine_wave(offset: float, amplitude: float, frequency: float,
              delay: float = 0.0, phase_deg: float = 0.0) -> Waveform:
    """offset + amplitude * sin(2 pi f (t - delay) + phase)."""
    if frequency <= 0.0:
        raise ModelError(f"frequency must be positive, got {frequency}")
    phase = math.radians(phase_deg)

    def value(t: float) -> float:
        if t < delay:
            return offset + amplitude * math.sin(phase)
        return offset + amplitude * math.sin(
            2.0 * math.pi * frequency * (t - delay) + phase)

    return Waveform(func=value,
                    description=f"sine({offset},{amplitude},{frequency})")


def pwl_wave(points: Sequence[tuple[float, float]]) -> Waveform:
    """Piecewise-linear waveform through ``(time, value)`` points."""
    if len(points) < 1:
        raise ModelError("pwl needs at least one point")
    times = [p[0] for p in points]
    if any(t1 >= t2 for t1, t2 in zip(times, times[1:])):
        raise ModelError("pwl times must be strictly increasing")
    pts = tuple((float(t), float(v)) for t, v in points)

    def value(t: float) -> float:
        if t <= pts[0][0]:
            return pts[0][1]
        for (t1, v1), (t2, v2) in zip(pts, pts[1:]):
            if t <= t2:
                return v1 + (v2 - v1) * (t - t1) / (t2 - t1)
        return pts[-1][1]

    return Waveform(func=value, breakpoints=tuple(t for t, _v in pts),
                    description=f"pwl({len(pts)} pts)")
