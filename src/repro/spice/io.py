"""SPICE-format netlist export / import.

Interop glue: export writes a conventional ``.sp`` deck from a
:class:`~repro.spice.netlist.Circuit` (so a design built here can be
inspected, diffed, or re-simulated elsewhere); import parses the same
subset back, resolving MOS model names against the technology registry.

Supported cards: R, C, V (DC), I (DC), E (VCVS), G (VCCS), M (EKV MOS
with W=/L= and the repo's flavour names), D (registered diode models),
plus ``.temp``, ``.nodeset``, comments and ``.end``.  Time-dependent
sources export as their t=0 DC value with a warning comment -- the
waveform classes are Python-side behaviour with no universal SPICE
equivalent.
"""

from __future__ import annotations

import io as _io
from typing import TextIO

from ..constants import T_NOMINAL, ZERO_CELSIUS
from ..devices.diode import Diode, DiodeParameters, NWELL_DIODE_180
from ..devices.mosfet import Mosfet
from ..devices.parameters import GENERIC_180NM, Technology
from ..errors import NetlistError
from ..units import format_quantity, parse_quantity
from .elements import (Capacitor, CurrentSource, DiodeElement, MosElement,
                       Resistor, Vccs, Vcvs, VoltageSource)
from .netlist import Circuit
from .waveforms import Waveform

#: Diode models resolvable on import, by parameter-set name.
DIODE_REGISTRY: dict[str, DiodeParameters] = {
    NWELL_DIODE_180.name: NWELL_DIODE_180,
}


def _fmt(value: float) -> str:
    """SPICE-friendly engineering number (no unit letter clash)."""
    text = format_quantity(value, "", digits=6)
    return text.replace("u", "u")  # micro as 'u', already the case


def write_netlist(circuit: Circuit, stream: TextIO | None = None) -> str:
    """Serialise ``circuit`` as a SPICE deck; returns the text.

    When ``stream`` is given the deck is also written to it.
    """
    out = _io.StringIO()
    out.write(f"* {circuit.name}\n")
    out.write(f"* exported by repro (EKV flavours of "
              f"{GENERIC_180NM.name})\n")
    temp_c = circuit.temperature - ZERO_CELSIUS
    out.write(f".temp {temp_c:.2f}\n")
    for element in circuit.elements:
        if isinstance(element, Resistor):
            a, b = element.nodes
            out.write(f"R{element.name} {a} {b} "
                      f"{_fmt(element.resistance)}\n")
        elif isinstance(element, Capacitor):
            a, b = element.nodes
            out.write(f"C{element.name} {a} {b} "
                      f"{_fmt(element.capacitance)}\n")
        elif isinstance(element, VoltageSource):
            p, n = element.nodes
            value = element.waveform(0.0)
            if element.waveform.description.startswith("dc") is False:
                out.write(f"* {element.name}: waveform "
                          f"'{element.waveform.description}' exported "
                          f"as its t=0 value\n")
            out.write(f"V{element.name} {p} {n} DC {_fmt(value)}\n")
        elif isinstance(element, CurrentSource):
            p, n = element.nodes
            value = element.waveform(0.0)
            if element.waveform.description.startswith("dc") is False:
                out.write(f"* {element.name}: waveform "
                          f"'{element.waveform.description}' exported "
                          f"as its t=0 value\n")
            out.write(f"I{element.name} {p} {n} DC {_fmt(value)}\n")
        elif isinstance(element, Vcvs):
            p, n, cp, cn = element.nodes
            out.write(f"E{element.name} {p} {n} {cp} {cn} "
                      f"{_fmt(element.gain)}\n")
        elif isinstance(element, Vccs):
            p, n, cp, cn = element.nodes
            out.write(f"G{element.name} {p} {n} {cp} {cn} "
                      f"{_fmt(element.gm)}\n")
        elif isinstance(element, DiodeElement):
            a, c = element.nodes
            out.write(f"D{element.name} {a} {c} "
                      f"{element.diode.params.name} "
                      f"AREA={_fmt(element.diode.area)}\n")
        elif isinstance(element, MosElement):
            d, g, s, b = element.nodes
            device = element.device
            out.write(f"M{element.name} {d} {g} {s} {b} "
                      f"{device.params.name} W={_fmt(device.w)} "
                      f"L={_fmt(device.l)} M={device.m}\n")
        else:
            raise NetlistError(
                f"cannot export element type {type(element).__name__}")
    for node, voltage in circuit.nodesets.items():
        out.write(f".nodeset v({node})={_fmt(voltage)}\n")
    out.write(".end\n")
    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text


def read_netlist(text: str,
                 tech: Technology | None = None) -> Circuit:
    """Parse a deck produced by :func:`write_netlist` (or hand-written
    in the same subset) back into a :class:`Circuit`."""
    tech = tech or GENERIC_180NM
    cards: list[str] = []
    temperature = T_NOMINAL
    title: str | None = None
    nodesets: list[tuple[str, float]] = []

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("*"):
            if title is None and len(line) > 1:
                title = line[1:].strip() or "imported"
            continue
        lower = line.lower()
        if lower.startswith(".temp"):
            temperature = parse_quantity(line.split()[1]) + ZERO_CELSIUS
            continue
        if lower.startswith(".nodeset"):
            body = line.split(None, 1)[1]
            node = body[body.index("(") + 1:body.index(")")]
            value = parse_quantity(body.split("=", 1)[1])
            nodesets.append((node, value))
            continue
        if lower.startswith(".end"):
            break
        cards.append(line)

    result = Circuit(title or "imported", temperature=temperature)
    for card in cards:
        _parse_card(result, card, tech)
    for node, value in nodesets:
        result.nodeset(node, value)
    return result


def _parse_card(circuit: Circuit, line: str, tech: Technology) -> None:
    tokens = line.split()
    letter = tokens[0][0].upper()
    # Keep the full designator as the element name: SPICE guarantees
    # its uniqueness, whereas the suffix alone may collide (R1 vs V1).
    label = tokens[0]
    if letter == "R":
        circuit.add_resistor(label, tokens[1], tokens[2],
                             parse_quantity(tokens[3]))
    elif letter == "C":
        circuit.add_capacitor(label, tokens[1], tokens[2],
                              parse_quantity(tokens[3]))
    elif letter == "V":
        value = parse_quantity(tokens[4] if tokens[3].upper() == "DC"
                               else tokens[3])
        circuit.add_vsource(label, tokens[1], tokens[2], value)
    elif letter == "I":
        value = parse_quantity(tokens[4] if tokens[3].upper() == "DC"
                               else tokens[3])
        circuit.add_isource(label, tokens[1], tokens[2], value)
    elif letter == "E":
        circuit.add_vcvs(label, tokens[1], tokens[2], tokens[3],
                         tokens[4], parse_quantity(tokens[5]))
    elif letter == "G":
        circuit.add_vccs(label, tokens[1], tokens[2], tokens[3],
                         tokens[4], parse_quantity(tokens[5]))
    elif letter == "D":
        model = tokens[3]
        if model not in DIODE_REGISTRY:
            raise NetlistError(f"unknown diode model {model!r}")
        area = 1.0
        for tok in tokens[4:]:
            if tok.upper().startswith("AREA="):
                area = parse_quantity(tok.split("=", 1)[1])
        circuit.add_diode(label, tokens[1], tokens[2],
                          Diode(DIODE_REGISTRY[model], area=area))
    elif letter == "M":
        flavour = tech.flavour(tokens[5])
        params = {"w": None, "l": None, "m": 1}
        for tok in tokens[6:]:
            key, _, value = tok.partition("=")
            key = key.lower()
            if key == "w":
                params["w"] = parse_quantity(value)
            elif key == "l":
                params["l"] = parse_quantity(value)
            elif key == "m":
                params["m"] = int(float(value))
        if params["w"] is None or params["l"] is None:
            raise NetlistError(f"MOS card missing W/L: {line!r}")
        device = Mosfet(flavour, w=params["w"], l=params["l"],
                        m=params["m"])
        circuit.add_mosfet(label, tokens[1], tokens[2], tokens[3],
                           tokens[4], device, with_caps=False)
    else:
        raise NetlistError(f"unsupported card: {line!r}")
