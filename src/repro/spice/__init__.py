"""A small SPICE-class circuit simulator built on modified nodal analysis.

This is the substitute for the commercial simulator used by the paper's
authors (see DESIGN.md section 2).  It supports:

* nonlinear DC operating point (Newton with gmin/source-stepping homotopy),
* DC sweeps,
* small-signal AC analysis (complex MNA linearised at the DC point),
* transient analysis (trapezoidal / backward-Euler with adaptive steps),

over ideal passives, independent and controlled sources, junction diodes
and the EKV MOS model of :mod:`repro.devices`.  Circuits of the size the
paper evaluates (an STSCL gate, a pre-amplifier, a replica bias loop) have
a few dozen unknowns, which dense numpy linear algebra handles easily.
"""

from .netlist import Circuit, GROUND_NAMES
from .elements import (
    Element,
    Resistor,
    Capacitor,
    VoltageSource,
    CurrentSource,
    Vcvs,
    Vccs,
    DiodeElement,
    MosElement,
)
from .waveforms import dc_wave, pulse_wave, sine_wave, pwl_wave, step_wave
from .dc import operating_point, dc_sweep, NewtonOptions
from .strategies import (
    DEFAULT_LADDER,
    GminSteppingStrategy,
    LuReuseState,
    NewtonStrategy,
    PseudoTransientStrategy,
    SolveStrategy,
    SolverDiagnostics,
    SourceSteppingStrategy,
    StageReport,
)
from .batch import (
    BatchAssembler,
    BatchDiagnostics,
    BatchOpResult,
    BatchTranDiagnostics,
    BatchTranResult,
    BatchedOpMetric,
    BatchedOpSweep,
    BatchedTranMetric,
    LaneSpec,
    apply_lane,
    batch_operating_point,
    batch_transient,
)
from .ac import ac_analysis
from .transient import transient, TransientOptions, TransientTelemetry
from .results import OpResult, SweepResult, AcResult, TranResult
from .io import read_netlist, write_netlist

__all__ = [
    "Circuit", "GROUND_NAMES",
    "Element", "Resistor", "Capacitor", "VoltageSource", "CurrentSource",
    "Vcvs", "Vccs", "DiodeElement", "MosElement",
    "dc_wave", "pulse_wave", "sine_wave", "pwl_wave", "step_wave",
    "operating_point", "dc_sweep", "NewtonOptions",
    "SolveStrategy", "NewtonStrategy", "GminSteppingStrategy",
    "SourceSteppingStrategy", "PseudoTransientStrategy",
    "SolverDiagnostics", "StageReport", "DEFAULT_LADDER", "LuReuseState",
    "LaneSpec", "BatchAssembler", "BatchOpResult", "BatchDiagnostics",
    "batch_operating_point", "BatchedOpMetric", "BatchedOpSweep",
    "apply_lane",
    "batch_transient", "BatchTranResult", "BatchTranDiagnostics",
    "BatchedTranMetric",
    "ac_analysis",
    "transient", "TransientOptions", "TransientTelemetry",
    "OpResult", "SweepResult", "AcResult", "TranResult",
    "read_netlist", "write_netlist",
]
