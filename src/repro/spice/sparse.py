"""Sparse twin of the dense MNA assembly scatter.

The dense hot path (:mod:`repro.spice.assembly`) stamps every
contribution through precomputed *flat* indices into the raveled
``(size, size)`` Jacobian.  This module provides the same idea one
level up: every contribution becomes a **COO triplet slot** assigned at
build time, and each Newton iteration only writes a flat values vector
-- the matrix itself is materialised as ``scipy.sparse`` CSC through a
precomputed triplet->nonzero scatter (``np.bincount`` over slot
indices, which also reproduces the dense path's left-to-right
accumulation order, so the assembled entries agree *bit for bit* with
the dense scatter).

The expensive symbolic work -- triplet deduplication, the CSC
``indptr``/``indices`` structure, the per-segment slot maps -- is done
once per compiled circuit and shared by every factorization; SuperLU's
column ordering (COLAMD) depends only on that fixed structure, so
repeated ``splu`` calls redo only the numeric phase on identical
symbolic state.  Cross-iteration and cross-step factorization reuse
itself is the chord-Newton discipline of
:class:`~repro.spice.strategies.LuReuseState`, which simply holds a
SuperLU handle instead of a LAPACK ``(lu, piv)`` pair on this backend.

Backend selection lives in
:meth:`~repro.spice.netlist.CompiledCircuit.solver_backend`: explicit
``Circuit(matrix_backend="sparse")`` forces it, ``"dense"`` forbids it,
and the default ``"auto"`` switches at :data:`SPARSE_AUTO_THRESHOLD`
unknowns -- around where one dense LAPACK factorization starts losing
to SuperLU on MNA-sparsity matrices.
"""

from __future__ import annotations

import numpy as np

from .. import telemetry
from ..errors import ConvergenceError

try:  # pragma: no cover - scipy is a declared dependency
    from scipy.sparse import csc_matrix as _csc_matrix
    from scipy.sparse.linalg import splu as _splu
except ImportError:  # pragma: no cover - degraded environment
    _csc_matrix = _splu = None

#: Unknown count at and above which ``matrix_backend="auto"`` picks the
#: sparse backend.  Set from the dense-vs-sparse crossover measured by
#: the ``sparse_adder_chain`` bench case (see BENCH_perf.json): dense
#: LAPACK keeps winning through a few hundred unknowns on MNA-sparsity
#: matrices, sparse wins decisively by ~1000.
SPARSE_AUTO_THRESHOLD = 500


def sparse_available() -> bool:
    """True when scipy.sparse (and SuperLU) imported successfully."""
    return _splu is not None


class SparseSystem:
    """Precomputed triplet->CSC scatter for one assembler's patterns.

    ``segments`` maps a segment name to ``(rows, cols)`` index arrays
    (ground entries must already be masked out).  Segment *order* is
    contractual: the values vector is the concatenation of the segments
    in insertion order, and per-nonzero summation happens in that
    order, mirroring the dense path's accumulation sequence.
    """

    def __init__(self, size: int,
                 segments: dict[str, tuple[np.ndarray, np.ndarray]]) -> None:
        if _csc_matrix is None:  # pragma: no cover - guarded by callers
            raise ConvergenceError(
                "scipy.sparse unavailable: sparse backend cannot build")
        self.size = size
        self.segment_slices: dict[str, slice] = {}
        rows_parts, cols_parts = [], []
        offset = 0
        for name, (rows, cols) in segments.items():
            rows = np.asarray(rows, dtype=np.intp)
            cols = np.asarray(cols, dtype=np.intp)
            if rows.size and (rows.min() < 0 or cols.min() < 0):
                raise ValueError(
                    f"segment {name!r} carries unmasked ground entries")
            self.segment_slices[name] = slice(offset, offset + rows.size)
            offset += rows.size
            rows_parts.append(rows)
            cols_parts.append(cols)
        self.n_triplets = offset
        all_rows = (np.concatenate(rows_parts) if rows_parts
                    else np.zeros(0, dtype=np.intp))
        all_cols = (np.concatenate(cols_parts) if cols_parts
                    else np.zeros(0, dtype=np.intp))
        # Canonical CSC ordering: column-major, rows ascending within a
        # column.  ``slot`` maps each triplet to its deduplicated
        # nonzero; bincount over it performs the scatter-add.
        order = np.lexsort((all_rows, all_cols))
        sorted_rows = all_rows[order]
        sorted_cols = all_cols[order]
        if order.size:
            new_entry = np.empty(order.size, dtype=bool)
            new_entry[0] = True
            np.logical_or(sorted_rows[1:] != sorted_rows[:-1],
                          sorted_cols[1:] != sorted_cols[:-1],
                          out=new_entry[1:])
            slot_sorted = np.cumsum(new_entry) - 1
        else:
            new_entry = np.zeros(0, dtype=bool)
            slot_sorted = np.zeros(0, dtype=np.intp)
        self.slot = np.empty(order.size, dtype=np.intp)
        self.slot[order] = slot_sorted
        self.nnz = int(slot_sorted[-1]) + 1 if order.size else 0
        # One-entry cache of the stacked-scatter flat index (lane k's
        # triplets land at ``k * nnz + slot``), keyed by the lane count
        # of the last :meth:`batch_data` call -- the batched Newton
        # loop's active set is stable for long runs of iterations, so
        # the rebuild is amortised away.
        self._flat_slot: tuple[int, np.ndarray] | None = None
        unique_rows = sorted_rows[new_entry]
        unique_cols = sorted_cols[new_entry]
        self.indices = unique_rows.astype(np.int32)
        counts = np.bincount(unique_cols, minlength=size)
        self.indptr = np.zeros(size + 1, dtype=np.int32)
        np.cumsum(counts, out=self.indptr[1:])
        # One SparseSystem build is the *symbolic* phase shared by every
        # numeric factorization over this pattern (COLAMD depends only
        # on the fixed structure).  Counting builds here lets campaigns
        # assert the "one symbolic factorization per ensemble" contract
        # from trace counters alone.
        if telemetry.is_enabled():
            telemetry.current_span().inc("sparse_symbolic_factorizations")

    def matrix(self, values: np.ndarray):
        """CSC matrix from a full triplet-values vector.

        ``bincount`` accumulates duplicate triplets in input order --
        the same left-to-right association as the dense ``+=`` scatter.
        """
        return self.matrix_from_data(
            np.bincount(self.slot, weights=values, minlength=self.nnz))

    def matrix_from_data(self, data: np.ndarray):
        """CSC matrix over the shared ``indices``/``indptr`` structure
        from one precomputed nonzero-data row (no copies: every lane of
        a batched ensemble shares the symbolic arrays)."""
        return _csc_matrix((data, self.indices, self.indptr),
                           shape=(self.size, self.size))

    def batch_data(self, values_b: np.ndarray,
                   out: np.ndarray | None = None) -> np.ndarray:
        """Stacked ``(B, nnz)`` CSC data rows from ``(B, n_triplets)``
        stacked triplet values.

        Each row replays the exact per-lane :meth:`matrix` scatter
        (bincount over the shared slot map, summing duplicates in
        segment order), so a lane's data row is bit-identical to what a
        serial assembly of that lane would produce -- but all lanes
        scatter through **one** flattened bincount over per-lane offset
        slots instead of a per-lane python loop.  ``out``, when given,
        receives the result in place.
        """
        values_b = np.asarray(values_b)
        B = values_b.shape[0]
        if self.nnz == 0:
            return (np.empty((B, 0)) if out is None else out)
        if self._flat_slot is None or self._flat_slot[0] != B:
            flat = (np.arange(B, dtype=np.intp)[:, None] * self.nnz
                    + self.slot[None, :]).ravel()
            self._flat_slot = (B, flat)
        data = np.bincount(self._flat_slot[1],
                           weights=values_b.ravel(),
                           minlength=B * self.nnz).reshape(B, self.nnz)
        if out is not None:
            np.copyto(out, data)
            return out
        return data


class SparseStamper:
    """Sparse counterpart of :class:`~repro.spice.elements.Stamper`.

    The residual stays a dense vector; the Jacobian is the triplet
    values vector of a :class:`SparseSystem`.  Only assembler-known
    patterns can stamp -- circuits with fallback (foreign) elements are
    not sparse-eligible, which the backend selection enforces.
    """

    def __init__(self, system: SparseSystem) -> None:
        self.system = system
        self.size = system.size
        self.res = np.zeros(system.size)
        self.vals = np.zeros(system.n_triplets)
        self._diag = system.segment_slices["diag"]

    def reset(self) -> None:
        self.vals.fill(0.0)
        self.res.fill(0.0)

    def add_diagonal(self, g, n_nodes: int) -> None:
        """Add ``g`` (scalar or per-node array) to the node-row diagonal
        -- the gmin shunt / pseudo-transient anchor stamp."""
        diag = self._diag
        if diag.stop - diag.start != n_nodes:  # pragma: no cover - guard
            raise ConvergenceError(
                f"diagonal segment holds {diag.stop - diag.start} slots, "
                f"caller expected {n_nodes}")
        self.vals[diag] += g

    def segment(self, name: str) -> np.ndarray:
        """Writable values view of one scatter segment."""
        return self.vals[self.system.segment_slices[name]]

    def matrix(self):
        """The assembled CSC Jacobian at the current values."""
        return self.system.matrix(self.vals)


def coo_to_csr(rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
               size: int):
    """CSR matrix from COO triplets (duplicates summed) -- used for the
    constant linear part's residual matvec."""
    from scipy.sparse import coo_matrix
    return coo_matrix((vals, (rows, cols)), shape=(size, size)).tocsr()


def sparse_factorize(a_csc):
    """SuperLU-factor a CSC matrix; None when singular or non-finite
    (the caller then falls back to dense least squares, mirroring the
    dense backend's degraded path).

    Every call is one *numeric* (re)factorization over an existing
    symbolic structure, counted as ``sparse_numeric_refactorizations``
    -- the twin of the build-time ``sparse_symbolic_factorizations``
    counter on :class:`SparseSystem`.
    """
    if not np.all(np.isfinite(a_csc.data)):
        return None
    if telemetry.is_enabled():
        telemetry.current_span().inc("sparse_numeric_refactorizations")
    try:
        return _splu(a_csc, permc_spec="COLAMD")
    except RuntimeError:  # exactly singular
        return None
