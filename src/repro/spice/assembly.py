"""Vectorized MNA assembly: constant linear part + array-valued restamp.

A :class:`CircuitAssembler` is built once per :class:`CompiledCircuit`
and replaces the per-element Python stamping loop on the Newton hot
path.  It splits the system into

* a **constant linear part** -- resistors, controlled sources and the
  incidence/branch topology of independent sources -- accumulated into
  one dense matrix ``G_const`` at build time, so each Newton iteration
  contributes it with a single ``copyto`` + matvec;
* a **per-iteration source RHS** -- the waveform values of independent
  sources (evaluated in Python: waveforms are user callables, but there
  are few sources);
* a **vectorized nonlinear restamp** -- every MOS transistor and diode
  of the circuit is grouped into a :class:`~repro.devices.mosfet.MosBank`
  / :class:`~repro.devices.diode.DiodeBank` and evaluated with one
  array-valued model call per iteration, scattered into the Jacobian
  through precomputed flat index arrays;
* a **fallback list** -- any element type the assembler does not know
  (user subclasses of :class:`~repro.spice.elements.Element`) keeps the
  classic per-element ``stamp`` call, so extensibility is preserved.

The assembler also owns the vectorized *charge* system used by the
transient engine: linear capacitors contribute a constant scatter
pattern scaled by the integration coefficient, diode depletion charges
are evaluated through the bank.

Because element *values* (a resistance aged by
:class:`~repro.faults.models.ResistorDrift`, a device swapped by
:class:`~repro.faults.models.VtOutlier`) may be mutated without going
through :class:`~repro.spice.netlist.Circuit`, the assembler keeps a
value signature and :meth:`sync` rebuilds the cached arrays whenever it
changed.  ``sync`` runs once per solve, not once per Newton iteration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .. import telemetry
from ..devices.diode import DiodeBank
from ..devices.mosfet import MosBank, MosOperatingPoint
from .elements import (
    Capacitor,
    CurrentSource,
    DiodeElement,
    Element,
    MosElement,
    Resistor,
    Stamper,
    Vccs,
    Vcvs,
    VoltageSource,
)
from .sparse import SparseStamper, SparseSystem, coo_to_csr
from .subckt import Instance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .netlist import CompiledCircuit


class _InstanceGroup:
    """All instances of one subcircuit, with their local->global LUTs
    stacked into a ``(K, cell_size + 1)`` matrix so cell scatter
    patterns tile across instances with one fancy-index (the trailing
    sentinel column maps local ground ``-1`` to global ``-1``)."""

    __slots__ = ("plan", "instances", "lut_matrix")

    def __init__(self, plan, instances: list[Instance]) -> None:
        self.plan = plan
        self.instances = instances
        self.lut_matrix = np.stack([inst.lut for inst in instances])


def _masked_flat(rows: np.ndarray, cols: np.ndarray,
                 size: int) -> tuple[np.ndarray, np.ndarray]:
    """(valid mask, flat indices of the valid entries) for a scatter
    into the raveled dense Jacobian; ground rows/columns are dropped."""
    valid = (rows >= 0) & (cols >= 0)
    flat = rows[valid].astype(np.intp) * size + cols[valid].astype(np.intp)
    return valid, flat


class CircuitAssembler:
    """Compile-once stamping engine for one :class:`CompiledCircuit`."""

    def __init__(self, compiled: "CompiledCircuit") -> None:
        self.compiled = compiled
        self.size = compiled.size
        self._signature: tuple | None = None
        self._xg = np.empty(self.size + 1)
        self._sparse_system: SparseSystem | None = None
        self._partition()
        self.sync()

    # -- structure ------------------------------------------------------

    def _partition(self) -> None:
        """Split elements by type; structure is fixed for the lifetime
        of the compiled circuit (structural edits recompile)."""
        self._resistors: list[Resistor] = []
        self._vsources: list[VoltageSource] = []
        self._isources: list[CurrentSource] = []
        self._vcvs: list[Vcvs] = []
        self._vccs: list[Vccs] = []
        self._capacitors: list[Capacitor] = []
        self._diodes: list[DiodeElement] = []
        self._mos: list[MosElement] = []
        self._instances: list[Instance] = []
        self._fallback: list = []
        for element in self.compiled.circuit.elements:
            if isinstance(element, Resistor):
                self._resistors.append(element)
            elif isinstance(element, VoltageSource):
                self._vsources.append(element)
            elif isinstance(element, CurrentSource):
                self._isources.append(element)
            elif isinstance(element, Vcvs):
                self._vcvs.append(element)
            elif isinstance(element, Vccs):
                self._vccs.append(element)
            elif isinstance(element, Capacitor):
                self._capacitors.append(element)
            elif isinstance(element, DiodeElement):
                self._diodes.append(element)
            elif isinstance(element, MosElement):
                self._mos.append(element)
            elif isinstance(element, Instance):
                self._instances.append(element)
            else:
                self._fallback.append(element)
        # Instances of the same subcircuit share one compiled cell plan;
        # grouping them lets every build pass tile the cell's index
        # arrays across all K placements with vectorized arithmetic.
        by_cell: dict[int, list[Instance]] = {}
        cell_order: list[Instance] = []
        for inst in self._instances:
            key = id(inst.subcircuit)
            if key not in by_cell:
                by_cell[key] = []
                cell_order.append(inst)
            by_cell[key].append(inst)
        self._instance_groups = [
            _InstanceGroup(inst.subcircuit.plan(), by_cell[id(inst.subcircuit)])
            for inst in cell_order]

    def _value_signature(self) -> tuple:
        """Every mutable value baked into the cached arrays."""
        return (
            tuple(r.resistance for r in self._resistors),
            tuple(e.gain for e in self._vcvs),
            tuple(e.gm for e in self._vccs),
            tuple(c.capacitance for c in self._capacitors),
            tuple((id(m.device), m.device.vt_shift, m.device.beta_factor,
                   m.device.w, m.device.l, m.device.m, m.temperature)
                  for m in self._mos),
            tuple((id(d.diode), d.diode.area, d.temperature)
                  for d in self._diodes),
            # Template element values ride along so a mutation inside a
            # cell (a swapped device model, an aged resistor) rebuilds
            # the parent arrays too.
            tuple(grp.plan.assembler._value_signature()
                  for grp in self._instance_groups),
        )

    def sync(self) -> bool:
        """Rebuild the cached arrays when element values changed.

        Returns True when a rebuild happened.  Cheap when nothing
        changed: one pass collecting plain attribute reads.
        """
        signature = self._value_signature()
        if signature == self._signature:
            return False
        self._signature = signature
        self._build_linear()
        self._build_mos()
        self._build_diodes()
        self._build_charges()
        return True

    # -- build passes ---------------------------------------------------

    def _build_linear(self) -> None:
        size = self.size
        g = np.zeros((size, size))
        # Triplet twin of the dense accumulation: the sparse backend
        # replays exactly this contribution sequence through bincount,
        # which is what makes its assembled entries bit-identical.
        lin_rows: list[int] = []
        lin_cols: list[int] = []
        lin_vals: list[float] = []

        def add(row: int, col: int, value: float) -> None:
            if row >= 0 and col >= 0:
                g[row, col] += value
                lin_rows.append(row)
                lin_cols.append(col)
                lin_vals.append(value)

        for r in self._resistors:
            a, b = r._idx
            cond = 1.0 / r.resistance
            add(a, a, cond)
            add(a, b, -cond)
            add(b, a, -cond)
            add(b, b, cond)
        for e in self._vsources:
            p, n = e._idx
            (br,) = e._aux
            add(p, br, 1.0)
            add(n, br, -1.0)
            add(br, p, 1.0)
            add(br, n, -1.0)
        for e in self._vcvs:
            p, n, cp, cn = e._idx
            (br,) = e._aux
            add(p, br, 1.0)
            add(n, br, -1.0)
            add(br, p, 1.0)
            add(br, n, -1.0)
            add(br, cp, -e.gain)
            add(br, cn, e.gain)
        for e in self._vccs:
            p, n, cp, cn = e._idx
            add(p, cp, e.gm)
            add(p, cn, -e.gm)
            add(n, cp, -e.gm)
            add(n, cn, e.gm)
        self._g_const = g
        rows_parts = [np.asarray(lin_rows, dtype=np.intp)]
        cols_parts = [np.asarray(lin_cols, dtype=np.intp)]
        vals_parts = [np.asarray(lin_vals, dtype=float)]
        # Instance expansion: tile each cell's linear triplets through
        # the stacked LUTs.  Ports bound to parent ground introduce new
        # ground entries (local index >= 0, global -1), so the mapped
        # triplets are re-masked; ports tied to one parent net create
        # duplicate coordinates, which both the dense ``np.add.at`` and
        # the sparse bincount replay accumulate identically.
        for grp in self._instance_groups:
            t_asm = grp.plan.assembler
            t_asm.sync()
            if not t_asm._lin_rows.size:
                continue
            rows_g = grp.lut_matrix[:, t_asm._lin_rows]
            cols_g = grp.lut_matrix[:, t_asm._lin_cols]
            vals_g = np.broadcast_to(t_asm._lin_vals, rows_g.shape)
            mask = (rows_g >= 0) & (cols_g >= 0)
            r, c, v = rows_g[mask], cols_g[mask], vals_g[mask]
            np.add.at(g, (r, c), v)
            rows_parts.append(r)
            cols_parts.append(c)
            vals_parts.append(v)
        self._lin_rows = np.concatenate(rows_parts)
        self._lin_cols = np.concatenate(cols_parts)
        self._lin_vals = np.concatenate(vals_parts)
        self._lin_csr = None  # rebuilt lazily after value syncs
        # Source bookkeeping for the per-iteration RHS.  Waveform values
        # are memoized per timestamp: every Newton iteration of one
        # transient attempt shares ``time``.  ``time=None`` (DC) is
        # never cached -- sweeps mutate source values between solves
        # without the timestamp changing.  ``_vsrc_elements`` /
        # ``_isrc_elements`` run parallel to the row/node lists and
        # include the template sources of every instance (zip against
        # the shorter ``_vsources`` would silently drop the tail).
        self._vsrc_elements: list[VoltageSource] = list(self._vsources)
        self._isrc_elements: list[CurrentSource] = list(self._isources)
        self._vsrc_branch_rows = [e._aux[0] for e in self._vsources]
        self._isrc_nodes = [e._idx for e in self._isources]
        for grp in self._instance_groups:
            plan = grp.plan
            if not (plan.vsrc_elements or plan.isrc_elements):
                continue
            for inst in grp.instances:
                self._vsrc_elements.extend(plan.vsrc_elements)
                self._vsrc_branch_rows.extend(
                    int(r) for r in inst.lut[plan.vsrc_rows])
                self._isrc_elements.extend(plan.isrc_elements)
                self._isrc_nodes.extend(
                    (int(p), int(n)) for p, n in inst.lut[plan.isrc_nodes])
        self._src_cache_time: float | None = None
        self._src_cache: tuple[list, list] | None = None

    def _build_mos(self) -> None:
        mos = list(self._mos)
        names = [m.name for m in mos]
        idx_parts = []
        if mos:
            idx_parts.append(np.array([m._idx for m in mos],
                                      dtype=np.intp).reshape(-1, 4))
        for grp in self._instance_groups:
            plan = grp.plan
            if not plan.mos_elements:
                continue
            # Instance-major blocks: (K, n_cell_mos, 4) -> rows, matching
            # the repeated element list below.
            idx_parts.append(
                grp.lut_matrix[:, plan.mos_idx].reshape(-1, 4))
            mos.extend(plan.mos_elements * len(grp.instances))
            names.extend(f"{inst.name}.{m.name}"
                         for inst in grp.instances
                         for m in plan.mos_elements)
        self._mos_all = mos
        self._mos_names = names
        self._mos_bank = None
        if not mos:
            return
        self._mos_bank = MosBank([m.device for m in mos],
                                 [m.temperature for m in mos])
        idx = np.vstack(idx_parts)  # (n, dgsb)
        d, g, s, b = idx[:, 0], idx[:, 1], idx[:, 2], idx[:, 3]
        self._mos_terms = (d, g, s, b)
        self._mos_d_mask = d >= 0
        self._mos_s_mask = s >= 0
        self._mos_d_idx = d[self._mos_d_mask]
        self._mos_s_idx = s[self._mos_s_mask]
        self._mos_d_all = bool(self._mos_d_mask.all())
        self._mos_s_all = bool(self._mos_s_mask.all())
        # Jacobian scatter: rows (d, s) x cols (d, g, s, b), with the
        # source-row block negated -- the exact entries of
        # MosElement.stamp, flattened.
        rows = np.concatenate([d, d, d, d, s, s, s, s])
        cols = np.concatenate([d, g, s, b, d, g, s, b])
        self._mos_valid, self._mos_flat = _masked_flat(rows, cols,
                                                       self.size)
        self._mos_sign = np.concatenate(
            [np.ones(4 * len(mos)), -np.ones(4 * len(mos))])
        self._mos_valid_all = bool(self._mos_valid.all())
        self._mos_buf = np.empty(8 * len(mos))

    def _build_diodes(self) -> None:
        diodes = list(self._diodes)
        idx_parts = []
        if diodes:
            idx_parts.append(np.array([d._idx for d in diodes],
                                      dtype=np.intp).reshape(-1, 2))
        for grp in self._instance_groups:
            plan = grp.plan
            if not plan.diode_elements:
                continue
            idx_parts.append(
                grp.lut_matrix[:, plan.diode_idx].reshape(-1, 2))
            diodes.extend(plan.diode_elements * len(grp.instances))
        self._diodes_all = diodes
        self._diode_bank = None
        if not diodes:
            return
        self._diode_bank = DiodeBank([d.diode for d in diodes],
                                     [d.temperature for d in diodes])
        idx = np.vstack(idx_parts)
        a, c = idx[:, 0], idx[:, 1]
        self._diode_terms = (a, c)
        self._diode_a_mask = a >= 0
        self._diode_c_mask = c >= 0
        self._diode_a_idx = a[self._diode_a_mask]
        self._diode_c_idx = c[self._diode_c_mask]
        rows = np.concatenate([a, a, c, c])
        cols = np.concatenate([a, c, a, c])
        self._diode_valid, self._diode_flat = _masked_flat(rows, cols,
                                                           self.size)
        self._diode_sign = np.concatenate(
            [np.ones(len(diodes)), -np.ones(len(diodes)),
             -np.ones(len(diodes)), np.ones(len(diodes))])

    def _build_charges(self) -> None:
        """Vectorized charge system (transient companion models).

        Term order matches ``CompiledCircuit.charge_terms``: element
        insertion order, one term per capacitor / diode.  An unknown
        element subclass overriding ``charge_terms`` cannot be
        vectorized blindly; its presence disables this fast path
        (``charges_vectorized`` False) and the transient engine falls
        back to the per-element API.
        """
        self.charges_vectorized = all(
            type(e).charge_terms is Element.charge_terms
            for e in self._fallback)
        slot = 0
        cap_slots, cap_pos, cap_neg, cap_c = [], [], [], []
        dio_slots = []
        # Diode slots must end up aligned with the *bank* order (top
        # diodes, then group by group, instance by instance), which the
        # insertion-order walk below does not follow when instances
        # interleave with top-level diodes -- so instance chunks are
        # collected aside and concatenated in bank order afterwards.
        inst_dio_chunks: dict[int, np.ndarray] = {}
        for element in self.compiled.circuit.elements:
            if isinstance(element, Capacitor):
                a, b = element._idx
                cap_slots.append(slot)
                cap_pos.append(a)
                cap_neg.append(b)
                cap_c.append(element.capacitance)
                slot += 1
            elif isinstance(element, DiodeElement):
                dio_slots.append(slot)
                slot += 1
            elif isinstance(element, Instance):
                plan = element.subcircuit.plan()
                lut = element.lut
                if plan.cap_offsets.size:
                    cap_slots.extend(
                        int(s) for s in slot + plan.cap_offsets)
                    cap_pos.extend(int(i) for i in lut[plan.cap_pos])
                    cap_neg.extend(int(i) for i in lut[plan.cap_neg])
                    cap_c.extend(plan.assembler._cap_c)
                if plan.dio_offsets.size:
                    inst_dio_chunks[id(element)] = slot + plan.dio_offsets
                slot += plan.n_charge_terms
        self.n_charge_terms = slot
        self._cap_slots = np.array(cap_slots, dtype=np.intp)
        self._cap_pos = np.array(cap_pos, dtype=np.intp)
        self._cap_neg = np.array(cap_neg, dtype=np.intp)
        self._cap_c = np.array(cap_c, dtype=float)
        self._cap_pos_mask = self._cap_pos >= 0
        self._cap_neg_mask = self._cap_neg >= 0
        self._cap_pos_idx = self._cap_pos[self._cap_pos_mask]
        self._cap_neg_idx = self._cap_neg[self._cap_neg_mask]
        rows = np.concatenate([self._cap_pos, self._cap_pos,
                               self._cap_neg, self._cap_neg])
        cols = np.concatenate([self._cap_pos, self._cap_neg,
                               self._cap_pos, self._cap_neg])
        self._cap_valid, self._cap_flat = _masked_flat(rows, cols,
                                                       self.size)
        n_caps = len(cap_slots)
        self._cap_jac_base = np.concatenate(
            [self._cap_c, -self._cap_c, -self._cap_c, self._cap_c]
        )[self._cap_valid] if n_caps else np.zeros(0)
        dio_parts = [np.array(dio_slots, dtype=np.intp)]
        for grp in self._instance_groups:
            for inst in grp.instances:
                chunk = inst_dio_chunks.get(id(inst))
                if chunk is not None:
                    dio_parts.append(chunk)
        self._dio_slots = np.concatenate(dio_parts)

    # -- sparse twin ----------------------------------------------------

    @property
    def sparse_eligible(self) -> bool:
        """Whether every element of the circuit stamps through a known
        scatter pattern.  Foreign :class:`Element` subclasses stamp
        imperatively through the dense ``add_j`` API, which has no
        triplet twin, so their presence pins the circuit to the dense
        backend."""
        return not self._fallback

    def _sparse_segments(self) -> dict:
        """The triplet segment patterns of :meth:`sparse_system`, as a
        fresh (ordered) dict -- the batched assembler extends it with
        per-lane overlay segments before building its own system."""
        size = self.size
        empty = np.zeros(0, dtype=np.intp)

        def unflat(flat: np.ndarray):
            return flat // size, flat % size

        diode_pat = (unflat(self._diode_flat)
                     if self._diode_bank is not None else (empty, empty))
        n_nodes = len(self.compiled.node_index)
        diag = np.arange(n_nodes)
        return {
            "lin": (self._lin_rows, self._lin_cols),
            "mos": (unflat(self._mos_flat)
                    if self._mos_bank is not None else (empty, empty)),
            "dio": diode_pat,
            "cap": unflat(self._cap_flat),
            "diocap": diode_pat,
            "diag": (diag, diag),
        }

    def sparse_system(self) -> SparseSystem:
        """The circuit's triplet->CSC scatter (built once, cached).

        Segment order is contractual -- ``lin, mos, dio, cap, diocap,
        diag`` is exactly the dense path's accumulation sequence
        (G_const copy, MOS scatter, diode scatter, charge companions,
        gmin/anchor diagonal), which together with bincount's
        sequential summation makes the assembled entries bit-identical
        to the dense Jacobian.
        """
        if self._sparse_system is None:
            self._sparse_system = SparseSystem(self.size,
                                               self._sparse_segments())
        return self._sparse_system

    # -- hot path -------------------------------------------------------

    def _grounded(self, x: np.ndarray) -> np.ndarray:
        """``x`` padded with a trailing 0 so ground index -1 reads 0.
        Returns a shared scratch buffer -- gather from it before the
        next call; never hold a reference across calls."""
        xg = self._xg
        xg[:-1] = x
        xg[-1] = 0.0
        return xg

    def _terminal_voltages(self, x: np.ndarray,
                           indices: tuple) -> tuple[np.ndarray, ...]:
        """Gather node voltages per terminal; ground index -1 reads 0."""
        xg = self._grounded(x)
        return tuple(xg[idx] for idx in indices)

    def _source_rhs(self, res: np.ndarray, time: float | None) -> None:
        """Independent-source excitations (Python loop: waveforms are
        user callables, and source counts are small).  Cached per
        timestamp: Newton iterations of one attempt share ``time``."""
        if time is not None and time == self._src_cache_time:
            vsrc_vals, isrc_vals = self._src_cache
        else:
            vsrc_vals = [e.value_at(time) for e in self._vsrc_elements]
            isrc_vals = [e.value_at(time) for e in self._isrc_elements]
            if time is not None:
                self._src_cache_time = time
                self._src_cache = (vsrc_vals, isrc_vals)
        for row, value in zip(self._vsrc_branch_rows, vsrc_vals):
            res[row] -= value
        for (p, n), value in zip(self._isrc_nodes, isrc_vals):
            if p >= 0:
                res[p] += value
            if n >= 0:
                res[n] -= value

    def _mos_values(self, res: np.ndarray, x: np.ndarray) -> np.ndarray:
        """One MOS bank evaluation: drain/source currents accumulated
        into ``res``, masked Jacobian scatter values returned (the same
        vector both backends consume, so they agree bit for bit)."""
        d, g, s, b = self._mos_terms
        vd, vg, vs, vb = self._terminal_voltages(x, (d, g, s, b))
        r = self._mos_bank.evaluate(vd, vg, vs, vb)
        np.add.at(res, self._mos_d_idx,
                  r.ids if self._mos_d_all
                  else r.ids[self._mos_d_mask])
        np.add.at(res, self._mos_s_idx,
                  -(r.ids if self._mos_s_all
                    else r.ids[self._mos_s_mask]))
        # [p_d p_g p_s p_b | -(same)] -- the drain-row block and the
        # negated source-row block of every device, built in a
        # reused buffer (negation is exact, so this matches the
        # former sign-vector multiply bit for bit).
        n = len(r.ids)
        buf = self._mos_buf
        buf[:n] = r.p_d
        buf[n:2 * n] = r.p_g
        buf[2 * n:3 * n] = r.p_s
        buf[3 * n:4 * n] = r.p_b
        np.negative(buf[:4 * n], out=buf[4 * n:])
        return buf if self._mos_valid_all else buf[self._mos_valid]

    def _diode_values(self, res: np.ndarray, x: np.ndarray) -> np.ndarray:
        """One diode bank evaluation: currents accumulated into ``res``,
        masked Jacobian scatter values returned."""
        a, c = self._diode_terms
        va, vc = self._terminal_voltages(x, (a, c))
        current, conductance = self._diode_bank.current(va - vc)
        np.add.at(res, self._diode_a_idx,
                  current[self._diode_a_mask])
        np.add.at(res, self._diode_c_idx,
                  -current[self._diode_c_mask])
        values = self._diode_sign * np.tile(conductance, 4)
        return values[self._diode_valid]

    def _count_bank_evals(self) -> None:
        if telemetry.is_enabled():
            span = telemetry.current_span()
            if self._mos_bank is not None:
                span.inc("device_bank_evals")
            if self._diode_bank is not None:
                span.inc("device_bank_evals")

    def assemble(self, st, x: np.ndarray, time: float | None) -> None:
        """Overwrite ``st`` with the full static system at ``x``.

        Dispatches on the stamper type: a dense
        :class:`~repro.spice.elements.Stamper` takes the flat-index
        scatter path, a :class:`~repro.spice.sparse.SparseStamper` the
        triplet path.
        """
        if isinstance(st, SparseStamper):
            self._assemble_sparse(st, x, time)
            return
        np.copyto(st.jac, self._g_const)
        np.dot(self._g_const, x, out=st.res)
        res = st.res
        self._source_rhs(res, time)
        self._count_bank_evals()
        jac_flat = st.jac.reshape(-1)
        if self._mos_bank is not None:
            np.add.at(jac_flat, self._mos_flat, self._mos_values(res, x))
        if self._diode_bank is not None:
            np.add.at(jac_flat, self._diode_flat,
                      self._diode_values(res, x))
        for element in self._fallback:
            element.stamp(st, x, time)

    def _assemble_sparse(self, st: SparseStamper, x: np.ndarray,
                         time: float | None) -> None:
        """Triplet-path twin of the dense hot loop: segments are
        overwritten in place, the residual stays dense, the linear part
        contributes through one cached CSR matvec."""
        if self._lin_csr is None:
            self._lin_csr = coo_to_csr(self._lin_rows, self._lin_cols,
                                       self._lin_vals, self.size)
        st.vals.fill(0.0)
        st.segment("lin")[:] = self._lin_vals
        st.res[:] = self._lin_csr.dot(x)
        res = st.res
        self._source_rhs(res, time)
        self._count_bank_evals()
        if self._mos_bank is not None:
            st.segment("mos")[:] = self._mos_values(res, x)
        if self._diode_bank is not None:
            st.segment("dio")[:] = self._diode_values(res, x)

    def device_operating_points(
            self, x: np.ndarray) -> dict[str, MosOperatingPoint]:
        """All MOS operating points at ``x`` via one bank call."""
        if self._mos_bank is None:
            return {}
        d, g, s, b = self._mos_terms
        vd, vg, vs, vb = self._terminal_voltages(x, (d, g, s, b))
        points = self._mos_bank.operating_points(vd, vg, vs, vb)
        return dict(zip(self._mos_names, points))

    # -- charge system (transient companions) ---------------------------

    def charge_vector(self, x: np.ndarray) -> np.ndarray:
        """All dynamic charges at ``x``, in canonical term order."""
        q = np.zeros(self.n_charge_terms)
        if self._cap_slots.size:
            vpos, vneg = self._terminal_voltages(
                x, (self._cap_pos, self._cap_neg))
            q[self._cap_slots] = self._cap_c * (vpos - vneg)
        if self._dio_slots.size:
            a, c = self._diode_terms
            va, vc = self._terminal_voltages(x, (a, c))
            q[self._dio_slots] = self._diode_bank.charge(va - vc)
        return q

    def stamp_charges(self, st, x: np.ndarray, c0: float,
                      rhs: np.ndarray) -> None:
        """Add the companion currents ``i = c0 q(x) + rhs`` and their
        conductances ``c0 dq/dv`` for every charge term.

        Works on both stamper types: the conductance values go through
        the dense flat-index scatter or into the ``cap``/``diocap``
        triplet segments (zeroed by the preceding :meth:`assemble`).
        """
        sparse = isinstance(st, SparseStamper)
        q = self.charge_vector(x)
        i = c0 * q + rhs
        res = st.res
        jac_flat = None if sparse else st.jac.reshape(-1)
        if self._cap_slots.size:
            i_cap = i[self._cap_slots]
            np.add.at(res, self._cap_pos_idx,
                      i_cap[self._cap_pos_mask])
            np.add.at(res, self._cap_neg_idx,
                      -i_cap[self._cap_neg_mask])
            if sparse:
                st.segment("cap")[:] = c0 * self._cap_jac_base
            else:
                np.add.at(jac_flat, self._cap_flat,
                          c0 * self._cap_jac_base)
        if self._dio_slots.size:
            a, c = self._diode_terms
            va, vc = self._terminal_voltages(x, (a, c))
            cap = self._diode_bank.capacitance(va - vc)
            i_dio = i[self._dio_slots]
            np.add.at(res, self._diode_a_idx,
                      i_dio[self._diode_a_mask])
            np.add.at(res, self._diode_c_idx,
                      -i_dio[self._diode_c_mask])
            values = self._diode_sign * np.tile(c0 * cap, 4)
            if sparse:
                st.segment("diocap")[:] = values[self._diode_valid]
            else:
                np.add.at(jac_flat, self._diode_flat,
                          values[self._diode_valid])

    # -- stacked charge system (batched transient companions) -----------

    def _grounded_rows(self, X: np.ndarray) -> np.ndarray:
        """``X`` (A, N) padded with a zero column so index -1 reads 0.
        Freshly allocated (unlike :meth:`_grounded`'s shared scratch):
        the batched callers hold several lane-axis gathers at once."""
        Xg = np.empty((X.shape[0], self.size + 1))
        Xg[:, :-1] = X
        Xg[:, -1] = 0.0
        return Xg

    def charge_vector_batch(self, X: np.ndarray) -> np.ndarray:
        """Stacked twin of :meth:`charge_vector`: all dynamic charges at
        every row of ``X`` (A, N), returned as (A, n_charge_terms).

        Charge parameters (capacitances, diode junction constants) are
        lane-independent -- :class:`~repro.spice.batch.LaneSpec`
        perturbs VT/beta, resistors and sources only -- so the lane
        axis broadcasts straight through the term expressions and each
        row is bit-identical to a serial ``charge_vector`` call at that
        lane's solution.
        """
        q = np.zeros((X.shape[0], self.n_charge_terms))
        if self.n_charge_terms == 0:
            return q
        Xg = self._grounded_rows(X)
        if self._cap_slots.size:
            q[:, self._cap_slots] = self._cap_c * (
                Xg[:, self._cap_pos] - Xg[:, self._cap_neg])
        if self._dio_slots.size:
            a, c = self._diode_terms
            q[:, self._dio_slots] = self._diode_bank.charge(
                Xg[:, a] - Xg[:, c])
        return q

    def stamp_charges_batch(self, target: np.ndarray, res: np.ndarray,
                            X: np.ndarray, c0: float, rhs: np.ndarray,
                            segment_slices: dict | None = None) -> None:
        """Stacked twin of :meth:`stamp_charges`: companion currents
        ``i = c0 q(x) + rhs`` and conductances ``c0 dq/dv`` for every
        lane row at once.

        ``rhs`` is per-lane, shape (A, n_charge_terms) -- each lane
        carries its own charge history.  Dense mode
        (``segment_slices=None``): ``target`` is the stacked (A, N, N)
        Jacobian, scattered through the same flat-index patterns as the
        serial path.  Sparse mode: ``target`` is the (A, n_triplets)
        data-row array and the values land in the ``cap``/``diocap``
        segments (zeroed by the preceding ``assemble_batch_sparse``).
        """
        sparse = segment_slices is not None
        q = self.charge_vector_batch(X)
        i = c0 * q + rhs
        jac_flat = None if sparse else target.reshape(X.shape[0], -1)
        all_rows = (slice(None),)
        if self._cap_slots.size:
            i_cap = i[:, self._cap_slots]
            np.add.at(res, all_rows + (self._cap_pos_idx,),
                      i_cap[:, self._cap_pos_mask])
            np.add.at(res, all_rows + (self._cap_neg_idx,),
                      -i_cap[:, self._cap_neg_mask])
            if sparse:
                target[:, segment_slices["cap"]] = c0 * self._cap_jac_base
            else:
                np.add.at(jac_flat, all_rows + (self._cap_flat,),
                          c0 * self._cap_jac_base)
        if self._dio_slots.size:
            a, c = self._diode_terms
            Xg = self._grounded_rows(X)
            cap = self._diode_bank.capacitance(Xg[:, a] - Xg[:, c])
            i_dio = i[:, self._dio_slots]
            np.add.at(res, all_rows + (self._diode_a_idx,),
                      i_dio[:, self._diode_a_mask])
            np.add.at(res, all_rows + (self._diode_c_idx,),
                      -i_dio[:, self._diode_c_mask])
            values = self._diode_sign * np.tile(c0 * cap, (1, 4))
            if sparse:
                target[:, segment_slices["diocap"]] = \
                    values[:, self._diode_valid]
            else:
                np.add.at(jac_flat, all_rows + (self._diode_flat,),
                          values[:, self._diode_valid])

    def susceptance_matrix(self, x: np.ndarray) -> np.ndarray:
        """Dense small-signal C matrix (dq/dv of every charge term) at
        ``x`` -- the ``jωC`` part of the AC system, assembled by the
        same flat-index scatters as :meth:`stamp_charges` (``c0 = 1``).

        Only valid when :attr:`charges_vectorized` is set; the AC
        engine falls back to the per-term ``charge_terms`` loop
        otherwise.
        """
        c_matrix = np.zeros((self.size, self.size))
        c_flat = c_matrix.reshape(-1)
        if self._cap_slots.size:
            np.add.at(c_flat, self._cap_flat, self._cap_jac_base)
        if self._dio_slots.size:
            a, c = self._diode_terms
            va, vc = self._terminal_voltages(x, (a, c))
            cap = self._diode_bank.capacitance(va - vc)
            values = self._diode_sign * np.tile(cap, 4)
            np.add.at(c_flat, self._diode_flat,
                      values[self._diode_valid])
        return c_matrix
