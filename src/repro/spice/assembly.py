"""Vectorized MNA assembly: constant linear part + array-valued restamp.

A :class:`CircuitAssembler` is built once per :class:`CompiledCircuit`
and replaces the per-element Python stamping loop on the Newton hot
path.  It splits the system into

* a **constant linear part** -- resistors, controlled sources and the
  incidence/branch topology of independent sources -- accumulated into
  one dense matrix ``G_const`` at build time, so each Newton iteration
  contributes it with a single ``copyto`` + matvec;
* a **per-iteration source RHS** -- the waveform values of independent
  sources (evaluated in Python: waveforms are user callables, but there
  are few sources);
* a **vectorized nonlinear restamp** -- every MOS transistor and diode
  of the circuit is grouped into a :class:`~repro.devices.mosfet.MosBank`
  / :class:`~repro.devices.diode.DiodeBank` and evaluated with one
  array-valued model call per iteration, scattered into the Jacobian
  through precomputed flat index arrays;
* a **fallback list** -- any element type the assembler does not know
  (user subclasses of :class:`~repro.spice.elements.Element`) keeps the
  classic per-element ``stamp`` call, so extensibility is preserved.

The assembler also owns the vectorized *charge* system used by the
transient engine: linear capacitors contribute a constant scatter
pattern scaled by the integration coefficient, diode depletion charges
are evaluated through the bank.

Because element *values* (a resistance aged by
:class:`~repro.faults.models.ResistorDrift`, a device swapped by
:class:`~repro.faults.models.VtOutlier`) may be mutated without going
through :class:`~repro.spice.netlist.Circuit`, the assembler keeps a
value signature and :meth:`sync` rebuilds the cached arrays whenever it
changed.  ``sync`` runs once per solve, not once per Newton iteration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .. import telemetry
from ..devices.diode import DiodeBank
from ..devices.mosfet import MosBank, MosOperatingPoint
from .elements import (
    Capacitor,
    CurrentSource,
    DiodeElement,
    Element,
    MosElement,
    Resistor,
    Stamper,
    Vccs,
    Vcvs,
    VoltageSource,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .netlist import CompiledCircuit


def _masked_flat(rows: np.ndarray, cols: np.ndarray,
                 size: int) -> tuple[np.ndarray, np.ndarray]:
    """(valid mask, flat indices of the valid entries) for a scatter
    into the raveled dense Jacobian; ground rows/columns are dropped."""
    valid = (rows >= 0) & (cols >= 0)
    flat = rows[valid].astype(np.intp) * size + cols[valid].astype(np.intp)
    return valid, flat


class CircuitAssembler:
    """Compile-once stamping engine for one :class:`CompiledCircuit`."""

    def __init__(self, compiled: "CompiledCircuit") -> None:
        self.compiled = compiled
        self.size = compiled.size
        self._signature: tuple | None = None
        self._xg = np.empty(self.size + 1)
        self._partition()
        self.sync()

    # -- structure ------------------------------------------------------

    def _partition(self) -> None:
        """Split elements by type; structure is fixed for the lifetime
        of the compiled circuit (structural edits recompile)."""
        self._resistors: list[Resistor] = []
        self._vsources: list[VoltageSource] = []
        self._isources: list[CurrentSource] = []
        self._vcvs: list[Vcvs] = []
        self._vccs: list[Vccs] = []
        self._capacitors: list[Capacitor] = []
        self._diodes: list[DiodeElement] = []
        self._mos: list[MosElement] = []
        self._fallback: list = []
        for element in self.compiled.circuit.elements:
            if isinstance(element, Resistor):
                self._resistors.append(element)
            elif isinstance(element, VoltageSource):
                self._vsources.append(element)
            elif isinstance(element, CurrentSource):
                self._isources.append(element)
            elif isinstance(element, Vcvs):
                self._vcvs.append(element)
            elif isinstance(element, Vccs):
                self._vccs.append(element)
            elif isinstance(element, Capacitor):
                self._capacitors.append(element)
            elif isinstance(element, DiodeElement):
                self._diodes.append(element)
            elif isinstance(element, MosElement):
                self._mos.append(element)
            else:
                self._fallback.append(element)

    def _value_signature(self) -> tuple:
        """Every mutable value baked into the cached arrays."""
        return (
            tuple(r.resistance for r in self._resistors),
            tuple(e.gain for e in self._vcvs),
            tuple(e.gm for e in self._vccs),
            tuple(c.capacitance for c in self._capacitors),
            tuple((id(m.device), m.device.vt_shift, m.device.beta_factor,
                   m.device.w, m.device.l, m.device.m, m.temperature)
                  for m in self._mos),
            tuple((id(d.diode), d.diode.area, d.temperature)
                  for d in self._diodes),
        )

    def sync(self) -> bool:
        """Rebuild the cached arrays when element values changed.

        Returns True when a rebuild happened.  Cheap when nothing
        changed: one pass collecting plain attribute reads.
        """
        signature = self._value_signature()
        if signature == self._signature:
            return False
        self._signature = signature
        self._build_linear()
        self._build_mos()
        self._build_diodes()
        self._build_charges()
        return True

    # -- build passes ---------------------------------------------------

    def _build_linear(self) -> None:
        size = self.size
        g = np.zeros((size, size))

        def add(row: int, col: int, value: float) -> None:
            if row >= 0 and col >= 0:
                g[row, col] += value

        for r in self._resistors:
            a, b = r._idx
            cond = 1.0 / r.resistance
            add(a, a, cond)
            add(a, b, -cond)
            add(b, a, -cond)
            add(b, b, cond)
        for e in self._vsources:
            p, n = e._idx
            (br,) = e._aux
            add(p, br, 1.0)
            add(n, br, -1.0)
            add(br, p, 1.0)
            add(br, n, -1.0)
        for e in self._vcvs:
            p, n, cp, cn = e._idx
            (br,) = e._aux
            add(p, br, 1.0)
            add(n, br, -1.0)
            add(br, p, 1.0)
            add(br, n, -1.0)
            add(br, cp, -e.gain)
            add(br, cn, e.gain)
        for e in self._vccs:
            p, n, cp, cn = e._idx
            add(p, cp, e.gm)
            add(p, cn, -e.gm)
            add(n, cp, -e.gm)
            add(n, cn, e.gm)
        self._g_const = g
        # Source bookkeeping for the per-iteration RHS.  Waveform values
        # are memoized per timestamp: every Newton iteration of one
        # transient attempt shares ``time``.  ``time=None`` (DC) is
        # never cached -- sweeps mutate source values between solves
        # without the timestamp changing.
        self._vsrc_branch_rows = [e._aux[0] for e in self._vsources]
        self._isrc_nodes = [e._idx for e in self._isources]
        self._src_cache_time: float | None = None
        self._src_cache: tuple[list, list] | None = None

    def _build_mos(self) -> None:
        mos = self._mos
        self._mos_bank = None
        if not mos:
            return
        self._mos_bank = MosBank([m.device for m in mos],
                                 [m.temperature for m in mos])
        idx = np.array([m._idx for m in mos], dtype=np.intp)  # (n, dgsb)
        d, g, s, b = idx[:, 0], idx[:, 1], idx[:, 2], idx[:, 3]
        self._mos_terms = (d, g, s, b)
        self._mos_d_mask = d >= 0
        self._mos_s_mask = s >= 0
        self._mos_d_idx = d[self._mos_d_mask]
        self._mos_s_idx = s[self._mos_s_mask]
        self._mos_d_all = bool(self._mos_d_mask.all())
        self._mos_s_all = bool(self._mos_s_mask.all())
        # Jacobian scatter: rows (d, s) x cols (d, g, s, b), with the
        # source-row block negated -- the exact entries of
        # MosElement.stamp, flattened.
        rows = np.concatenate([d, d, d, d, s, s, s, s])
        cols = np.concatenate([d, g, s, b, d, g, s, b])
        self._mos_valid, self._mos_flat = _masked_flat(rows, cols,
                                                       self.size)
        self._mos_sign = np.concatenate(
            [np.ones(4 * len(mos)), -np.ones(4 * len(mos))])
        self._mos_valid_all = bool(self._mos_valid.all())
        self._mos_buf = np.empty(8 * len(mos))

    def _build_diodes(self) -> None:
        diodes = self._diodes
        self._diode_bank = None
        if not diodes:
            return
        self._diode_bank = DiodeBank([d.diode for d in diodes],
                                     [d.temperature for d in diodes])
        idx = np.array([d._idx for d in diodes], dtype=np.intp)
        a, c = idx[:, 0], idx[:, 1]
        self._diode_terms = (a, c)
        self._diode_a_mask = a >= 0
        self._diode_c_mask = c >= 0
        self._diode_a_idx = a[self._diode_a_mask]
        self._diode_c_idx = c[self._diode_c_mask]
        rows = np.concatenate([a, a, c, c])
        cols = np.concatenate([a, c, a, c])
        self._diode_valid, self._diode_flat = _masked_flat(rows, cols,
                                                           self.size)
        self._diode_sign = np.concatenate(
            [np.ones(len(diodes)), -np.ones(len(diodes)),
             -np.ones(len(diodes)), np.ones(len(diodes))])

    def _build_charges(self) -> None:
        """Vectorized charge system (transient companion models).

        Term order matches ``CompiledCircuit.charge_terms``: element
        insertion order, one term per capacitor / diode.  An unknown
        element subclass overriding ``charge_terms`` cannot be
        vectorized blindly; its presence disables this fast path
        (``charges_vectorized`` False) and the transient engine falls
        back to the per-element API.
        """
        self.charges_vectorized = all(
            type(e).charge_terms is Element.charge_terms
            for e in self._fallback)
        slot = 0
        cap_slots, cap_pos, cap_neg, cap_c = [], [], [], []
        dio_slots = []
        for element in self.compiled.circuit.elements:
            if isinstance(element, Capacitor):
                a, b = element._idx
                cap_slots.append(slot)
                cap_pos.append(a)
                cap_neg.append(b)
                cap_c.append(element.capacitance)
                slot += 1
            elif isinstance(element, DiodeElement):
                dio_slots.append(slot)
                slot += 1
        self.n_charge_terms = slot
        self._cap_slots = np.array(cap_slots, dtype=np.intp)
        self._cap_pos = np.array(cap_pos, dtype=np.intp)
        self._cap_neg = np.array(cap_neg, dtype=np.intp)
        self._cap_c = np.array(cap_c, dtype=float)
        self._cap_pos_mask = self._cap_pos >= 0
        self._cap_neg_mask = self._cap_neg >= 0
        self._cap_pos_idx = self._cap_pos[self._cap_pos_mask]
        self._cap_neg_idx = self._cap_neg[self._cap_neg_mask]
        rows = np.concatenate([self._cap_pos, self._cap_pos,
                               self._cap_neg, self._cap_neg])
        cols = np.concatenate([self._cap_pos, self._cap_neg,
                               self._cap_pos, self._cap_neg])
        self._cap_valid, self._cap_flat = _masked_flat(rows, cols,
                                                       self.size)
        n_caps = len(cap_slots)
        self._cap_jac_base = np.concatenate(
            [self._cap_c, -self._cap_c, -self._cap_c, self._cap_c]
        )[self._cap_valid] if n_caps else np.zeros(0)
        self._dio_slots = np.array(dio_slots, dtype=np.intp)

    # -- hot path -------------------------------------------------------

    def _grounded(self, x: np.ndarray) -> np.ndarray:
        """``x`` padded with a trailing 0 so ground index -1 reads 0.
        Returns a shared scratch buffer -- gather from it before the
        next call; never hold a reference across calls."""
        xg = self._xg
        xg[:-1] = x
        xg[-1] = 0.0
        return xg

    def _terminal_voltages(self, x: np.ndarray,
                           indices: tuple) -> tuple[np.ndarray, ...]:
        """Gather node voltages per terminal; ground index -1 reads 0."""
        xg = self._grounded(x)
        return tuple(xg[idx] for idx in indices)

    def assemble(self, st: Stamper, x: np.ndarray,
                 time: float | None) -> None:
        """Overwrite ``st`` with the full static system at ``x``."""
        np.copyto(st.jac, self._g_const)
        np.dot(self._g_const, x, out=st.res)
        res = st.res
        # Independent-source excitations (Python loop: waveforms are
        # user callables, and source counts are small).  Cached per
        # timestamp: Newton iterations of one attempt share ``time``.
        if time is not None and time == self._src_cache_time:
            vsrc_vals, isrc_vals = self._src_cache
        else:
            vsrc_vals = [e.value_at(time) for e in self._vsources]
            isrc_vals = [e.value_at(time) for e in self._isources]
            if time is not None:
                self._src_cache_time = time
                self._src_cache = (vsrc_vals, isrc_vals)
        for row, value in zip(self._vsrc_branch_rows, vsrc_vals):
            res[row] -= value
        for (p, n), value in zip(self._isrc_nodes, isrc_vals):
            if p >= 0:
                res[p] += value
            if n >= 0:
                res[n] -= value
        if telemetry.is_enabled():
            span = telemetry.current_span()
            if self._mos_bank is not None:
                span.inc("device_bank_evals")
            if self._diode_bank is not None:
                span.inc("device_bank_evals")
        jac_flat = st.jac.reshape(-1)
        if self._mos_bank is not None:
            d, g, s, b = self._mos_terms
            vd, vg, vs, vb = self._terminal_voltages(x, (d, g, s, b))
            r = self._mos_bank.evaluate(vd, vg, vs, vb)
            np.add.at(res, self._mos_d_idx,
                      r.ids if self._mos_d_all
                      else r.ids[self._mos_d_mask])
            np.add.at(res, self._mos_s_idx,
                      -(r.ids if self._mos_s_all
                        else r.ids[self._mos_s_mask]))
            # [p_d p_g p_s p_b | -(same)] -- the drain-row block and the
            # negated source-row block of every device, built in a
            # reused buffer (negation is exact, so this matches the
            # former sign-vector multiply bit for bit).
            n = len(r.ids)
            buf = self._mos_buf
            buf[:n] = r.p_d
            buf[n:2 * n] = r.p_g
            buf[2 * n:3 * n] = r.p_s
            buf[3 * n:4 * n] = r.p_b
            np.negative(buf[:4 * n], out=buf[4 * n:])
            values = buf if self._mos_valid_all else buf[self._mos_valid]
            np.add.at(jac_flat, self._mos_flat, values)
        if self._diode_bank is not None:
            a, c = self._diode_terms
            va, vc = self._terminal_voltages(x, (a, c))
            current, conductance = self._diode_bank.current(va - vc)
            np.add.at(res, self._diode_a_idx,
                      current[self._diode_a_mask])
            np.add.at(res, self._diode_c_idx,
                      -current[self._diode_c_mask])
            values = self._diode_sign * np.tile(conductance, 4)
            np.add.at(jac_flat, self._diode_flat,
                      values[self._diode_valid])
        for element in self._fallback:
            element.stamp(st, x, time)

    def device_operating_points(
            self, x: np.ndarray) -> dict[str, MosOperatingPoint]:
        """All MOS operating points at ``x`` via one bank call."""
        if self._mos_bank is None:
            return {}
        d, g, s, b = self._mos_terms
        vd, vg, vs, vb = self._terminal_voltages(x, (d, g, s, b))
        points = self._mos_bank.operating_points(vd, vg, vs, vb)
        return {m.name: op for m, op in zip(self._mos, points)}

    # -- charge system (transient companions) ---------------------------

    def charge_vector(self, x: np.ndarray) -> np.ndarray:
        """All dynamic charges at ``x``, in canonical term order."""
        q = np.zeros(self.n_charge_terms)
        if self._cap_slots.size:
            vpos, vneg = self._terminal_voltages(
                x, (self._cap_pos, self._cap_neg))
            q[self._cap_slots] = self._cap_c * (vpos - vneg)
        if self._dio_slots.size:
            a, c = self._diode_terms
            va, vc = self._terminal_voltages(x, (a, c))
            q[self._dio_slots] = self._diode_bank.charge(va - vc)
        return q

    def stamp_charges(self, st: Stamper, x: np.ndarray, c0: float,
                      rhs: np.ndarray) -> None:
        """Add the companion currents ``i = c0 q(x) + rhs`` and their
        conductances ``c0 dq/dv`` for every charge term."""
        q = self.charge_vector(x)
        i = c0 * q + rhs
        res = st.res
        jac_flat = st.jac.reshape(-1)
        if self._cap_slots.size:
            i_cap = i[self._cap_slots]
            np.add.at(res, self._cap_pos_idx,
                      i_cap[self._cap_pos_mask])
            np.add.at(res, self._cap_neg_idx,
                      -i_cap[self._cap_neg_mask])
            np.add.at(jac_flat, self._cap_flat, c0 * self._cap_jac_base)
        if self._dio_slots.size:
            a, c = self._diode_terms
            va, vc = self._terminal_voltages(x, (a, c))
            cap = self._diode_bank.capacitance(va - vc)
            i_dio = i[self._dio_slots]
            np.add.at(res, self._diode_a_idx,
                      i_dio[self._diode_a_mask])
            np.add.at(res, self._diode_c_idx,
                      -i_dio[self._diode_c_mask])
            values = self._diode_sign * np.tile(c0 * cap, 4)
            np.add.at(jac_flat, self._diode_flat,
                      values[self._diode_valid])

    def susceptance_matrix(self, x: np.ndarray) -> np.ndarray:
        """Dense small-signal C matrix (dq/dv of every charge term) at
        ``x`` -- the ``jωC`` part of the AC system, assembled by the
        same flat-index scatters as :meth:`stamp_charges` (``c0 = 1``).

        Only valid when :attr:`charges_vectorized` is set; the AC
        engine falls back to the per-term ``charge_terms`` loop
        otherwise.
        """
        c_matrix = np.zeros((self.size, self.size))
        c_flat = c_matrix.reshape(-1)
        if self._cap_slots.size:
            np.add.at(c_flat, self._cap_flat, self._cap_jac_base)
        if self._dio_slots.size:
            a, c = self._diode_terms
            va, vc = self._terminal_voltages(x, (a, c))
            cap = self._diode_bank.capacitance(va - vc)
            values = self._diode_sign * np.tile(cap, 4)
            np.add.at(c_flat, self._diode_flat,
                      values[self._diode_valid])
        return c_matrix
