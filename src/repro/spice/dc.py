"""Nonlinear DC solution: Newton-Raphson with a homotopy ladder.

Subthreshold circuits are numerically awkward: currents span pA..uA and
every device is an exponential.  The solver therefore

* damps Newton steps to a maximum per-iteration voltage change,
* converges on the *update* norm (residuals at pA levels sit near the
  noise floor of double precision),
* climbs a pluggable ladder of fallback strategies (gmin stepping,
  source stepping, pseudo-transient continuation -- see
  :mod:`repro.spice.strategies`) when plain Newton diverges, recording
  a :class:`~repro.spice.strategies.SolverDiagnostics` either way.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Sequence

import numpy as np

from .. import telemetry
from ..errors import ConvergenceError, NetlistError
from .elements import CurrentSource, VoltageSource
from .netlist import Circuit, CompiledCircuit
from .results import OpResult, SweepResult
from .strategies import (NewtonOptions, SolveStrategy, SolverDiagnostics,
                         newton_solve, run_ladder)
from .waveforms import dc_wave

# Backwards-compatible aliases (the kernel moved to ``strategies``).
_newton = newton_solve


def _solve_with_homotopy(circuit: Circuit, compiled: CompiledCircuit,
                         x0: np.ndarray, time: float | None,
                         options: NewtonOptions,
                         strategies: Sequence[SolveStrategy] | None = None,
                         ) -> tuple[np.ndarray, SolverDiagnostics]:
    """Climb the strategy ladder; return (solution, diagnostics)."""
    return run_ladder(circuit, compiled, x0, time, options, strategies)


class _LazyDeviceOps(Mapping):
    """``device_ops`` mapping materialized on first access.

    Most sweep points are only read for node voltages; deferring the
    per-transistor operating-point extraction keeps it off the sweep
    hot path while looking exactly like the dict it replaces.
    """

    def __init__(self, compiled: CompiledCircuit, x: np.ndarray) -> None:
        self._compiled = compiled
        self._x = x
        self._data: dict | None = None

    def _materialize(self) -> dict:
        if self._data is None:
            self._data = self._compiled.device_ops(self._x)
        return self._data

    def __getitem__(self, key):
        return self._materialize()[key]

    def __iter__(self):
        return iter(self._materialize())

    def __len__(self) -> int:
        return len(self._materialize())

    def __repr__(self) -> str:
        return repr(self._materialize())


def _package(compiled: CompiledCircuit, x: np.ndarray, iterations: int,
             diagnostics: SolverDiagnostics | None = None) -> OpResult:
    circuit = compiled.circuit
    voltages = {name: float(x[i]) for name, i in compiled.node_index.items()}
    branch = {}
    for element in circuit.elements:
        aux = compiled.aux_index.get(element.name, ())
        if aux:
            branch[element.name] = float(x[aux[0]])
    x = x.copy()
    return OpResult(voltages=voltages, branch_currents=branch,
                    device_ops=_LazyDeviceOps(compiled, x),
                    iterations=iterations, x=x,
                    diagnostics=diagnostics)


def _nan_point(compiled: CompiledCircuit,
               diagnostics: SolverDiagnostics | None = None) -> OpResult:
    """Placeholder result for a sweep point that never converged."""
    voltages = {name: float("nan") for name in compiled.node_index}
    branch = {element.name: float("nan")
              for element in compiled.circuit.elements
              if compiled.aux_index.get(element.name, ())}
    return OpResult(voltages=voltages, branch_currents=branch,
                    device_ops={}, iterations=0, x=None,
                    diagnostics=diagnostics)


def operating_point(circuit: Circuit,
                    options: NewtonOptions | None = None,
                    x0: np.ndarray | None = None,
                    strategies: Sequence[SolveStrategy] | None = None,
                    ) -> OpResult:
    """Compute the DC operating point of ``circuit``.

    ``x0`` (e.g. a previous solution) warm-starts the solve; otherwise the
    circuit's nodesets seed the initial guess.  ``strategies`` overrides
    the default homotopy ladder (see
    :data:`repro.spice.strategies.DEFAULT_LADDER`).  The returned
    :class:`~repro.spice.results.OpResult` carries the full
    :class:`~repro.spice.strategies.SolverDiagnostics` of the solve.
    """
    options = options or NewtonOptions()
    with telemetry.span("operating-point", circuit=circuit.name) as tspan:
        compiled = circuit.compile()
        start = circuit.initial_guess(compiled) if x0 is None else x0.copy()
        if x0 is not None and x0.shape != (compiled.size,):
            raise NetlistError(
                f"warm-start vector has wrong size {x0.shape}, "
                f"expected ({compiled.size},)")
        x, diagnostics = _solve_with_homotopy(circuit, compiled, start,
                                              None, options, strategies)
        tspan.annotate(converged_via=diagnostics.rescued_by,
                       iterations=diagnostics.total_iterations,
                       warm_start=x0 is not None)
    return _package(compiled, x, diagnostics.total_iterations, diagnostics)


def _dc_sweep_batched(circuit: Circuit, source_name: str,
                      values: list[float],
                      options: NewtonOptions,
                      strategies: Sequence[SolveStrategy] | None,
                      on_error: str,
                      matrix_backend: str | None = None) -> SweepResult:
    """Stacked-sweep backend: every point is one lane of a batched
    ensemble solve.

    Where the serial sweep warm-starts point k from point k-1, the
    stacked solve has no sequential order to exploit -- so it solves
    the *first* point alone as a pilot and seeds every lane from that
    solution.  A smooth transfer curve then converges in a handful of
    stacked Newton iterations instead of every lane climbing the full
    gmin ladder from cold.  A failed pilot is not an error (its lane
    gets a second chance inside the batch); the lanes just start cold.
    """
    from .batch import LaneSpec, apply_lane, batch_operating_point

    lanes = [LaneSpec.source(source_name, value, label=f"{value:g}")
             for value in values]
    x0 = None
    undo = apply_lane(circuit, lanes[0])
    try:
        pilot = operating_point(circuit, options, strategies=strategies)
        x0 = pilot.x
    except ConvergenceError:
        pass
    finally:
        undo()
    batch = batch_operating_point(circuit, lanes, options=options,
                                  strategies=strategies, on_error="skip",
                                  x0=x0, matrix_backend=matrix_backend)
    if batch.failures and on_error == "raise":
        raise batch.failures[0][1]
    return SweepResult(parameter=source_name,
                       values=np.asarray(values, dtype=float),
                       points=batch.points,
                       failures=[(index, str(error))
                                 for index, error in batch.failures])


def dc_sweep(circuit: Circuit, source_name: str,
             values: Sequence[float],
             options: NewtonOptions | None = None,
             strategies: Sequence[SolveStrategy] | None = None,
             on_error: str = "raise",
             backend: str = "serial",
             matrix_backend: str | None = None) -> SweepResult:
    """Sweep the DC value of an independent source.

    Each point warm-starts from the previous solution, which is both
    faster and far more robust for exponential circuits.  The circuit
    is compiled once for the whole sweep (only the swept source's
    waveform changes, which is not a structural mutation), so every
    point reuses the same vectorized assembler.  A point whose
    warm-started solve fails is retried cold from the circuit's nodeset
    initial guess before any error is declared, so one bad bias point
    does not poison its successors.

    ``on_error`` selects the per-point recovery policy after both
    attempts fail:

    * ``"raise"`` (default): propagate the
      :class:`~repro.errors.ConvergenceError`;
    * ``"skip"``: record the point as NaN voltages, note it in
      :attr:`SweepResult.failures`, and continue from a cold start.

    ``backend="batched"`` solves all points as one stacked ensemble
    (see :mod:`repro.spice.batch`): every point becomes a lane of one
    multi-lane Newton solve with per-point convergence masking, and
    points the stacked loop cannot converge fall back to the serial
    strategy ladder individually.  ``matrix_backend`` (batched only)
    overrides the circuit's dense/sparse preference for the stacked
    solve.
    """
    if on_error not in ("raise", "skip"):
        raise NetlistError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}")
    if backend not in ("serial", "batched"):
        raise NetlistError(
            f"backend must be 'serial' or 'batched', got {backend!r}")
    if matrix_backend is not None and backend != "batched":
        raise NetlistError(
            "matrix_backend overrides apply to backend='batched' only")
    options = options or NewtonOptions()
    element = circuit.element(source_name)
    if not isinstance(element, (VoltageSource, CurrentSource)):
        raise NetlistError(
            f"{source_name!r} is not an independent source")
    if backend == "batched":
        return _dc_sweep_batched(circuit, source_name,
                                 [float(v) for v in values], options,
                                 strategies, on_error, matrix_backend)
    saved = element.waveform
    points: list[OpResult] = []
    failures: list[tuple[int, str]] = []
    x_prev: np.ndarray | None = None
    values = list(values)
    try:
        with telemetry.span("dc-sweep", circuit=circuit.name,
                            source=source_name,
                            n_points=len(values)) as tspan:
            for index, value in enumerate(values):
                element.waveform = dc_wave(float(value))
                try:
                    result = operating_point(circuit, options, x0=x_prev,
                                             strategies=strategies)
                except ConvergenceError as error:
                    result = None
                    if x_prev is not None:
                        # Warm start led the ladder astray: retry cold
                        # from the circuit's own nodeset guess.
                        tspan.event("cold-restart", index=index,
                                    value=float(value))
                        try:
                            result = operating_point(circuit, options,
                                                     x0=None,
                                                     strategies=strategies)
                        except ConvergenceError as cold_error:
                            error = cold_error
                    if result is None:
                        if on_error == "raise":
                            raise error
                        tspan.event("point-failed", index=index,
                                    value=float(value), why=str(error))
                        tspan.inc("sweep_points_failed")
                        failures.append((index, str(error)))
                        points.append(_nan_point(circuit.compile(),
                                                 error.diagnostics))
                        x_prev = None
                        continue
                points.append(result)
                x_prev = result.x
            tspan.annotate(n_failures=len(failures))
    finally:
        element.waveform = saved
    return SweepResult(parameter=source_name,
                       values=np.asarray(values, dtype=float),
                       points=points, failures=failures)
