"""Nonlinear DC solution: Newton-Raphson with homotopy fallbacks.

Subthreshold circuits are numerically awkward: currents span pA..uA and
every device is an exponential.  The solver therefore

* damps Newton steps to a maximum per-iteration voltage change,
* converges on the *update* norm (residuals at pA levels sit near the
  noise floor of double precision),
* falls back to gmin stepping and then source stepping when plain Newton
  diverges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from ..errors import ConvergenceError, NetlistError
from .elements import (CurrentSource, MosElement, Stamper, VoltageSource)
from .netlist import Circuit, CompiledCircuit
from .results import OpResult, SweepResult
from .waveforms import dc_wave

ExtraStamp = Callable[[Stamper, np.ndarray], None]


@dataclass(frozen=True)
class NewtonOptions:
    """Tuning knobs of the Newton solver.

    Attributes:
        max_iterations: Iteration cap per solve.
        vntol: Absolute node-voltage update tolerance [V].
        reltol: Relative update tolerance.
        max_step: Maximum voltage change applied per iteration [V].
        gmin: Conductance from every node to ground [S]; small enough not
            to disturb pA-level circuits.
    """

    max_iterations: int = 200
    vntol: float = 1.0e-7
    reltol: float = 1.0e-4
    max_step: float = 0.3
    gmin: float = 1.0e-15


def _newton(compiled: CompiledCircuit, x0: np.ndarray, time: float | None,
            options: NewtonOptions, gmin: float,
            extra_stamp: ExtraStamp | None = None) -> tuple[np.ndarray, int]:
    """Run damped Newton from ``x0``; return (solution, iterations)."""
    st = Stamper(compiled.size)
    x = x0.copy()
    n_nodes = len(compiled.node_index)
    for iteration in range(1, options.max_iterations + 1):
        compiled.stamp_all(st, x, time)
        if extra_stamp is not None:
            extra_stamp(st, x)
        if gmin > 0.0:
            for k in range(n_nodes):
                st.jac[k, k] += gmin
                st.res[k] += gmin * x[k]
        try:
            dx = np.linalg.solve(st.jac, -st.res)
        except np.linalg.LinAlgError:
            dx, *_ = np.linalg.lstsq(st.jac, -st.res, rcond=None)
        if not np.all(np.isfinite(dx)):
            raise ConvergenceError(
                f"non-finite Newton update in {compiled.circuit.name}",
                iterations=iteration)
        # Damp the voltage rows; branch currents follow freely.
        v_updates = np.abs(dx[:n_nodes]) if n_nodes else np.array([0.0])
        biggest = float(v_updates.max()) if v_updates.size else 0.0
        scale = 1.0 if biggest <= options.max_step else options.max_step / biggest
        x += scale * dx
        converged = biggest * scale < options.vntol * (
            1.0 + options.reltol * float(np.abs(x[:n_nodes]).max()
                                         if n_nodes else 0.0))
        if converged and scale == 1.0:
            return x, iteration
    raise ConvergenceError(
        f"Newton failed after {options.max_iterations} iterations "
        f"in {compiled.circuit.name}",
        iterations=options.max_iterations,
        residual=float(np.abs(st.res).max()))


def _independent_sources(circuit: Circuit):
    return [e for e in circuit.elements
            if isinstance(e, (VoltageSource, CurrentSource))]


def _solve_with_homotopy(circuit: Circuit, compiled: CompiledCircuit,
                         x0: np.ndarray, time: float | None,
                         options: NewtonOptions) -> tuple[np.ndarray, int]:
    """Plain Newton, then gmin stepping, then source stepping."""
    try:
        return _newton(compiled, x0, time, options, options.gmin)
    except ConvergenceError:
        pass

    # gmin stepping: solve with a heavy shunt, relax it geometrically.
    x = x0.copy()
    total_iters = 0
    try:
        for exponent in range(3, 16):
            gmin = 10.0 ** (-exponent)
            x, iters = _newton(compiled, x, time, options,
                               max(gmin, options.gmin))
            total_iters += iters
        x, iters = _newton(compiled, x, time, options, options.gmin)
        return x, total_iters + iters
    except ConvergenceError:
        pass

    # Source stepping: ramp every independent source from zero.
    sources = _independent_sources(circuit)
    saved = [source.waveform for source in sources]
    try:
        x = np.zeros_like(x0)
        total_iters = 0
        for fraction in np.linspace(0.1, 1.0, 10):
            for source, waveform in zip(sources, saved):
                value = waveform(0.0 if time is None else time)
                source.waveform = dc_wave(value * float(fraction))
            x, iters = _newton(compiled, x, None, options,
                               max(1e-12, options.gmin))
            total_iters += iters
        for source, waveform in zip(sources, saved):
            source.waveform = waveform
        x, iters = _newton(compiled, x, time, options, options.gmin)
        return x, total_iters + iters
    finally:
        for source, waveform in zip(sources, saved):
            source.waveform = waveform


def _package(compiled: CompiledCircuit, x: np.ndarray,
             iterations: int) -> OpResult:
    circuit = compiled.circuit
    voltages = {name: float(x[i]) for name, i in compiled.node_index.items()}
    branch = {}
    for element in circuit.elements:
        aux = compiled.aux_index.get(element.name, ())
        if aux:
            branch[element.name] = float(x[aux[0]])
    device_ops = {m.name: m.operating_point(x) for m in circuit.mos_elements()}
    return OpResult(voltages=voltages, branch_currents=branch,
                    device_ops=device_ops, iterations=iterations, x=x.copy())


def operating_point(circuit: Circuit,
                    options: NewtonOptions | None = None,
                    x0: np.ndarray | None = None) -> OpResult:
    """Compute the DC operating point of ``circuit``.

    ``x0`` (e.g. a previous solution) warm-starts the solve; otherwise the
    circuit's nodesets seed the initial guess.
    """
    options = options or NewtonOptions()
    compiled = circuit.compile()
    start = circuit.initial_guess(compiled) if x0 is None else x0.copy()
    if x0 is not None and x0.shape != (compiled.size,):
        raise NetlistError(
            f"warm-start vector has wrong size {x0.shape}, "
            f"expected ({compiled.size},)")
    x, iterations = _solve_with_homotopy(circuit, compiled, start, None,
                                         options)
    return _package(compiled, x, iterations)


def dc_sweep(circuit: Circuit, source_name: str,
             values: Sequence[float],
             options: NewtonOptions | None = None) -> SweepResult:
    """Sweep the DC value of an independent source.

    Each point warm-starts from the previous solution, which is both
    faster and far more robust for exponential circuits.
    """
    options = options or NewtonOptions()
    element = circuit.element(source_name)
    if not isinstance(element, (VoltageSource, CurrentSource)):
        raise NetlistError(
            f"{source_name!r} is not an independent source")
    saved = element.waveform
    points: list[OpResult] = []
    x_prev: np.ndarray | None = None
    try:
        for value in values:
            element.waveform = dc_wave(float(value))
            result = operating_point(circuit, options, x0=x_prev)
            points.append(result)
            x_prev = result.x
    finally:
        element.waveform = saved
    return SweepResult(parameter=source_name,
                       values=np.asarray(list(values), dtype=float),
                       points=points)
