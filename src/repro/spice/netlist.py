"""Circuit (netlist) builder and MNA compilation.

A :class:`Circuit` is an ordered collection of named elements over named
nodes.  ``"0"`` and ``"gnd"`` (any case) are the ground reference.
Compiling assigns each non-ground node a row in the MNA system and each
voltage-defined element its auxiliary branch row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import telemetry
from ..constants import T_NOMINAL
from ..devices.diode import Diode
from ..devices.mosfet import Mosfet
from ..errors import NetlistError
from .elements import (
    Capacitor,
    CurrentSource,
    DiodeElement,
    Element,
    GROUND_INDEX,
    MosElement,
    Resistor,
    Stamper,
    Vccs,
    Vcvs,
    VoltageSource,
)
from .waveforms import Waveform

#: Names treated as the ground reference.
GROUND_NAMES = frozenset({"0", "gnd"})


def is_ground(node: str) -> bool:
    """True when ``node`` names the ground reference."""
    return node.lower() in GROUND_NAMES


@dataclass
class CompiledCircuit:
    """A circuit with MNA indices assigned.

    Attributes:
        circuit: The source circuit.
        node_index: Map of non-ground node name -> MNA row.
        aux_index: Map of element name -> tuple of auxiliary rows.
        size: Total number of unknowns.
    """

    circuit: "Circuit"
    node_index: dict[str, int]
    aux_index: dict[str, tuple[int, ...]]
    size: int

    def __post_init__(self) -> None:
        self._assembler = None
        self._solver_backend: str | None = None

    def solver_backend(self) -> str:
        """``"dense"`` or ``"sparse"`` -- the linear-algebra backend the
        Newton kernel uses for this compiled circuit.

        Resolved once from :attr:`Circuit.matrix_backend`:

        * ``"dense"`` always stays dense;
        * ``"sparse"`` demands the sparse backend and raises
          :class:`~repro.errors.NetlistError` when it cannot be honored
          (scipy.sparse missing, or foreign elements whose imperative
          stamps have no triplet twin);
        * ``"auto"`` (default) picks sparse when the system has at
          least :data:`~repro.spice.sparse.SPARSE_AUTO_THRESHOLD`
          unknowns and the circuit is sparse-eligible.
        """
        if self._solver_backend is None:
            from .sparse import SPARSE_AUTO_THRESHOLD, sparse_available
            requested = getattr(self.circuit, "matrix_backend", "auto")
            if requested == "dense":
                self._solver_backend = "dense"
            elif requested == "sparse":
                if not sparse_available():
                    raise NetlistError(
                        f"{self.circuit.name}: matrix_backend='sparse' "
                        f"requires scipy.sparse")
                if not self.assembler.sparse_eligible:
                    raise NetlistError(
                        f"{self.circuit.name}: matrix_backend='sparse' "
                        f"cannot stamp foreign element types; use "
                        f"'dense' or 'auto'")
                self._solver_backend = "sparse"
            else:
                self._solver_backend = (
                    "sparse" if self.size >= SPARSE_AUTO_THRESHOLD
                    and sparse_available()
                    and self.assembler.sparse_eligible else "dense")
        return self._solver_backend

    def new_stamper(self):
        """A fresh stamper of the backend-appropriate type."""
        if self.solver_backend() == "sparse":
            from .sparse import SparseStamper
            return SparseStamper(self.assembler.sparse_system())
        return Stamper(self.size)

    def index_of(self, node: str) -> int:
        """MNA row of ``node`` (ground gives -1)."""
        if is_ground(node):
            return GROUND_INDEX
        try:
            return self.node_index[node]
        except KeyError:
            raise NetlistError(f"unknown node {node!r}") from None

    @property
    def assembler(self):
        """The vectorized stamping engine (built lazily, reused)."""
        if self._assembler is None:
            from .assembly import CircuitAssembler
            self._assembler = CircuitAssembler(self)
        return self._assembler

    def prepare(self):
        """Sync the assembler with any element-value mutations.

        Called once per solve (not per Newton iteration) by the DC
        ladder, the transient engine and the AC engine, so value edits
        that bypass :class:`Circuit` -- an aged resistance, a swapped
        device model -- are picked up without a recompile.
        """
        assembler = self.assembler
        assembler.sync()
        return assembler

    def stamp_all(self, st: Stamper, x: np.ndarray,
                  time: float | None) -> None:
        """Assemble the full static system at solution ``x``."""
        self.assembler.assemble(st, x, time)

    def device_ops(self, x: np.ndarray) -> dict:
        """MOS element name -> operating point at ``x`` (one vectorized
        bank call instead of one model call per transistor)."""
        return self.assembler.device_operating_points(x)

    def charge_terms(self, x: np.ndarray):
        """All dynamic charge terms at solution ``x`` (stable order)."""
        terms = []
        for element in self.circuit.elements:
            terms.extend(element.charge_terms(x))
        return terms


class Circuit:
    """A netlist under construction.

    Example -- a resistive divider::

        ckt = Circuit("divider")
        ckt.add_vsource("V1", "in", "0", 1.0)
        ckt.add_resistor("R1", "in", "mid", 10e3)
        ckt.add_resistor("R2", "mid", "0", 10e3)
    """

    #: Valid :attr:`matrix_backend` values.
    MATRIX_BACKENDS = ("auto", "dense", "sparse")

    def __init__(self, name: str = "circuit",
                 temperature: float = T_NOMINAL,
                 matrix_backend: str = "auto") -> None:
        self.name = name
        self.temperature = temperature
        if matrix_backend not in self.MATRIX_BACKENDS:
            raise NetlistError(
                f"matrix_backend must be one of {self.MATRIX_BACKENDS}, "
                f"got {matrix_backend!r}")
        #: Linear-algebra backend request resolved at solve time by
        #: :meth:`CompiledCircuit.solver_backend`.
        self.matrix_backend = matrix_backend
        self.elements: list[Element] = []
        self._names: set[str] = set()
        self._node_order: list[str] = []
        self._node_set: set[str] = set()
        #: Initial-guess hints for DC convergence (SPICE .nodeset).
        self.nodesets: dict[str, float] = {}
        self._compiled: CompiledCircuit | None = None
        #: Number of times a fresh compilation was performed (a cached
        #: ``compile()`` hit does not count).  Exposed for tests and
        #: benchmarks of the compile cache.
        self.compile_count = 0
        #: Default for :meth:`compile`'s structural validation.  Leave
        #: on; circuits that are *deliberately* degenerate (singular-
        #: matrix robustness tests) can opt out per instance.
        self.validate_on_compile = True

    # -- construction ---------------------------------------------------

    def invalidate(self) -> None:
        """Drop the cached compilation.

        Called automatically on every structural mutation (adding an
        element, introducing a node).  Element *value* mutations (an
        aged resistance, a swapped device) do not need it -- the
        assembler re-syncs values at the start of every solve -- but
        calling it is always safe.
        """
        self._compiled = None

    def _register(self, element: Element) -> Element:
        if element.name in self._names:
            raise NetlistError(
                f"duplicate element name {element.name!r} in {self.name}")
        self._names.add(element.name)
        for node in element.nodes:
            self._touch_node(node)
        self.elements.append(element)
        self.invalidate()
        return element

    def _touch_node(self, node: str) -> None:
        if not node:
            raise NetlistError("empty node name")
        if is_ground(node):
            return
        if node not in self._node_set:
            self._node_set.add(node)
            self._node_order.append(node)
            self.invalidate()

    def add_resistor(self, name: str, node_a: str, node_b: str,
                     resistance: float) -> Resistor:
        """Add an ideal resistor."""
        return self._register(Resistor(name, node_a, node_b, resistance))

    def add_capacitor(self, name: str, node_a: str, node_b: str,
                      capacitance: float) -> Capacitor:
        """Add an ideal capacitor."""
        return self._register(Capacitor(name, node_a, node_b, capacitance))

    def add_vsource(self, name: str, node_pos: str, node_neg: str,
                    waveform: Waveform | float,
                    ac_mag: float = 0.0) -> VoltageSource:
        """Add an independent voltage source."""
        return self._register(
            VoltageSource(name, node_pos, node_neg, waveform, ac_mag))

    def add_isource(self, name: str, node_pos: str, node_neg: str,
                    waveform: Waveform | float,
                    ac_mag: float = 0.0) -> CurrentSource:
        """Add an independent current source (see
        :class:`~repro.spice.elements.CurrentSource` for the direction
        convention)."""
        return self._register(
            CurrentSource(name, node_pos, node_neg, waveform, ac_mag))

    def add_vcvs(self, name: str, node_pos: str, node_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gain: float) -> Vcvs:
        """Add a voltage-controlled voltage source."""
        return self._register(
            Vcvs(name, node_pos, node_neg, ctrl_pos, ctrl_neg, gain))

    def add_vccs(self, name: str, node_pos: str, node_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gm: float) -> Vccs:
        """Add a voltage-controlled current source."""
        return self._register(
            Vccs(name, node_pos, node_neg, ctrl_pos, ctrl_neg, gm))

    def add_diode(self, name: str, anode: str, cathode: str,
                  diode: Diode) -> DiodeElement:
        """Add a junction diode (exponential I-V plus depletion charge)."""
        return self._register(
            DiodeElement(name, anode, cathode, diode, self.temperature))

    def add_mosfet(self, name: str, drain: str, gate: str, source: str,
                   bulk: str, device: Mosfet,
                   with_caps: bool = True) -> MosElement:
        """Add an EKV MOS transistor.

        When ``with_caps`` is true (the default), the lumped terminal
        capacitances of the device model are added as companion
        :class:`Capacitor` elements named ``<name>.c<pair>`` so transient
        and AC analyses see realistic dynamics.
        """
        element = self._register(
            MosElement(name, drain, gate, source, bulk, device,
                       self.temperature))
        if with_caps:
            terminal = {"d": drain, "g": gate, "s": source, "b": bulk}
            for (t_a, t_b), cap in device.capacitances().items():
                node_a, node_b = terminal[t_a], terminal[t_b]
                if node_a == node_b or cap <= 0.0:
                    continue
                self._register(Capacitor(
                    f"{name}.c{t_a}{t_b}", node_a, node_b, cap))
        return element

    def add_instance(self, name: str, subcircuit, ports: dict):
        """Instantiate a :class:`~repro.spice.subckt.Subcircuit`.

        ``ports`` maps each template port name to a parent net (ground
        allowed).  The instance's internal nets appear in this circuit
        as ``"<name>.<net>"``; template nodesets are replayed onto the
        mapped nets (without overriding hints already set here).  The
        cell compiles once -- every further instantiation reuses its
        plan and only tiles index arrays.
        """
        from .subckt import Instance
        instance = self._register(Instance(name, subcircuit, ports))
        for net, voltage in subcircuit.template.nodesets.items():
            mapped = instance.map_net(net)
            if not is_ground(mapped):
                self.nodesets.setdefault(mapped, voltage)
        return instance

    def nodeset(self, node: str, voltage: float) -> None:
        """Hint the DC solver with an initial guess for ``node``."""
        self._touch_node(node)
        if not is_ground(node):
            self.nodesets[node] = voltage

    # -- queries ---------------------------------------------------------

    @property
    def node_names(self) -> list[str]:
        """Non-ground nodes in insertion order."""
        return list(self._node_order)

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        for candidate in self.elements:
            if candidate.name == name:
                return candidate
        raise NetlistError(f"no element named {name!r} in {self.name}")

    def mos_elements(self) -> list[MosElement]:
        """All MOS transistor elements, in insertion order."""
        return [e for e in self.elements if isinstance(e, MosElement)]

    # -- compilation -----------------------------------------------------

    def compile(self, validate: bool | None = None) -> CompiledCircuit:
        """Assign MNA indices and bind them into the elements.

        The result is cached on the circuit: repeated calls (every
        sweep point, every transient run) return the same
        :class:`CompiledCircuit` -- and therefore the same vectorized
        assembler -- until a structural mutation invalidates it.

        Every fresh compilation first runs the structural validator
        (:func:`repro.spice.validate.validate_structure`): floating
        nets, sense-only (gate-only) nets and rail-disconnected
        subgraphs raise :class:`~repro.errors.NetlistError` naming the
        offending nets instead of surfacing later as a bare LAPACK
        singular-matrix error mid-Newton.  ``validate=False`` skips the
        check (deliberately degenerate test circuits); ``None`` follows
        :attr:`validate_on_compile`.
        """
        if self._compiled is not None:
            if telemetry.is_enabled():
                telemetry.current_span().inc("compile_cache_hits")
            return self._compiled
        if not self.elements:
            raise NetlistError(f"circuit {self.name!r} has no elements")
        if validate if validate is not None else self.validate_on_compile:
            from .validate import validate_structure
            validate_structure(self)
        if telemetry.is_enabled():
            telemetry.current_span().inc("compile_cache_misses")
        node_index = {name: i for i, name in enumerate(self._node_order)}
        next_row = len(self._node_order)
        aux_index: dict[str, tuple[int, ...]] = {}
        for element in self.elements:
            aux = tuple(range(next_row, next_row + element.n_aux))
            next_row += element.n_aux
            aux_index[element.name] = aux
            indices = tuple(
                GROUND_INDEX if is_ground(n) else node_index[n]
                for n in element.nodes)
            element.bind(indices, aux)
        self._compiled = CompiledCircuit(circuit=self,
                                         node_index=node_index,
                                         aux_index=aux_index,
                                         size=next_row)
        self.compile_count += 1
        return self._compiled

    def initial_guess(self, compiled: CompiledCircuit) -> np.ndarray:
        """Zero vector refined by nodesets (aux currents start at zero)."""
        x0 = np.zeros(compiled.size)
        for node, voltage in self.nodesets.items():
            x0[compiled.node_index[node]] = voltage
        return x0
