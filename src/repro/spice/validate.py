"""Pre-solve structural netlist validation.

A malformed netlist -- a net nothing can drive, an island with no path
to the rails -- produces a structurally singular MNA system.  Left
unchecked, that surfaces mid-Newton as a bare LAPACK
``LinAlgError: Singular matrix`` (or, worse, as a gmin-regularised
garbage solution).  This module diagnoses the structure *before* the
first factorization and raises :class:`~repro.errors.NetlistError`
naming the offending nets, so a fuzz case, an imported deck or a
hand-built circuit fails with an actionable message instead of a
linear-algebra traceback.

Three structural defects are detected (in order of specificity):

* **floating net** -- a net no element touches at all (typically a
  ``nodeset`` on a net that was never wired);
* **sense-only net** -- a net touched exclusively by terminals that
  read a voltage but cannot source or sink DC current (MOS gate/bulk,
  VCVS/VCCS control pins, capacitor plates).  Its MNA row is all-zero
  in DC: structurally singular;
* **rail-disconnected subgraph** -- a group of nets whose *conductive*
  elements (resistors, voltage sources, VCVS outputs, diodes, MOS
  drain-source channels) never reach the ground reference, leaving the
  island's absolute potential undetermined.  Nets held only by a
  current source or a VCCS output fall in this class too: current
  injection without conductance contributes nothing to the Jacobian.

The classification of each element type mirrors what it stamps (see
:mod:`repro.spice.elements`): an edge counts as conductive exactly when
the element couples its terminals in the DC Jacobian.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetlistError
from .elements import (Capacitor, CurrentSource, DiodeElement, Element,
                       MosElement, Resistor, Vccs, Vcvs, VoltageSource)

#: Issue kinds reported by :func:`structural_report`.
FLOATING_NET = "floating-net"
SENSE_ONLY_NET = "sense-only-net"
RAIL_DISCONNECTED = "rail-disconnected"


@dataclass(frozen=True)
class StructuralIssue:
    """One structural defect of a netlist.

    Attributes:
        kind: One of :data:`FLOATING_NET`, :data:`SENSE_ONLY_NET`,
            :data:`RAIL_DISCONNECTED`.
        nets: The offending net names (sorted).
        detail: Human-readable explanation, naming the touching
            elements where it helps.
    """

    kind: str
    nets: tuple[str, ...]
    detail: str


def _conductive_pairs(element: Element) -> list[tuple[str, str]]:
    """Node pairs ``element`` couples in the DC Jacobian.

    A voltage source (and a VCVS output) pins its two terminals
    together through the auxiliary branch row; R / diode / MOS channel
    contribute a conductance between their current-carrying terminals.
    Capacitors are DC-open; current sources and VCCS outputs inject
    current without any conductance.
    """
    if isinstance(element, (Resistor, VoltageSource, DiodeElement)):
        return [(element.nodes[0], element.nodes[1])]
    if isinstance(element, Vcvs):
        return [(element.nodes[0], element.nodes[1])]
    if isinstance(element, Vccs):
        # A VCCS output row couples to its *control* columns; an
        # output net with no other conductance is gmin-anchored at DC
        # -- the conventional ideal gm-C integrator idiom -- so the
        # output pair counts as coupled to the controls (and to each
        # other) rather than as a floating island.
        p, n, cp, cn = element.nodes
        return [(p, n), (p, cp), (n, cn)]
    if isinstance(element, MosElement):
        drain, _gate, source, _bulk = element.nodes
        return [(drain, source)]
    if isinstance(element, (Capacitor, CurrentSource)):
        # Explicitly DC-decoupled: a capacitor is open at DC and a
        # current source injects without conductance, so neither
        # couples its terminals in the DC Jacobian.  (Listed instead of
        # falling through so the conservative unknown-element branch
        # below cannot silently absorb them.)
        return []
    # Unknown element subclass: assume it couples all its terminals.
    # Mirrors the `_current_terminals` policy -- a foreign element with
    # an imperative stamp must never be false-flagged as leaving its
    # nets rail-disconnected.
    nodes = element.nodes
    return [(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)]


def _current_terminals(element: Element) -> list[str]:
    """Nets into which ``element`` can source or sink DC current.

    These terminals produce a nonzero MNA *row* contribution; a net
    touched by none of them has an all-zero row and is structurally
    singular (the sense-only defect).
    """
    if isinstance(element, (Resistor, VoltageSource, CurrentSource,
                            DiodeElement)):
        return list(element.nodes[:2])
    if isinstance(element, (Vcvs, Vccs)):
        return list(element.nodes[:2])  # outputs; controls only sense
    if isinstance(element, MosElement):
        drain, _gate, source, _bulk = element.nodes
        return [drain, source]
    if isinstance(element, Capacitor):
        return []  # DC-open
    # Unknown element subclass: assume every terminal carries current
    # (never produce a false alarm for a foreign element type).
    return list(element.nodes)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, key: str) -> str:
        root = key
        while self._parent.setdefault(root, root) != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def structural_report(circuit) -> list[StructuralIssue]:
    """All structural defects of ``circuit``, without raising.

    The empty list means the netlist passes every check.  ``circuit``
    is a :class:`~repro.spice.netlist.Circuit` (typed loosely to avoid
    an import cycle).
    """
    from .netlist import is_ground

    touches: dict[str, list[str]] = {n: [] for n in circuit.node_names}
    current: dict[str, set[str]] = {n: set() for n in circuit.node_names}
    uf = _UnionFind()
    ground = "0"
    uf.find(ground)

    def canon(node: str) -> str:
        return ground if is_ground(node) else node

    from .subckt import Instance

    def visit(element, name: str, mapped) -> None:
        for node in map(mapped, element.nodes):
            node = canon(node)
            if node != ground:
                touches.setdefault(node, []).append(name)
        for node in map(mapped, _current_terminals(element)):
            node = canon(node)
            if node != ground:
                current.setdefault(node, set()).add(name)
        for a, b in _conductive_pairs(element):
            uf.union(canon(mapped(a)), canon(mapped(b)))

    def identity(node: str) -> str:
        return node

    for element in circuit.elements:
        if isinstance(element, Instance):
            # Hierarchy is validated flat: template elements are walked
            # at the *name* level with ports remapped, so a defect
            # inside a cell (or a port left to dangle in the parent) is
            # reported against the parent's net names.
            for t_elem in element.subcircuit.template.elements:
                visit(t_elem, f"{element.name}.{t_elem.name}",
                      element.map_net)
        else:
            visit(element, element.name, identity)

    issues: list[StructuralIssue] = []

    floating = sorted(n for n, t in touches.items() if not t)
    if floating:
        issues.append(StructuralIssue(
            kind=FLOATING_NET, nets=tuple(floating),
            detail=f"net(s) {', '.join(map(repr, floating))} are not "
                   f"connected to any element (a nodeset on an unwired "
                   f"net?)"))

    sense_only = sorted(n for n, t in touches.items()
                        if t and not current.get(n))
    if sense_only:
        by_net = [f"{net!r} (touched by "
                  f"{', '.join(sorted(set(touches[net]))[:4])})"
                  for net in sense_only]
        issues.append(StructuralIssue(
            kind=SENSE_ONLY_NET, nets=tuple(sense_only),
            detail=f"net(s) {'; '.join(by_net)} are only sensed -- MOS "
                   f"gates/bulks, control pins and capacitors read a "
                   f"voltage but cannot source or sink DC current, so "
                   f"the MNA row is structurally singular"))

    flagged = set(floating) | set(sense_only)
    ground_root = uf.find(ground)
    disconnected = sorted(
        n for n, t in touches.items()
        if t and n not in flagged and uf.find(n) != ground_root)
    if disconnected:
        issues.append(StructuralIssue(
            kind=RAIL_DISCONNECTED, nets=tuple(disconnected),
            detail=f"net(s) {', '.join(map(repr, disconnected))} have "
                   f"no conductive path (R, V-source, diode, MOS "
                   f"channel) to the ground reference; the island's "
                   f"absolute potential is undetermined"))
    return issues


def validate_structure(circuit) -> None:
    """Raise :class:`~repro.errors.NetlistError` naming the offending
    nets when ``circuit`` is structurally singular; no-op otherwise."""
    issues = structural_report(circuit)
    if not issues:
        return
    summary = "; ".join(issue.detail for issue in issues)
    error = NetlistError(
        f"circuit {circuit.name!r} is structurally singular: {summary}")
    error.issues = issues  # forensic payload for programmatic callers
    raise error
