"""MNA element stamps.

Every element knows how to contribute to the nonlinear system
``f(x) = 0`` whose unknowns are the node voltages plus one auxiliary
branch current per voltage-defined element.  The residual convention is:

* ``f[node]`` accumulates the total current *leaving* the node;
* ``f[aux]`` holds the element's branch (voltage) equation.

Dynamic behaviour is expressed through *charge terms*: an element may
report charges ``q(x)`` flowing between a node pair; the transient engine
differentiates them with its integration formula and the AC engine stamps
``dq/dv`` into the susceptance matrix.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..devices.diode import Diode
from ..devices.mosfet import Mosfet, MosOperatingPoint
from ..errors import NetlistError
from .waveforms import Waveform, dc_wave

#: Index used for the ground node (never stamped).
GROUND_INDEX = -1


class Stamper:
    """A dense Jacobian + residual under assembly."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.jac = np.zeros((size, size))
        self.res = np.zeros(size)
        self._diag: np.ndarray | None = None

    def reset(self) -> None:
        self.jac.fill(0.0)
        self.res.fill(0.0)

    def add_diagonal(self, g, n_nodes: int) -> None:
        """Add ``g`` (scalar or per-node array) to the first ``n_nodes``
        diagonal entries -- the gmin shunt / pseudo-transient anchor
        stamp, shared with the sparse stamper so solver code stays
        backend-agnostic."""
        diag = self._diag
        if diag is None or diag.size != n_nodes:
            diag = self._diag = np.arange(n_nodes)
        self.jac[diag, diag] += g

    def add_j(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.jac[row, col] += value

    def add_f(self, row: int, value: float) -> None:
        if row >= 0:
            self.res[row] += value


@dataclass(frozen=True)
class ChargeTerm:
    """A charge q flowing from ``pos`` into ``neg`` when increasing.

    Attributes:
        pos: Row index receiving +dq/dt (ground = -1).
        neg: Row index receiving -dq/dt.
        q: Charge value at the evaluation point [C].
        derivs: Sequence of (column index, dq/dv) pairs.
    """

    pos: int
    neg: int
    q: float
    derivs: tuple[tuple[int, float], ...]


def _voltage(x: np.ndarray, idx: int) -> float:
    """Node voltage from the solution vector; ground reads as 0."""
    return 0.0 if idx < 0 else float(x[idx])


class Element(abc.ABC):
    """Base class for all circuit elements."""

    n_aux = 0

    def __init__(self, name: str, nodes: tuple[str, ...]) -> None:
        self.name = name
        self.nodes = nodes
        self._idx: tuple[int, ...] = ()
        self._aux: tuple[int, ...] = ()

    def bind(self, node_indices: tuple[int, ...],
             aux_indices: tuple[int, ...]) -> None:
        """Attach MNA row/column indices (called by the compiler)."""
        if len(node_indices) != len(self.nodes):
            raise NetlistError(
                f"{self.name}: expected {len(self.nodes)} node indices")
        if len(aux_indices) != self.n_aux:
            raise NetlistError(
                f"{self.name}: expected {self.n_aux} aux indices")
        self._idx = node_indices
        self._aux = aux_indices

    @abc.abstractmethod
    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        """Add static (resistive/source) contributions at solution ``x``.

        ``time`` is None for DC analyses: time-dependent sources must then
        use their DC/initial value.
        """

    def charge_terms(self, x: np.ndarray) -> list[ChargeTerm]:
        """Dynamic (charge) contributions; default none."""
        return []

    def stamp_ac(self, st: Stamper, x: np.ndarray) -> None:
        """Small-signal static stamp (defaults to the large-signal stamp
        evaluated at the operating point with sources zeroed; elements
        with independent sources override)."""
        self.stamp(st, x, None)


class Resistor(Element):
    """Ideal linear resistor."""

    def __init__(self, name: str, node_a: str, node_b: str,
                 resistance: float) -> None:
        super().__init__(name, (node_a, node_b))
        if resistance <= 0.0:
            raise NetlistError(f"{name}: resistance must be positive, "
                               f"got {resistance}")
        self.resistance = resistance

    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        a, b = self._idx
        g = 1.0 / self.resistance
        current = g * (_voltage(x, a) - _voltage(x, b))
        st.add_f(a, current)
        st.add_f(b, -current)
        st.add_j(a, a, g)
        st.add_j(a, b, -g)
        st.add_j(b, a, -g)
        st.add_j(b, b, g)


class Capacitor(Element):
    """Ideal linear capacitor (open in DC, charge term in transient/AC)."""

    def __init__(self, name: str, node_a: str, node_b: str,
                 capacitance: float) -> None:
        super().__init__(name, (node_a, node_b))
        if capacitance < 0.0:
            raise NetlistError(f"{name}: capacitance must be >= 0, "
                               f"got {capacitance}")
        self.capacitance = capacitance

    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        return  # open circuit in DC

    def charge_terms(self, x: np.ndarray) -> list[ChargeTerm]:
        a, b = self._idx
        v = _voltage(x, a) - _voltage(x, b)
        c = self.capacitance
        return [ChargeTerm(pos=a, neg=b, q=c * v,
                           derivs=((a, c), (b, -c)))]


class VoltageSource(Element):
    """Independent voltage source with an auxiliary branch current.

    The reported branch current flows from the positive node *through the
    source* to the negative node; a battery driving a load therefore
    reports a negative current.
    """

    n_aux = 1

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 waveform: Waveform | float, ac_mag: float = 0.0) -> None:
        super().__init__(name, (node_pos, node_neg))
        if not isinstance(waveform, Waveform):
            waveform = dc_wave(float(waveform))
        self.waveform = waveform
        self.ac_mag = ac_mag

    def value_at(self, time: float | None) -> float:
        return self.waveform(0.0 if time is None else time)

    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        p, n = self._idx
        (br,) = self._aux
        i_branch = float(x[br])
        st.add_f(p, i_branch)
        st.add_f(n, -i_branch)
        st.add_j(p, br, 1.0)
        st.add_j(n, br, -1.0)
        st.add_f(br, _voltage(x, p) - _voltage(x, n) - self.value_at(time))
        st.add_j(br, p, 1.0)
        st.add_j(br, n, -1.0)

    def stamp_ac(self, st: Stamper, x: np.ndarray) -> None:
        p, n = self._idx
        (br,) = self._aux
        st.add_j(p, br, 1.0)
        st.add_j(n, br, -1.0)
        st.add_j(br, p, 1.0)
        st.add_j(br, n, -1.0)
        # The AC excitation itself is applied by the AC engine as a RHS
        # entry of magnitude ac_mag on the branch row.


class CurrentSource(Element):
    """Independent current source.

    A positive value drives current from ``node_pos`` through the source
    into ``node_neg``: it *pulls* current out of the positive node.  A
    tail sink of I_SS from node "tail" is ``CurrentSource("tail", "0",
    i_ss)``; injecting into a node is ``CurrentSource("0", node, i)``.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 waveform: Waveform | float, ac_mag: float = 0.0) -> None:
        super().__init__(name, (node_pos, node_neg))
        if not isinstance(waveform, Waveform):
            waveform = dc_wave(float(waveform))
        self.waveform = waveform
        self.ac_mag = ac_mag

    def value_at(self, time: float | None) -> float:
        return self.waveform(0.0 if time is None else time)

    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        p, n = self._idx
        value = self.value_at(time)
        st.add_f(p, value)
        st.add_f(n, -value)

    def stamp_ac(self, st: Stamper, x: np.ndarray) -> None:
        return  # excitation handled by the AC engine RHS


class Vcvs(Element):
    """Voltage-controlled voltage source E: v(p,n) = gain * v(cp,cn).

    With a large gain this doubles as the ideal op-amp used inside
    replica-bias loops.
    """

    n_aux = 1

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gain: float) -> None:
        super().__init__(name, (node_pos, node_neg, ctrl_pos, ctrl_neg))
        self.gain = gain

    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        p, n, cp, cn = self._idx
        (br,) = self._aux
        i_branch = float(x[br])
        st.add_f(p, i_branch)
        st.add_f(n, -i_branch)
        st.add_j(p, br, 1.0)
        st.add_j(n, br, -1.0)
        st.add_f(br, _voltage(x, p) - _voltage(x, n)
                 - self.gain * (_voltage(x, cp) - _voltage(x, cn)))
        st.add_j(br, p, 1.0)
        st.add_j(br, n, -1.0)
        st.add_j(br, cp, -self.gain)
        st.add_j(br, cn, self.gain)


class Vccs(Element):
    """Voltage-controlled current source G: i(p->n) = gm * v(cp,cn)."""

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gm: float) -> None:
        super().__init__(name, (node_pos, node_neg, ctrl_pos, ctrl_neg))
        self.gm = gm

    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        p, n, cp, cn = self._idx
        v_ctrl = _voltage(x, cp) - _voltage(x, cn)
        i = self.gm * v_ctrl
        st.add_f(p, i)
        st.add_f(n, -i)
        st.add_j(p, cp, self.gm)
        st.add_j(p, cn, -self.gm)
        st.add_j(n, cp, -self.gm)
        st.add_j(n, cn, self.gm)


class DiodeElement(Element):
    """Junction diode with exponential current and depletion charge."""

    def __init__(self, name: str, anode: str, cathode: str,
                 diode: Diode, temperature: float) -> None:
        super().__init__(name, (anode, cathode))
        self.diode = diode
        self.temperature = temperature

    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        a, c = self._idx
        v_ak = _voltage(x, a) - _voltage(x, c)
        current, conductance = self.diode.current(v_ak, self.temperature)
        st.add_f(a, current)
        st.add_f(c, -current)
        st.add_j(a, a, conductance)
        st.add_j(a, c, -conductance)
        st.add_j(c, a, -conductance)
        st.add_j(c, c, conductance)

    def charge_terms(self, x: np.ndarray) -> list[ChargeTerm]:
        a, c = self._idx
        v_ak = _voltage(x, a) - _voltage(x, c)
        q = self.diode.charge(v_ak)
        cap = self.diode.capacitance(v_ak)
        return [ChargeTerm(pos=a, neg=c, q=q,
                           derivs=((a, cap), (c, -cap)))]


class MosElement(Element):
    """Four-terminal EKV MOS transistor (static channel current).

    Terminal capacitances are added as separate :class:`Capacitor`
    elements by :meth:`repro.spice.netlist.Circuit.add_mosfet` so the
    transient and AC engines treat them uniformly.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 bulk: str, device: Mosfet, temperature: float) -> None:
        super().__init__(name, (drain, gate, source, bulk))
        self.device = device
        self.temperature = temperature

    def operating_point(self, x: np.ndarray) -> MosOperatingPoint:
        """Evaluate the device model at solution vector ``x``."""
        d, g, s, b = self._idx
        return self.device.evaluate(
            _voltage(x, d), _voltage(x, g), _voltage(x, s), _voltage(x, b),
            self.temperature)

    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        d, g, s, b = self._idx
        op = self.operating_point(x)
        st.add_f(d, op.ids)
        st.add_f(s, -op.ids)
        for col, key in zip((d, g, s, b), ("d", "g", "s", "b")):
            partial = op.partials[key]
            st.add_j(d, col, partial)
            st.add_j(s, col, -partial)
