"""Hierarchical subcircuit compilation: compile a cell once,
instantiate it N times with index offsets.

A :class:`Subcircuit` wraps a *template* :class:`~.netlist.Circuit`
(built with the ordinary ``add_*`` API) plus an ordered port list.  The
template is compiled exactly once -- its MNA local index space, its
vectorized assembler (linear triplets, MOS/diode banks, charge system)
and its structural net pairs are all shared by every instance.  An
:class:`Instance` is then a single :class:`~.elements.Element` in the
parent circuit carrying only a local->global index LUT; the parent's
:class:`~.assembly.CircuitAssembler` expands instance groups into its
own flat scatter arrays with numpy index arithmetic, so a 32-bit adder
bit-slice chain costs one cell compile plus O(instances) array tiling
instead of O(chain) per-element Python work -- the way litex composes
an SoC from one parameterized core compiled once.

Naming: an instance's internal nets appear in the parent as
``"<instance>.<net>"``; ports take whatever parent nets the
instantiation binds them to (including ground).  Template nodesets are
replayed onto the mapped nets by
:meth:`~.netlist.Circuit.add_instance`.

Deliberate scope limits (documented in docs/architecture.md):

* one level of hierarchy -- a template may not itself contain
  instances;
* template elements must be assembler-known types (no foreign
  :class:`~.elements.Element` subclasses);
* instances of one subcircuit share the template's element values --
  source stepping ramps and fault/Monte-Carlo overlays address
  top-level elements only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..errors import NetlistError
from .elements import (
    Capacitor,
    ChargeTerm,
    CurrentSource,
    DiodeElement,
    Element,
    GROUND_INDEX,
    MosElement,
    Stamper,
    VoltageSource,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .netlist import Circuit


class CellPlan:
    """The compile-once artifact of a :class:`Subcircuit`.

    Everything here lives in the *template-local* index space: unknowns
    ``0..size-1`` (nodes first, then aux branch rows, exactly as the
    template compiled), with ground represented by ``-1`` so that a
    fancy-index through an instance LUT whose last entry is ``-1`` maps
    it straight back to global ground.
    """

    def __init__(self, subcircuit: "Subcircuit") -> None:
        template = subcircuit.template
        compiled = template.compile(validate=False)
        assembler = compiled.assembler
        if assembler._fallback:
            kinds = sorted({type(e).__name__ for e in assembler._fallback})
            raise NetlistError(
                f"subcircuit {subcircuit.name!r}: template contains "
                f"element types the assembler cannot expand: {kinds}")
        self.subcircuit = subcircuit
        self.compiled = compiled
        self.assembler = assembler
        self.size = compiled.size
        self.n_nodes = len(compiled.node_index)
        self.n_aux = self.size - self.n_nodes
        ports = subcircuit.ports
        self.internal_nodes: tuple[str, ...] = tuple(
            n for n in template.node_names if n not in ports)
        # Local ids of Instance.nodes order: ports first, then internals.
        self.node_local_ids = np.array(
            [compiled.node_index[p] for p in ports]
            + [compiled.node_index[n] for n in self.internal_nodes],
            dtype=np.intp)
        # Per-type local index arrays (ground already -1 from binding).
        mos = assembler._mos
        self.mos_elements = list(mos)
        self.mos_idx = (np.array([m._idx for m in mos], dtype=np.intp)
                        .reshape(-1, 4))
        diodes = assembler._diodes
        self.diode_elements = list(diodes)
        self.diode_idx = (np.array([d._idx for d in diodes], dtype=np.intp)
                          .reshape(-1, 2))
        self.vsrc_elements = list(assembler._vsources)
        self.vsrc_rows = np.array(
            [e._aux[0] for e in self.vsrc_elements], dtype=np.intp)
        self.isrc_elements = list(assembler._isources)
        self.isrc_nodes = (np.array([e._idx for e in self.isrc_elements],
                                    dtype=np.intp).reshape(-1, 2))
        # Charge-term layout in template insertion order: slot offsets
        # let the parent assembler allot each instance a contiguous
        # charge-slot block without re-walking the template.
        cap_offsets, dio_offsets = [], []
        cap_pos, cap_neg = [], []
        offset = 0
        for element in template.elements:
            if isinstance(element, Capacitor):
                cap_offsets.append(offset)
                cap_pos.append(element._idx[0])
                cap_neg.append(element._idx[1])
                offset += 1
            elif isinstance(element, DiodeElement):
                dio_offsets.append(offset)
                offset += 1
        self.n_charge_terms = offset
        self.cap_offsets = np.array(cap_offsets, dtype=np.intp)
        self.cap_pos = np.array(cap_pos, dtype=np.intp)
        self.cap_neg = np.array(cap_neg, dtype=np.intp)
        self.dio_offsets = np.array(dio_offsets, dtype=np.intp)


class Subcircuit:
    """A reusable cell: a template circuit plus an ordered port list."""

    def __init__(self, name: str, template: "Circuit",
                 ports: Sequence[str]) -> None:
        from .netlist import is_ground
        self.name = name
        self.template = template
        self.ports = tuple(ports)
        if len(set(self.ports)) != len(self.ports):
            raise NetlistError(f"subcircuit {name!r}: duplicate ports")
        known = set(template.node_names)
        for port in self.ports:
            if is_ground(port):
                raise NetlistError(
                    f"subcircuit {name!r}: ground cannot be a port (it "
                    f"is global)")
            if port not in known:
                raise NetlistError(
                    f"subcircuit {name!r}: port {port!r} is not a node "
                    f"of template {template.name!r}")
        for element in template.elements:
            if isinstance(element, Instance):
                raise NetlistError(
                    f"subcircuit {name!r}: nested instances are not "
                    f"supported (flatten {element.name!r} first)")
        self._plan: CellPlan | None = None

    def plan(self) -> CellPlan:
        """The compile-once cell plan (built lazily, cached)."""
        if self._plan is None:
            self._plan = CellPlan(self)
        return self._plan


class Instance(Element):
    """One placement of a :class:`Subcircuit` in a parent circuit.

    Its MNA nodes are the parent nets bound to the ports followed by
    the namespaced internal nets; its aux rows mirror the template's.
    Binding builds :attr:`lut`, the local->global index map the parent
    assembler tiles cell scatter patterns through (last entry is
    ground, so local ``-1`` indexes map to global ``-1``).
    """

    def __init__(self, name: str, subcircuit: Subcircuit,
                 ports: Mapping[str, str]) -> None:
        plan = subcircuit.plan()
        missing = [p for p in subcircuit.ports if p not in ports]
        extra = [p for p in ports if p not in subcircuit.ports]
        if missing or extra:
            raise NetlistError(
                f"instance {name!r} of {subcircuit.name!r}: port map "
                f"mismatch (missing {missing}, unknown {extra})")
        self.subcircuit = subcircuit
        self.port_map = dict(ports)
        self.n_aux = plan.n_aux
        nodes = tuple(ports[p] for p in subcircuit.ports) + tuple(
            f"{name}.{n}" for n in plan.internal_nodes)
        super().__init__(name, nodes)
        self.lut: np.ndarray | None = None

    def map_net(self, net: str) -> str:
        """Parent-circuit name of template net ``net``."""
        from .netlist import is_ground
        if is_ground(net):
            return "0"
        mapped = self.port_map.get(net)
        return mapped if mapped is not None else f"{self.name}.{net}"

    def bind(self, node_indices: tuple[int, ...],
             aux_indices: tuple[int, ...]) -> None:
        super().bind(node_indices, aux_indices)
        plan = self.subcircuit.plan()
        lut = np.empty(plan.size + 1, dtype=np.intp)
        lut[plan.node_local_ids] = node_indices
        lut[plan.n_nodes:plan.size] = aux_indices
        lut[plan.size] = GROUND_INDEX
        self.lut = lut

    # -- generic per-element fallback paths ------------------------------
    #
    # The vectorized assembler expands instances into its own arrays and
    # never calls these; they serve the per-element APIs (AC's stamp_ac
    # walk, the transient engine's non-vectorized charge loop) so an
    # Instance behaves like any other element there, at per-element
    # speed.

    def _local_x(self, x: np.ndarray, plan: CellPlan) -> np.ndarray:
        xg = np.append(x, 0.0)
        return xg[self.lut[:plan.size]]

    def stamp(self, st: Stamper, x: np.ndarray, time: float | None) -> None:
        plan = self.subcircuit.plan()
        plan.assembler.sync()
        local = Stamper(plan.size)
        plan.assembler.assemble(local, self._local_x(x, plan), time)
        rows = self.lut[:plan.size]
        valid = rows >= 0
        np.add.at(st.res, rows[valid], local.res[valid])
        gi, gj = np.meshgrid(rows, rows, indexing="ij")
        mask = valid[:, None] & valid[None, :]
        np.add.at(st.jac, (gi[mask], gj[mask]), local.jac[mask])

    def charge_terms(self, x: np.ndarray) -> list[ChargeTerm]:
        plan = self.subcircuit.plan()
        xl = self._local_x(x, plan)
        lut = self.lut
        terms: list[ChargeTerm] = []
        for element in self.subcircuit.template.elements:
            for term in element.charge_terms(xl):
                terms.append(ChargeTerm(
                    pos=int(lut[term.pos]), neg=int(lut[term.neg]),
                    q=term.q,
                    derivs=tuple((int(lut[col]), dqdv)
                                 for col, dqdv in term.derivs)))
        return terms

    def waveform_sources(self) -> list[VoltageSource | CurrentSource]:
        """The template's independent sources (for breakpoint
        collection by the transient engine)."""
        plan = self.subcircuit.plan()
        return [*plan.vsrc_elements, *plan.isrc_elements]
