"""Analysis result containers.

All results are plain data keyed by node / element names so downstream
code never touches MNA indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AnalysisError


@dataclass
class OpResult:
    """A DC operating point.

    Attributes:
        voltages: Node name -> voltage [V] (ground omitted).
        branch_currents: Name of voltage-defined element -> branch
            current [A] (positive from + node through the element).
        device_ops: MOS element name -> :class:`MosOperatingPoint`.
        iterations: Newton iterations used.
        x: Raw solution vector (for warm starts); None for a failed
            sweep point recorded under ``on_error="skip"``.
        diagnostics: The solver's forensic record
            (:class:`repro.spice.strategies.SolverDiagnostics`) -- which
            homotopy stage rescued the solve, per-stage iteration counts
            and residual trajectories.
    """

    voltages: dict[str, float]
    branch_currents: dict[str, float]
    device_ops: dict[str, object] = field(default_factory=dict)
    iterations: int = 0
    x: np.ndarray | None = None
    diagnostics: object | None = None

    @property
    def converged(self) -> bool:
        """False only for NaN placeholder points of a skipping sweep."""
        return self.x is not None

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` [V]; ground is 0 by definition."""
        if node.lower() in ("0", "gnd"):
            return 0.0
        try:
            return self.voltages[node]
        except KeyError:
            raise AnalysisError(f"no node {node!r} in result") from None

    def vdiff(self, node_pos: str, node_neg: str) -> float:
        """Differential voltage between two nodes [V]."""
        return self.voltage(node_pos) - self.voltage(node_neg)

    def current(self, element: str) -> float:
        """Branch current of a voltage-defined element [A]."""
        try:
            return self.branch_currents[element]
        except KeyError:
            raise AnalysisError(
                f"element {element!r} has no branch current") from None


@dataclass
class SweepResult:
    """A DC sweep: one operating point per swept value.

    Attributes:
        failures: ``(index, message)`` per non-converging point recorded
            under ``on_error="skip"`` (empty when everything converged).
    """

    parameter: str
    values: np.ndarray
    points: list[OpResult]
    failures: list[tuple[int, str]] = field(default_factory=list)

    @property
    def failed_indices(self) -> list[int]:
        """Sweep indices whose points hold NaN placeholders."""
        return [index for index, _message in self.failures]

    def voltage(self, node: str) -> np.ndarray:
        """Array of node voltages across the sweep (NaN at failures)."""
        return np.array([p.voltage(node) for p in self.points])

    def current(self, element: str) -> np.ndarray:
        """Array of branch currents across the sweep (NaN at failures)."""
        return np.array([p.current(element) for p in self.points])


@dataclass
class AcResult:
    """Small-signal frequency response.

    ``voltages[node]`` is a complex array over ``frequencies``.
    """

    frequencies: np.ndarray
    voltages: dict[str, np.ndarray]

    def transfer(self, node: str) -> np.ndarray:
        """Complex response at ``node`` (excitation is unit magnitude)."""
        try:
            return self.voltages[node]
        except KeyError:
            raise AnalysisError(f"no node {node!r} in AC result") from None

    def magnitude_db(self, node: str) -> np.ndarray:
        """|H| in dB at ``node``."""
        mag = np.abs(self.transfer(node))
        return 20.0 * np.log10(np.maximum(mag, 1e-300))

    def phase_deg(self, node: str) -> np.ndarray:
        """Unwrapped phase in degrees at ``node``."""
        return np.degrees(np.unwrap(np.angle(self.transfer(node))))

    def bandwidth_3db(self, node: str) -> float:
        """-3 dB frequency relative to the lowest-frequency magnitude."""
        mags = np.abs(self.transfer(node))
        reference = mags[0]
        if reference <= 0.0:
            raise AnalysisError("zero reference magnitude")
        threshold = reference / np.sqrt(2.0)
        below = np.nonzero(mags < threshold)[0]
        if below.size == 0:
            return float(self.frequencies[-1])
        k = int(below[0])
        if k == 0:
            return float(self.frequencies[0])
        # Log-linear interpolation between the straddling points.
        f1, f2 = self.frequencies[k - 1], self.frequencies[k]
        m1, m2 = mags[k - 1], mags[k]
        if m1 == m2:
            return float(f2)
        frac = (m1 - threshold) / (m1 - m2)
        return float(f1 * (f2 / f1) ** frac)


@dataclass
class TranResult:
    """Transient waveforms.

    Attributes:
        time: Sample instants [s].
        voltages: Node name -> array of voltages.
        branch_currents: Element name -> array of branch currents.
        telemetry: Step-acceptance record of the run
            (:class:`repro.spice.transient.TransientTelemetry`).
    """

    time: np.ndarray
    voltages: dict[str, np.ndarray]
    branch_currents: dict[str, np.ndarray] = field(default_factory=dict)
    telemetry: object | None = None

    def voltage(self, node: str) -> np.ndarray:
        if node.lower() in ("0", "gnd"):
            return np.zeros_like(self.time)
        try:
            return self.voltages[node]
        except KeyError:
            raise AnalysisError(f"no node {node!r} in result") from None

    def vdiff(self, node_pos: str, node_neg: str) -> np.ndarray:
        return self.voltage(node_pos) - self.voltage(node_neg)

    def crossing_times(self, node: str, level: float,
                       rising: bool | None = None) -> np.ndarray:
        """Interpolated times where the waveform crosses ``level``.

        ``rising`` filters the edge direction; None keeps both.
        Delegates to the shared crossing kernel of
        :mod:`repro.scope.measure` (so dense results and triggered
        captures measure identically); NaN-polluted records raise a
        clean :class:`~repro.errors.AnalysisError`.
        """
        from ..scope.measure import crossings

        return crossings(self.time, self.voltage(node), level, rising)

    def value_at(self, node: str, when: float) -> float:
        """Linearly interpolated voltage of ``node`` at time ``when``."""
        return float(np.interp(when, self.time, self.voltage(node)))
