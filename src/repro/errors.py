"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing convergence problems from modelling problems.
"""

from __future__ import annotations

import pickle


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class UnitError(ReproError, ValueError):
    """A quantity string or unit could not be parsed."""


class ModelError(ReproError, ValueError):
    """A device or behavioural model received invalid parameters."""


class NetlistError(ReproError, ValueError):
    """A circuit netlist is malformed (unknown node, duplicate name, ...)."""


class ConvergenceError(ReproError, RuntimeError):
    """A nonlinear or transient solve failed to converge.

    Attributes:
        iterations: Newton iterations spent before giving up.
        residual: Max-abs residual at the last iterate, when known.
        diagnostics: Forensic record of the solve, when available --
            a :class:`repro.spice.strategies.SolverDiagnostics` for DC
            ladder failures, a
            :class:`repro.spice.transient.TransientTelemetry` for
            transient stalls.
        stage: Name of the last strategy / phase attempted.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None,
                 diagnostics: object | None = None,
                 stage: str | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.diagnostics = diagnostics
        self.stage = stage

    def __reduce__(self):
        """Pickle with the forensic payload intact.

        Process pools ship worker failures back as pickled exception
        objects (``analysis/parallel.py`` returns library errors as
        *data*), so the reconstruction must preserve ``iterations`` /
        ``residual`` / ``diagnostics`` / ``stage`` exactly -- relying
        on ``BaseException``'s default reduction makes that an
        implementation detail.  A diagnostics object that itself cannot
        pickle (a foreign strategy's report holding a lambda, say) must
        not poison the transport and take the whole pool down with an
        obscure mid-IPC ``PicklingError``: it degrades to its ``repr``
        string, keeping the exception -- and every other attribute --
        deliverable.
        """
        state = dict(self.__dict__)
        diagnostics = state.get("diagnostics")
        if diagnostics is not None:
            try:
                pickle.dumps(diagnostics)
            except Exception:
                state["diagnostics"] = (
                    f"<unpicklable diagnostics {diagnostics!r}>")
        return (type(self), self.args, state)


class FaultInjectionError(ReproError, ValueError):
    """A fault model could not be applied to its target."""


class AnalysisError(ReproError, RuntimeError):
    """An analysis (sweep, Monte-Carlo, metric extraction) failed."""


class TelemetryError(ReproError, RuntimeError):
    """The tracing layer was misused (nested traces, malformed trace
    files) -- never raised while tracing is disabled."""


class DesignError(ReproError, ValueError):
    """A design-level constraint cannot be met (headroom, swing, depth)."""
