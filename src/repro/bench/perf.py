"""Timing of the MNA hot paths on FAI-ADC-sized STSCL netlists.

Each case builds its circuit fresh, runs one untimed warmup (JIT-free
Python, but the warmup still populates the compile cache exactly like a
real workflow would) and reports the best wall time over ``repeats``
runs -- the minimum is the standard estimator for "how fast can this
code go" because every source of interference only ever adds time.

The emitted ``BENCH_perf.json`` is schema-versioned so downstream
tooling (the CI perf-smoke job, trend dashboards) can evolve without
guessing at the layout.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from .. import telemetry
from ..analysis.montecarlo import MonteCarlo
from ..spice.dc import dc_sweep, operating_point
from ..spice.transient import TransientOptions, transient
from ..spice.waveforms import pulse_wave
from ..stscl.gate_model import StsclGateDesign
from ..stscl.netlist_gen import (
    stscl_buffer_chain_circuit,
    stscl_inverter_circuit,
    stscl_latch_circuit,
)

#: Format tag of the emitted JSON report (v2: per-case trace_counters;
#: v3: batched-ensemble cases + numpy/BLAS/threading provenance meta;
#: v4: LTE-controlled transient + transient_lte / ac_sweep fast-path
#: cases; v5: per-case ``backend`` + ``n_unknowns`` meta and the
#: ``sparse_adder_chain`` case with its dense-vs-sparse crossover
#: ladder; v6: the ``scope_capture`` triggered-capture case with its
#: samples-seen/stored and window-memory meta; v7: the
#: ``sparse_batched_montecarlo`` thousand-unknown ensemble case with
#: its campaign counters and per-seed speedup, and the
#: ``shm_montecarlo`` shared-memory parallel case with its payload
#: ratio and fleet-wide compile accounting; v8: the lockstep
#: ``batched_transient_montecarlo`` ensemble-waveform case with its
#: per-seed speedup and grid accounting, and the
#: ``fai_adc_yield_smoke`` yield-surface case whose batched INL/DNL is
#: checked bit-for-bit against the serial loop -- plus the serial
#: ``montecarlo`` case now reusing one compiled chip across the
#: population).
BENCH_SCHEMA = "repro-bench-perf/v8"

#: Environment variables that pin BLAS/OpenMP thread pools.  Recorded
#: in the report (and pinned in CI) because an unpinned BLAS spawning a
#: thread per core can swing the batched ``np.linalg.solve`` timings by
#: integer factors between machines.
THREAD_ENV_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                   "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS",
                   "VECLIB_MAXIMUM_THREADS")

_I_SS = 1e-9
_VDD = 0.4


@dataclass(frozen=True)
class BenchResult:
    """One timed case.

    Attributes:
        name: Case label.
        wall_s: Best wall time over the repeats [s].
        repeats: Timed repetitions (best-of).
        meta: Case-specific detail (sizes, counts) for the report.
        trace_counters: Telemetry counter totals collected from the
            (untimed) traced warmup run -- device-bank evaluations,
            Jacobian factorizations, compile-cache traffic -- so a
            perf regression in the report comes with its explanation.
    """

    name: str
    wall_s: float
    repeats: int
    meta: dict
    trace_counters: dict = dataclasses.field(default_factory=dict)


def _design() -> StsclGateDesign:
    return StsclGateDesign.default(_I_SS)


def _solver_meta(circuit) -> dict:
    """Backend + unknown count of the case's workload (schema v5).

    The compile is cached on the circuit, so calling this after the
    case has already solved costs nothing extra."""
    compiled = circuit.compile()
    return {"backend": compiled.solver_backend(),
            "n_unknowns": compiled.size}


def _bench_op_chain() -> dict:
    """Operating point of an 8-stage buffer chain (the deepest DC solve
    an FAI-ADC thermometer stage exercises)."""
    design = _design()
    high, low = _VDD, _VDD - design.v_sw
    circuit, _ = stscl_buffer_chain_circuit(design, _VDD, 8, high, low,
                                            with_dwell=True)
    result = operating_point(circuit)
    return {"n_elements": len(circuit.elements),
            "iterations": result.iterations, **_solver_meta(circuit)}


def _bench_dc_sweep(n_points: int) -> Callable[[], dict]:
    """Transfer-curve sweep of one inverter, warm-started per point."""
    def case() -> dict:
        design = _design()
        circuit, _ = stscl_inverter_circuit(design, _VDD)
        sweep = dc_sweep(circuit, "vinp",
                         np.linspace(0.0, _VDD, n_points))
        return {"n_points": n_points, "n_failures": len(sweep.failures),
                "compile_count": circuit.compile_count,
                **_solver_meta(circuit)}
    return case


def _bench_transient() -> dict:
    """Clocked D-latch over ten gate delays (trap integration).

    Step sizes are LTE-controlled (the engine default): the waveform
    error, not a hand-tuned ``dt_max``, bounds the step -- the dense
    ``dt_max = t_d / 15`` cap of the pre-LTE heuristic is gone, which
    is where the fast path's step-count (and wall-time) win comes
    from.  Waveform accuracy against a dense-step reference is pinned
    separately in ``benchmarks/perf/test_perf_bench.py``.
    """
    design = _design()
    t_d = design.delay()
    circuit = _latch_circuit(design)
    result = transient(circuit, 10.0 * t_d,
                       TransientOptions(reltol=4e-3, abstol=1e-4,
                                        dt_max=t_d / 2.5))
    return {"steps": result.telemetry.steps_accepted,
            "rejected": result.telemetry.steps_rejected,
            "lte_rejections": result.telemetry.lte_rejections,
            **_solver_meta(circuit)}


def _latch_circuit(design: StsclGateDesign):
    """The clocked D-latch workload shared by the transient cases."""
    t_d = design.delay()
    high, low = _VDD, _VDD - design.v_sw
    edge = t_d / 5.0
    d_p = pulse_wave(low, high, delay=2 * t_d, rise=edge, fall=edge,
                     width=4 * t_d, period=8 * t_d)
    d_n = pulse_wave(high, low, delay=2 * t_d, rise=edge, fall=edge,
                     width=4 * t_d, period=8 * t_d)
    c_p = pulse_wave(low, high, delay=t_d, rise=edge, fall=edge,
                     width=2 * t_d, period=4 * t_d)
    c_n = pulse_wave(high, low, delay=t_d, rise=edge, fall=edge,
                     width=2 * t_d, period=4 * t_d)
    circuit, _ = stscl_latch_circuit(design, _VDD, d_p, d_n, c_p, c_n)
    return circuit


def _bench_transient_lte(n_stages: int) -> Callable[[], dict]:
    """Pulse-driven STSCL buffer chain under the LTE controller.

    Exercises the cross-step LU chord (one Jacobian carried over many
    accepted steps of a settled chain) and the LTE rejection machinery
    on the cascaded edges -- the workload behind the controller's
    accepted-step regression pins.
    """
    def case() -> dict:
        design = _design()
        t_d = design.delay()
        high, low = _VDD, _VDD - design.v_sw
        edge = t_d / 5.0
        in_p = pulse_wave(low, high, delay=t_d, rise=edge, fall=edge,
                          width=3 * t_d, period=6 * t_d)
        in_n = pulse_wave(high, low, delay=t_d, rise=edge, fall=edge,
                          width=3 * t_d, period=6 * t_d)
        circuit, _ = stscl_buffer_chain_circuit(
            design, _VDD, n_stages, in_p, in_n)
        result = transient(circuit, 12.0 * t_d,
                           TransientOptions(dt_max=t_d / 2.0))
        return {"n_stages": n_stages,
                "steps": result.telemetry.steps_accepted,
                "rejected": result.telemetry.steps_rejected,
                "newton_rejections": result.telemetry.newton_rejections,
                "lte_rejections": result.telemetry.lte_rejections,
                **_solver_meta(circuit)}
    return case


def _bench_ac_sweep(n_frequencies: int) -> Callable[[], dict]:
    """Stacked-frequency AC sweep of one inverter.

    All frequencies of the log grid are solved through the stacked
    backend (QZ sweep with chunked-tensor fallback); the loop backend
    stays available for the speedup comparison in the perf tests.
    """
    def case() -> dict:
        from ..spice.ac import ac_analysis
        design = _design()
        circuit, _ = stscl_inverter_circuit(design, _VDD)
        circuit.element("vinp").ac_mag = 1.0
        freqs = np.logspace(2.0, 9.0, n_frequencies)
        result = ac_analysis(circuit, freqs, backend="stacked")
        return {"n_frequencies": n_frequencies,
                "n_nodes": len(result.voltages),
                **_solver_meta(circuit)}
    return case


#: Shared chip of the serial Monte-Carlo case, built lazily once per
#: process.  Seeds perturb it through ``apply_lane``'s undo contract
#: instead of rebuilding, so the compiled structure (and the
#: value-signature sync that skips re-stamping unchanged values) is
#: reused across the whole population -- the old build-per-seed loop
#: paid ``compile_cache_misses == n_seeds + 1`` for identical physics.
_MC_SHARED: tuple | None = None


def _mc_shared() -> tuple:
    global _MC_SHARED
    if _MC_SHARED is None:
        circuit, ports = stscl_inverter_circuit(_design(), _VDD)
        _MC_SHARED = (circuit, ports.outputs["y"])
    return _MC_SHARED


def _mc_metric(seed: int) -> dict[str, float]:
    """Differential output of one mismatched inverter chip.

    Module-level (and closure-free) so the Monte-Carlo process pool can
    pickle it; workers resolve the shared chip through their own lazy
    build.  Mismatch rides a VT-only
    :class:`~repro.spice.batch.LaneSpec` (same RNG, same draw order as
    the batched twin), applied and undone around the solve so the
    shared chip stays pristine.
    """
    from ..spice.batch import LaneSpec, apply_lane
    circuit, (out_p, out_n) = _mc_shared()
    rng = np.random.default_rng(seed)
    vt_delta = np.array([rng.normal(0.0, 5e-3)
                         for _ in circuit.mos_elements()])
    undo = apply_lane(circuit, LaneSpec.mismatch(vt_delta,
                                                 label=f"seed-{seed}"))
    try:
        result = operating_point(circuit)
    finally:
        undo()
    return {"v_diff": result.vdiff(out_p, out_n)}


def _bench_montecarlo(n_seeds: int,
                      n_workers: int) -> Callable[[], dict]:
    def case() -> dict:
        mc = MonteCarlo(_mc_metric, n_runs=n_seeds,
                        n_workers=n_workers)
        run = mc.run()
        return {"n_seeds": n_seeds, "n_workers": n_workers,
                "v_diff_mean": run["v_diff"].mean,
                **_solver_meta(_mc_shared()[0])}
    return case


def _batched_mc_build():
    circuit, _ = stscl_inverter_circuit(_design(), _VDD)
    return circuit


def _batched_mc_draw(seed: int, circuit):
    """The exact mismatch population of :func:`_mc_metric`, as a lane.

    Same RNG, same draw order, VT-only -- so the batched case's
    ``v_diff_mean`` lands on the serial case's number and the two bench
    entries time the *same* physics.
    """
    from ..spice.batch import LaneSpec
    rng = np.random.default_rng(seed)
    vt_delta = np.array([rng.normal(0.0, 5e-3)
                         for _ in circuit.mos_elements()])
    return LaneSpec.mismatch(vt_delta, label=f"seed-{seed}")


def _batched_mc_measure(result) -> dict[str, float]:
    return {"v_diff": result.vdiff("outp", "outn")}


def _bench_batched_montecarlo(n_seeds: int) -> Callable[[], dict]:
    """The Monte-Carlo population of ``montecarlo``, solved as one
    stacked tensor (``backend="batched"``); compare the two wall times
    per seed for the ensemble speedup."""
    def case() -> dict:
        from ..spice.batch import BatchedOpMetric
        spec = BatchedOpMetric(build=_batched_mc_build,
                               draw=_batched_mc_draw,
                               measure=_batched_mc_measure)
        run = MonteCarlo(spec, n_runs=n_seeds, backend="batched").run()
        return {"n_seeds": n_seeds, "batch": n_seeds,
                "v_diff_mean": run["v_diff"].mean,
                **_solver_meta(_batched_mc_build())}
    return case


def _bench_batched_sweep(n_points: int) -> Callable[[], dict]:
    """The transfer-curve sweep of ``dc_sweep``, every point one lane
    of a single stacked solve."""
    def case() -> dict:
        circuit, _ = stscl_inverter_circuit(_design(), _VDD)
        sweep = dc_sweep(circuit, "vinp",
                         np.linspace(0.0, _VDD, n_points),
                         backend="batched")
        return {"n_points": n_points, "batch": n_points,
                "n_failures": len(sweep.failures),
                **_solver_meta(circuit)}
    return case


def _bench_sparse_adder_chain(quick: bool) -> Callable[[], dict]:
    """Transistor-level pipelined adder chain: the thousand-unknown
    headline of the sparse backend.

    The timed body solves the full chain (32 bits, 16 in quick mode)
    through the auto-selected sparse path, then walks a short
    dense-vs-sparse ladder over narrower chains so the report carries
    the wall-time crossover behind ``SPARSE_AUTO_THRESHOLD`` -- per
    width the meta records both backends' solve times and the unknown
    count, and ``crossover_width`` is the first width where sparse
    wins outright.
    """
    widths = (4, 8) if quick else (4, 8, 16)
    headline_width = 16 if quick else 32

    def case() -> dict:
        from ..stscl.adder import adder_chain_circuit
        design = _design()
        mask = (1 << headline_width) - 1
        a, b = 0xDEADBEEF & mask, 0x12345678 & mask

        circuit, _ = adder_chain_circuit(design, _VDD,
                                         width=headline_width,
                                         a=a, b=b, carry_in=True)
        t0 = time.perf_counter()
        result = operating_point(circuit)
        headline_s = time.perf_counter() - t0

        ladder = []
        crossover_width = None
        for width in widths:
            entry = {"width": width}
            for backend in ("dense", "sparse"):
                rung, _ = adder_chain_circuit(
                    design, _VDD, width=width,
                    a=0xDEADBEEF & ((1 << width) - 1),
                    b=0x12345678 & ((1 << width) - 1), carry_in=True)
                rung.matrix_backend = backend
                t0 = time.perf_counter()
                operating_point(rung)
                entry[f"{backend}_s"] = time.perf_counter() - t0
                entry["n_unknowns"] = rung.compile().size
            ladder.append(entry)
            if crossover_width is None \
                    and entry["sparse_s"] < entry["dense_s"]:
                crossover_width = width

        return {"width": headline_width,
                "iterations": result.iterations,
                "headline_s": headline_s,
                "dense_vs_sparse": ladder,
                "crossover_width": crossover_width,
                **_solver_meta(circuit)}
    return case


def _bench_sparse_batched_montecarlo(quick: bool) -> Callable[[], dict]:
    """Full-bank mismatch Monte-Carlo on the thousand-unknown adder,
    solved as one sparse stacked ensemble.

    Every seed perturbs the VT of *every* transistor in the hierarchy
    (the full device bank, not just top-level elements), and all lanes
    share one COLAMD symbolic factorization -- the campaign counters in
    the meta pin that down (``sparse_symbolic_factorizations == 1``).
    The per-seed speedup compares the whole campaign wall time (pilot
    included) against one cold serial sparse solve of the same spec.
    """
    width = 16 if quick else 32
    n_seeds = 4 if quick else 8

    def case() -> dict:
        from ..spice.batch import BatchedOpMetric, LaneSpec
        from ..stscl.adder import adder_chain_circuit
        design = _design()
        mask = (1 << width) - 1
        a, b = 0xDEADBEEF & mask, 0x12345678 & mask
        circuit, ports = adder_chain_circuit(design, _VDD, width=width,
                                             a=a, b=b, carry_in=True)
        expected = (a + b + 1) & mask

        def build():
            # One shared circuit: apply_lane's undo contract restores
            # it exactly, so reuse is results-neutral and keeps the
            # compile (and the symbolic factorization) per-campaign.
            return circuit

        def draw(seed, target):
            bank = target.compile().assembler._mos_bank
            rng = np.random.default_rng(seed)
            return LaneSpec.mismatch(
                rng.normal(0.0, 2e-3, bank.n_devices),
                label=f"seed-{seed}")

        def measure(result):
            total = 0
            for i in range(width):
                p, n = ports[f"s{i}"]
                if result.voltages[p] - result.voltages[n] > 0:
                    total |= 1 << i
            return {"sum": float(total)}

        spec = BatchedOpMetric(build=build, draw=draw, measure=measure)
        with telemetry.span("sparse-batched-campaign") as cspan:
            t0 = time.perf_counter()
            run = MonteCarlo(spec, n_runs=n_seeds,
                             backend="batched").run()
            batched_s = time.perf_counter() - t0
        counters = cspan.total_counters()
        t0 = time.perf_counter()
        spec(0)
        serial_s = time.perf_counter() - t0
        return {"width": width, "n_seeds": n_seeds,
                "sum_expected": expected, "sum_mean": run["sum"].mean,
                "n_failed": run.n_failed,
                "serial_seed_s": serial_s,
                "batched_per_seed_s": batched_s / n_seeds,
                "per_seed_speedup": serial_s * n_seeds / batched_s,
                "campaign_counters": {
                    key: counters.get(key, 0) for key in
                    ("sparse_symbolic_factorizations",
                     "sparse_numeric_refactorizations",
                     "jacobian_factorizations", "lu_reuses")},
                **_solver_meta(circuit)}
    return case


def _bench_shm_montecarlo(n_seeds: int) -> Callable[[], dict]:
    """Parallel Monte-Carlo over the shared-memory plan cache.

    The :meth:`~repro.spice.batch.BatchedOpMetric.plan` call inside the
    traced region is the *only* circuit compile of the whole fleet
    (``compile_cache_misses == 1`` in the case's trace counters); the
    published plan reaches the workers as one shared segment, so each
    task ships a token instead of the compiled circuit -- the
    ``payload_ratio`` meta records the per-task byte shrink, and the
    summaries are checked bit-identical against the serial loop over
    the same plan.
    """
    def case() -> dict:
        import pickle

        from ..analysis.parallel import PLAN_PREFIX, PlanToken
        from ..spice.batch import BatchedOpMetric
        spec = BatchedOpMetric(build=_batched_mc_build,
                               draw=_batched_mc_draw,
                               measure=_batched_mc_measure)
        plan = spec.plan()
        serial = MonteCarlo(plan, n_runs=n_seeds).run()
        parallel = MonteCarlo(plan, n_runs=n_seeds, n_workers=2).run()
        identical = bool(np.array_equal(serial["v_diff"].values,
                                        parallel["v_diff"].values))
        classic_task = len(pickle.dumps((plan, 0, False)))
        # A representative token (real names embed the parent pid).
        token = PlanToken(name=f"{PLAN_PREFIX}{os.getpid()}_0",
                          size=classic_task)
        shm_task = len(pickle.dumps((token, 0, False)))
        return {"n_seeds": n_seeds, "n_workers": 2,
                "v_diff_mean": parallel["v_diff"].mean,
                "bit_identical_to_serial": identical,
                "classic_task_bytes": classic_task,
                "shm_task_bytes": shm_task,
                "payload_ratio": classic_task / shm_task,
                **_solver_meta(plan.circuit)}
    return case


def _bench_scope_capture(quick: bool) -> Callable[[], dict]:
    """Triggered streaming capture on the buffer-chain testbench.

    Times the whole ``replace_dense`` path -- per-sample trigger
    evaluation, ring-buffer pre-history, windowed post-capture -- on
    top of the transient it instruments, and records how many committed
    samples the session saw versus stored (the O(window) bound).
    """
    n_stages = 2 if quick else 3

    def case() -> dict:
        from ..stscl.testbench import buffer_chain_capture
        session = buffer_chain_capture(_design(), _VDD,
                                       n_stages=n_stages)
        segment = session.segment()
        return {"n_stages": n_stages,
                "samples_seen": session.samples_seen,
                "samples_stored": session.samples_stored,
                "window": len(segment),
                "window_bytes": segment.nbytes}
    return case


def _bench_batched_transient_montecarlo(quick: bool) -> Callable[[], dict]:
    """Mismatch Monte-Carlo over the clocked D-latch, integrated as one
    lockstep batched transient.

    Every seed's VT draw becomes one lane of a single
    :func:`~repro.spice.batch.batch_transient` campaign -- one stacked
    Newton solve per shared LTE-controlled step instead of one serial
    transient per seed.  The per-seed speedup compares the whole
    batched campaign against one serial integration of the same spec
    (same shared circuit, so the serial side pays no recompile); the
    shared grid's min-rule makes the batched waveform error
    equal-or-tighter than any single lane's.
    """
    n_seeds = 4 if quick else 12

    def case() -> dict:
        from ..spice.batch import BatchedTranMetric, LaneSpec
        design = _design()
        t_d = design.delay()
        t_stop = 10.0 * t_d
        options = TransientOptions(reltol=4e-3, abstol=1e-4,
                                   dt_max=t_d / 2.5)
        circuit = _latch_circuit(design)
        out_p, out_n = "outp", "outn"
        names = set(circuit.node_names)
        if out_p not in names:  # latch nets carry the gate prefix
            out_p = next(n for n in names if n.endswith("outp"))
            out_n = next(n for n in names if n.endswith("outn"))

        def build():
            # One shared circuit: apply_lane's undo restores it
            # exactly, so the serial comparison reuses the compile too.
            return circuit

        def draw(seed, target):
            rng = np.random.default_rng(seed)
            return LaneSpec.mismatch(
                np.array([rng.normal(0.0, 2e-3)
                          for _ in target.mos_elements()]),
                label=f"seed-{seed}")

        def measure(result):
            q = result.voltage(out_p) - result.voltage(out_n)
            return {"v_q_final": float(q[-1]), "v_q_peak": float(q.max())}

        spec = BatchedTranMetric(build=build, draw=draw, measure=measure,
                                 t_stop=t_stop, options=options)
        with telemetry.span("batched-transient-campaign") as cspan:
            t0 = time.perf_counter()
            run = MonteCarlo(spec, n_runs=n_seeds, backend="batched",
                             analysis="transient").run()
            batched_s = time.perf_counter() - t0
        counters = cspan.total_counters()
        t0 = time.perf_counter()
        serial_lane0 = spec(0)
        serial_s = time.perf_counter() - t0
        return {"n_seeds": n_seeds, "batch": n_seeds,
                "n_failed": run.n_failed,
                "v_q_final_mean": run["v_q_final"].mean,
                "serial_seed_s": serial_s,
                "batched_per_seed_s": batched_s / n_seeds,
                "per_seed_speedup": serial_s * n_seeds / batched_s,
                "campaign_counters": {
                    key: counters.get(key, 0) for key in
                    ("batch_transient_steps",
                     "batch_transient_lane_rejections",
                     "batch_lane_fallbacks")},
                **_solver_meta(circuit)}
    return case


def _bench_fai_adc_yield_smoke(quick: bool) -> Callable[[], dict]:
    """FAI ADC yield surface from batched transient waveforms.

    The headline workload the lockstep engine unlocks: a Monte-Carlo
    population of testbench circuits integrates as one batched
    transient on a *fixed* shared grid, each lane's ramp waveform is
    sampled into held voltages and pushed through the converter
    (:func:`~repro.adc.testbench.sampled_transient_codes`), and the
    per-lane INL/DNL forms the yield surface.  The fixed grid makes
    batched and serial lanes share time points exactly, so the integer
    codes -- and therefore the linearity metrics -- must match the
    serial loop bit for bit; the meta records that check.
    """
    n_seeds = 3 if quick else 6

    def case() -> dict:
        from ..adc import FaiAdc, FaiAdcConfig
        from ..adc.metrics import inl_dnl_from_codes
        from ..adc.testbench import sampled_transient_codes
        from ..devices.diode import Diode, DiodeParameters
        from ..spice.batch import BatchedTranMetric, LaneSpec
        from ..spice.netlist import Circuit
        from ..spice.waveforms import pwl_wave

        cfg = FaiAdcConfig(coarse_bits=2, fine_bits=4, n_folders=4)
        adc = FaiAdc(cfg, ideal=True, seed=0)
        t_stop = 1e-3
        n_steps = 256 if quick else 512
        dt = t_stop / n_steps
        options = TransientOptions(dt_initial=dt, dt_min=dt, dt_max=dt)
        # Sample the ramp where the RC node tracks it linearly (the
        # clamp diode only bites near the very top), mapped to cover
        # the converter's full scale plus half an LSB each side.
        sample_times = np.linspace(0.05 * t_stop, 0.85 * t_stop,
                                   cfg.n_codes * 8)
        v_lo, v_hi = 0.05, 0.85  # ideal ramp value at the window edges
        gain = (cfg.full_scale + cfg.lsb) / (v_hi - v_lo)
        center = (cfg.v_low - 0.5 * cfg.lsb) - gain * v_lo

        tb = Circuit("fai_yield_tb")
        tb.add_vsource("vramp", "in", "0",
                       pwl_wave(((0.0, 0.0), (t_stop, 1.0))))
        tb.add_resistor("rs", "in", "a", 1e3)
        tb.add_capacitor("cl", "a", "0", 1e-9)
        tb.add_diode("dclamp", "a", "0",
                     Diode(DiodeParameters(name="clamp", i_s=1e-18,
                                           cj0=1e-13)))

        def build():
            return tb

        def draw(seed, target):
            # Aged source resistor per chip: shifts the RC lag, walking
            # the code transitions by a fraction of an LSB per lane.
            factor = 1.0 + 0.25 * ((seed % 5) - 2)
            return LaneSpec(resistor_scale=(("rs", factor),),
                            label=f"seed-{seed}")

        def measure(result):
            codes = sampled_transient_codes(
                adc, result, "a", sample_times=sample_times,
                center=center, gain=gain)
            report = inl_dnl_from_codes(codes, cfg.n_bits)
            return {"inl": report.inl_max, "dnl": report.dnl_max}

        spec = BatchedTranMetric(build=build, draw=draw, measure=measure,
                                 t_stop=t_stop, options=options)
        t0 = time.perf_counter()
        batched = MonteCarlo(spec, n_runs=n_seeds, backend="batched",
                             analysis="transient").run()
        batched_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        serial = MonteCarlo(spec, n_runs=n_seeds, backend="serial",
                            analysis="transient").run()
        serial_s = time.perf_counter() - t0
        identical = all(
            np.array_equal(batched[key].values, serial[key].values)
            for key in ("inl", "dnl"))
        return {"n_seeds": n_seeds, "n_bits": cfg.n_bits,
                "n_grid_steps": n_steps,
                "inl_max_mean": batched["inl"].mean,
                "inl_max_p95": batched["inl"].p95,
                "dnl_max_mean": batched["dnl"].mean,
                "bit_identical_to_serial": identical,
                "serial_s": serial_s, "batched_s": batched_s,
                "per_seed_speedup": serial_s / batched_s,
                **_solver_meta(tb)}
    return case


def default_cases(quick: bool = False,
                  n_workers: int = 1) -> dict[str, Callable[[], dict]]:
    """Case name -> zero-argument callable returning its meta dict."""
    n_points = 11 if quick else 31
    n_seeds = 4 if quick else 8
    n_lanes = 8 if quick else 32
    n_stages = 2 if quick else 4
    n_frequencies = 61 if quick else 241
    return {
        "op_chain": _bench_op_chain,
        "dc_sweep": _bench_dc_sweep(n_points),
        "transient": _bench_transient,
        "transient_lte": _bench_transient_lte(n_stages),
        "ac_sweep": _bench_ac_sweep(n_frequencies),
        "montecarlo": _bench_montecarlo(n_seeds, n_workers),
        "batched_montecarlo": _bench_batched_montecarlo(n_lanes),
        "batched_sweep": _bench_batched_sweep(n_points),
        "sparse_adder_chain": _bench_sparse_adder_chain(quick),
        "sparse_batched_montecarlo": _bench_sparse_batched_montecarlo(quick),
        "shm_montecarlo": _bench_shm_montecarlo(n_seeds),
        "scope_capture": _bench_scope_capture(quick),
        "batched_transient_montecarlo":
            _bench_batched_transient_montecarlo(quick),
        "fai_adc_yield_smoke": _bench_fai_adc_yield_smoke(quick),
    }


def _traced_warmup(name: str, case: Callable[[], dict]) -> tuple[dict, dict]:
    """Run the untimed warmup under a private trace; returns
    (case meta, counter totals).  Timed repeats stay untraced, so the
    reported wall times measure the solver alone."""
    if telemetry.is_enabled():
        return case(), {}
    with telemetry.tracing(f"bench-{name}") as trace:
        meta = case()
    return meta, trace.total_counters()


def run_benchmarks(quick: bool = False, repeats: int | None = None,
                   n_workers: int = 1) -> list[BenchResult]:
    """Time every case; best-of-``repeats`` after one untimed warmup.

    The warmup run of each case is traced through :mod:`repro.telemetry`
    and its counter totals attached to the result, so the emitted
    report pairs every timing with the work the solver actually did.
    """
    if repeats is None:
        repeats = 1 if quick else 3
    results = []
    for name, case in default_cases(quick, n_workers).items():
        # Warmup: captures the case's meta detail plus trace counters.
        meta, counters = _traced_warmup(name, case)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            case()
            best = min(best, time.perf_counter() - t0)
        results.append(BenchResult(name=name, wall_s=best,
                                   repeats=repeats, meta=meta,
                                   trace_counters=counters))
    return results


def _blas_provenance() -> dict:
    """Which BLAS numpy linked against, best-effort.

    ``np.show_config`` has changed shape across numpy versions; a bench
    report must never fail over introspection, so any surprise
    degrades to ``{"name": "unknown"}``.
    """
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        return {"name": blas.get("name", "unknown"),
                "found": blas.get("found"),
                "version": blas.get("version")}
    except Exception:
        return {"name": "unknown"}


def runtime_provenance() -> dict:
    """Numerics-stack provenance attached to every report.

    Bench numbers are only comparable when numpy, its BLAS and the
    thread-pool pinning match; recording them turns "CI got slower"
    from archaeology into a diff.
    """
    return {
        "numpy": np.__version__,
        "blas": _blas_provenance(),
        "thread_env": {name: os.environ.get(name)
                       for name in THREAD_ENV_VARS},
        "cpu_count": os.cpu_count(),
    }


def write_report(results: list[BenchResult], path: str | Path,
                 quick: bool = False) -> Path:
    """Serialize ``results`` as schema-versioned JSON; returns the path."""
    path = Path(path)
    report = {
        "schema": BENCH_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                     time.gmtime()),
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runtime": runtime_provenance(),
        "results": {
            r.name: {"wall_s": r.wall_s, "repeats": r.repeats,
                     "meta": r.meta,
                     "trace_counters": r.trace_counters}
            for r in results
        },
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
