"""Timing of the MNA hot paths on FAI-ADC-sized STSCL netlists.

Each case builds its circuit fresh, runs one untimed warmup (JIT-free
Python, but the warmup still populates the compile cache exactly like a
real workflow would) and reports the best wall time over ``repeats``
runs -- the minimum is the standard estimator for "how fast can this
code go" because every source of interference only ever adds time.

The emitted ``BENCH_perf.json`` is schema-versioned so downstream
tooling (the CI perf-smoke job, trend dashboards) can evolve without
guessing at the layout.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from .. import telemetry
from ..analysis.montecarlo import MonteCarlo
from ..spice.dc import dc_sweep, operating_point
from ..spice.transient import TransientOptions, transient
from ..spice.waveforms import pulse_wave
from ..stscl.gate_model import StsclGateDesign
from ..stscl.netlist_gen import (
    stscl_buffer_chain_circuit,
    stscl_inverter_circuit,
    stscl_latch_circuit,
)

#: Format tag of the emitted JSON report (v2: per-case trace_counters;
#: v3: batched-ensemble cases + numpy/BLAS/threading provenance meta;
#: v4: LTE-controlled transient + transient_lte / ac_sweep fast-path
#: cases; v5: per-case ``backend`` + ``n_unknowns`` meta and the
#: ``sparse_adder_chain`` case with its dense-vs-sparse crossover
#: ladder; v6: the ``scope_capture`` triggered-capture case with its
#: samples-seen/stored and window-memory meta; v7: the
#: ``sparse_batched_montecarlo`` thousand-unknown ensemble case with
#: its campaign counters and per-seed speedup, and the
#: ``shm_montecarlo`` shared-memory parallel case with its payload
#: ratio and fleet-wide compile accounting).
BENCH_SCHEMA = "repro-bench-perf/v7"

#: Environment variables that pin BLAS/OpenMP thread pools.  Recorded
#: in the report (and pinned in CI) because an unpinned BLAS spawning a
#: thread per core can swing the batched ``np.linalg.solve`` timings by
#: integer factors between machines.
THREAD_ENV_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                   "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS",
                   "VECLIB_MAXIMUM_THREADS")

_I_SS = 1e-9
_VDD = 0.4


@dataclass(frozen=True)
class BenchResult:
    """One timed case.

    Attributes:
        name: Case label.
        wall_s: Best wall time over the repeats [s].
        repeats: Timed repetitions (best-of).
        meta: Case-specific detail (sizes, counts) for the report.
        trace_counters: Telemetry counter totals collected from the
            (untimed) traced warmup run -- device-bank evaluations,
            Jacobian factorizations, compile-cache traffic -- so a
            perf regression in the report comes with its explanation.
    """

    name: str
    wall_s: float
    repeats: int
    meta: dict
    trace_counters: dict = dataclasses.field(default_factory=dict)


def _design() -> StsclGateDesign:
    return StsclGateDesign.default(_I_SS)


def _solver_meta(circuit) -> dict:
    """Backend + unknown count of the case's workload (schema v5).

    The compile is cached on the circuit, so calling this after the
    case has already solved costs nothing extra."""
    compiled = circuit.compile()
    return {"backend": compiled.solver_backend(),
            "n_unknowns": compiled.size}


def _bench_op_chain() -> dict:
    """Operating point of an 8-stage buffer chain (the deepest DC solve
    an FAI-ADC thermometer stage exercises)."""
    design = _design()
    high, low = _VDD, _VDD - design.v_sw
    circuit, _ = stscl_buffer_chain_circuit(design, _VDD, 8, high, low,
                                            with_dwell=True)
    result = operating_point(circuit)
    return {"n_elements": len(circuit.elements),
            "iterations": result.iterations, **_solver_meta(circuit)}


def _bench_dc_sweep(n_points: int) -> Callable[[], dict]:
    """Transfer-curve sweep of one inverter, warm-started per point."""
    def case() -> dict:
        design = _design()
        circuit, _ = stscl_inverter_circuit(design, _VDD)
        sweep = dc_sweep(circuit, "vinp",
                         np.linspace(0.0, _VDD, n_points))
        return {"n_points": n_points, "n_failures": len(sweep.failures),
                "compile_count": circuit.compile_count,
                **_solver_meta(circuit)}
    return case


def _bench_transient() -> dict:
    """Clocked D-latch over ten gate delays (trap integration).

    Step sizes are LTE-controlled (the engine default): the waveform
    error, not a hand-tuned ``dt_max``, bounds the step -- the dense
    ``dt_max = t_d / 15`` cap of the pre-LTE heuristic is gone, which
    is where the fast path's step-count (and wall-time) win comes
    from.  Waveform accuracy against a dense-step reference is pinned
    separately in ``benchmarks/perf/test_perf_bench.py``.
    """
    design = _design()
    t_d = design.delay()
    circuit = _latch_circuit(design)
    result = transient(circuit, 10.0 * t_d,
                       TransientOptions(reltol=4e-3, abstol=1e-4,
                                        dt_max=t_d / 2.5))
    return {"steps": result.telemetry.steps_accepted,
            "rejected": result.telemetry.steps_rejected,
            "lte_rejections": result.telemetry.lte_rejections,
            **_solver_meta(circuit)}


def _latch_circuit(design: StsclGateDesign):
    """The clocked D-latch workload shared by the transient cases."""
    t_d = design.delay()
    high, low = _VDD, _VDD - design.v_sw
    edge = t_d / 5.0
    d_p = pulse_wave(low, high, delay=2 * t_d, rise=edge, fall=edge,
                     width=4 * t_d, period=8 * t_d)
    d_n = pulse_wave(high, low, delay=2 * t_d, rise=edge, fall=edge,
                     width=4 * t_d, period=8 * t_d)
    c_p = pulse_wave(low, high, delay=t_d, rise=edge, fall=edge,
                     width=2 * t_d, period=4 * t_d)
    c_n = pulse_wave(high, low, delay=t_d, rise=edge, fall=edge,
                     width=2 * t_d, period=4 * t_d)
    circuit, _ = stscl_latch_circuit(design, _VDD, d_p, d_n, c_p, c_n)
    return circuit


def _bench_transient_lte(n_stages: int) -> Callable[[], dict]:
    """Pulse-driven STSCL buffer chain under the LTE controller.

    Exercises the cross-step LU chord (one Jacobian carried over many
    accepted steps of a settled chain) and the LTE rejection machinery
    on the cascaded edges -- the workload behind the controller's
    accepted-step regression pins.
    """
    def case() -> dict:
        design = _design()
        t_d = design.delay()
        high, low = _VDD, _VDD - design.v_sw
        edge = t_d / 5.0
        in_p = pulse_wave(low, high, delay=t_d, rise=edge, fall=edge,
                          width=3 * t_d, period=6 * t_d)
        in_n = pulse_wave(high, low, delay=t_d, rise=edge, fall=edge,
                          width=3 * t_d, period=6 * t_d)
        circuit, _ = stscl_buffer_chain_circuit(
            design, _VDD, n_stages, in_p, in_n)
        result = transient(circuit, 12.0 * t_d,
                           TransientOptions(dt_max=t_d / 2.0))
        return {"n_stages": n_stages,
                "steps": result.telemetry.steps_accepted,
                "rejected": result.telemetry.steps_rejected,
                "newton_rejections": result.telemetry.newton_rejections,
                "lte_rejections": result.telemetry.lte_rejections,
                **_solver_meta(circuit)}
    return case


def _bench_ac_sweep(n_frequencies: int) -> Callable[[], dict]:
    """Stacked-frequency AC sweep of one inverter.

    All frequencies of the log grid are solved through the stacked
    backend (QZ sweep with chunked-tensor fallback); the loop backend
    stays available for the speedup comparison in the perf tests.
    """
    def case() -> dict:
        from ..spice.ac import ac_analysis
        design = _design()
        circuit, _ = stscl_inverter_circuit(design, _VDD)
        circuit.element("vinp").ac_mag = 1.0
        freqs = np.logspace(2.0, 9.0, n_frequencies)
        result = ac_analysis(circuit, freqs, backend="stacked")
        return {"n_frequencies": n_frequencies,
                "n_nodes": len(result.voltages),
                **_solver_meta(circuit)}
    return case


def _mc_metric(seed: int) -> dict[str, float]:
    """Differential output of one mismatched inverter chip.

    Module-level (and closure-free) so the Monte-Carlo process pool can
    pickle it.  Mismatch is applied with :func:`dataclasses.replace` --
    both branch transistors share one device object, so mutating it in
    place would shift the whole pair together.
    """
    design = _design()
    circuit, ports = stscl_inverter_circuit(design, _VDD)
    rng = np.random.default_rng(seed)
    for element in circuit.mos_elements():
        element.device = dataclasses.replace(
            element.device,
            vt_shift=element.device.vt_shift + rng.normal(0.0, 5e-3))
    result = operating_point(circuit)
    out_p, out_n = ports.outputs["y"]
    return {"v_diff": result.vdiff(out_p, out_n)}


def _bench_montecarlo(n_seeds: int,
                      n_workers: int) -> Callable[[], dict]:
    def case() -> dict:
        mc = MonteCarlo(_mc_metric, n_runs=n_seeds,
                        n_workers=n_workers)
        run = mc.run()
        return {"n_seeds": n_seeds, "n_workers": n_workers,
                "v_diff_mean": run["v_diff"].mean,
                **_solver_meta(_batched_mc_build())}
    return case


def _batched_mc_build():
    circuit, _ = stscl_inverter_circuit(_design(), _VDD)
    return circuit


def _batched_mc_draw(seed: int, circuit):
    """The exact mismatch population of :func:`_mc_metric`, as a lane.

    Same RNG, same draw order, VT-only -- so the batched case's
    ``v_diff_mean`` lands on the serial case's number and the two bench
    entries time the *same* physics.
    """
    from ..spice.batch import LaneSpec
    rng = np.random.default_rng(seed)
    vt_delta = np.array([rng.normal(0.0, 5e-3)
                         for _ in circuit.mos_elements()])
    return LaneSpec.mismatch(vt_delta, label=f"seed-{seed}")


def _batched_mc_measure(result) -> dict[str, float]:
    return {"v_diff": result.vdiff("outp", "outn")}


def _bench_batched_montecarlo(n_seeds: int) -> Callable[[], dict]:
    """The Monte-Carlo population of ``montecarlo``, solved as one
    stacked tensor (``backend="batched"``); compare the two wall times
    per seed for the ensemble speedup."""
    def case() -> dict:
        from ..spice.batch import BatchedOpMetric
        spec = BatchedOpMetric(build=_batched_mc_build,
                               draw=_batched_mc_draw,
                               measure=_batched_mc_measure)
        run = MonteCarlo(spec, n_runs=n_seeds, backend="batched").run()
        return {"n_seeds": n_seeds, "batch": n_seeds,
                "v_diff_mean": run["v_diff"].mean,
                **_solver_meta(_batched_mc_build())}
    return case


def _bench_batched_sweep(n_points: int) -> Callable[[], dict]:
    """The transfer-curve sweep of ``dc_sweep``, every point one lane
    of a single stacked solve."""
    def case() -> dict:
        circuit, _ = stscl_inverter_circuit(_design(), _VDD)
        sweep = dc_sweep(circuit, "vinp",
                         np.linspace(0.0, _VDD, n_points),
                         backend="batched")
        return {"n_points": n_points, "batch": n_points,
                "n_failures": len(sweep.failures),
                **_solver_meta(circuit)}
    return case


def _bench_sparse_adder_chain(quick: bool) -> Callable[[], dict]:
    """Transistor-level pipelined adder chain: the thousand-unknown
    headline of the sparse backend.

    The timed body solves the full chain (32 bits, 16 in quick mode)
    through the auto-selected sparse path, then walks a short
    dense-vs-sparse ladder over narrower chains so the report carries
    the wall-time crossover behind ``SPARSE_AUTO_THRESHOLD`` -- per
    width the meta records both backends' solve times and the unknown
    count, and ``crossover_width`` is the first width where sparse
    wins outright.
    """
    widths = (4, 8) if quick else (4, 8, 16)
    headline_width = 16 if quick else 32

    def case() -> dict:
        from ..stscl.adder import adder_chain_circuit
        design = _design()
        mask = (1 << headline_width) - 1
        a, b = 0xDEADBEEF & mask, 0x12345678 & mask

        circuit, _ = adder_chain_circuit(design, _VDD,
                                         width=headline_width,
                                         a=a, b=b, carry_in=True)
        t0 = time.perf_counter()
        result = operating_point(circuit)
        headline_s = time.perf_counter() - t0

        ladder = []
        crossover_width = None
        for width in widths:
            entry = {"width": width}
            for backend in ("dense", "sparse"):
                rung, _ = adder_chain_circuit(
                    design, _VDD, width=width,
                    a=0xDEADBEEF & ((1 << width) - 1),
                    b=0x12345678 & ((1 << width) - 1), carry_in=True)
                rung.matrix_backend = backend
                t0 = time.perf_counter()
                operating_point(rung)
                entry[f"{backend}_s"] = time.perf_counter() - t0
                entry["n_unknowns"] = rung.compile().size
            ladder.append(entry)
            if crossover_width is None \
                    and entry["sparse_s"] < entry["dense_s"]:
                crossover_width = width

        return {"width": headline_width,
                "iterations": result.iterations,
                "headline_s": headline_s,
                "dense_vs_sparse": ladder,
                "crossover_width": crossover_width,
                **_solver_meta(circuit)}
    return case


def _bench_sparse_batched_montecarlo(quick: bool) -> Callable[[], dict]:
    """Full-bank mismatch Monte-Carlo on the thousand-unknown adder,
    solved as one sparse stacked ensemble.

    Every seed perturbs the VT of *every* transistor in the hierarchy
    (the full device bank, not just top-level elements), and all lanes
    share one COLAMD symbolic factorization -- the campaign counters in
    the meta pin that down (``sparse_symbolic_factorizations == 1``).
    The per-seed speedup compares the whole campaign wall time (pilot
    included) against one cold serial sparse solve of the same spec.
    """
    width = 16 if quick else 32
    n_seeds = 4 if quick else 8

    def case() -> dict:
        from ..spice.batch import BatchedOpMetric, LaneSpec
        from ..stscl.adder import adder_chain_circuit
        design = _design()
        mask = (1 << width) - 1
        a, b = 0xDEADBEEF & mask, 0x12345678 & mask
        circuit, ports = adder_chain_circuit(design, _VDD, width=width,
                                             a=a, b=b, carry_in=True)
        expected = (a + b + 1) & mask

        def build():
            # One shared circuit: apply_lane's undo contract restores
            # it exactly, so reuse is results-neutral and keeps the
            # compile (and the symbolic factorization) per-campaign.
            return circuit

        def draw(seed, target):
            bank = target.compile().assembler._mos_bank
            rng = np.random.default_rng(seed)
            return LaneSpec.mismatch(
                rng.normal(0.0, 2e-3, bank.n_devices),
                label=f"seed-{seed}")

        def measure(result):
            total = 0
            for i in range(width):
                p, n = ports[f"s{i}"]
                if result.voltages[p] - result.voltages[n] > 0:
                    total |= 1 << i
            return {"sum": float(total)}

        spec = BatchedOpMetric(build=build, draw=draw, measure=measure)
        with telemetry.span("sparse-batched-campaign") as cspan:
            t0 = time.perf_counter()
            run = MonteCarlo(spec, n_runs=n_seeds,
                             backend="batched").run()
            batched_s = time.perf_counter() - t0
        counters = cspan.total_counters()
        t0 = time.perf_counter()
        spec(0)
        serial_s = time.perf_counter() - t0
        return {"width": width, "n_seeds": n_seeds,
                "sum_expected": expected, "sum_mean": run["sum"].mean,
                "n_failed": run.n_failed,
                "serial_seed_s": serial_s,
                "batched_per_seed_s": batched_s / n_seeds,
                "per_seed_speedup": serial_s * n_seeds / batched_s,
                "campaign_counters": {
                    key: counters.get(key, 0) for key in
                    ("sparse_symbolic_factorizations",
                     "sparse_numeric_refactorizations",
                     "jacobian_factorizations", "lu_reuses")},
                **_solver_meta(circuit)}
    return case


def _bench_shm_montecarlo(n_seeds: int) -> Callable[[], dict]:
    """Parallel Monte-Carlo over the shared-memory plan cache.

    The :meth:`~repro.spice.batch.BatchedOpMetric.plan` call inside the
    traced region is the *only* circuit compile of the whole fleet
    (``compile_cache_misses == 1`` in the case's trace counters); the
    published plan reaches the workers as one shared segment, so each
    task ships a token instead of the compiled circuit -- the
    ``payload_ratio`` meta records the per-task byte shrink, and the
    summaries are checked bit-identical against the serial loop over
    the same plan.
    """
    def case() -> dict:
        import pickle

        from ..analysis.parallel import PLAN_PREFIX, PlanToken
        from ..spice.batch import BatchedOpMetric
        spec = BatchedOpMetric(build=_batched_mc_build,
                               draw=_batched_mc_draw,
                               measure=_batched_mc_measure)
        plan = spec.plan()
        serial = MonteCarlo(plan, n_runs=n_seeds).run()
        parallel = MonteCarlo(plan, n_runs=n_seeds, n_workers=2).run()
        identical = bool(np.array_equal(serial["v_diff"].values,
                                        parallel["v_diff"].values))
        classic_task = len(pickle.dumps((plan, 0, False)))
        # A representative token (real names embed the parent pid).
        token = PlanToken(name=f"{PLAN_PREFIX}{os.getpid()}_0",
                          size=classic_task)
        shm_task = len(pickle.dumps((token, 0, False)))
        return {"n_seeds": n_seeds, "n_workers": 2,
                "v_diff_mean": parallel["v_diff"].mean,
                "bit_identical_to_serial": identical,
                "classic_task_bytes": classic_task,
                "shm_task_bytes": shm_task,
                "payload_ratio": classic_task / shm_task,
                **_solver_meta(plan.circuit)}
    return case


def _bench_scope_capture(quick: bool) -> Callable[[], dict]:
    """Triggered streaming capture on the buffer-chain testbench.

    Times the whole ``replace_dense`` path -- per-sample trigger
    evaluation, ring-buffer pre-history, windowed post-capture -- on
    top of the transient it instruments, and records how many committed
    samples the session saw versus stored (the O(window) bound).
    """
    n_stages = 2 if quick else 3

    def case() -> dict:
        from ..stscl.testbench import buffer_chain_capture
        session = buffer_chain_capture(_design(), _VDD,
                                       n_stages=n_stages)
        segment = session.segment()
        return {"n_stages": n_stages,
                "samples_seen": session.samples_seen,
                "samples_stored": session.samples_stored,
                "window": len(segment),
                "window_bytes": segment.nbytes}
    return case


def default_cases(quick: bool = False,
                  n_workers: int = 1) -> dict[str, Callable[[], dict]]:
    """Case name -> zero-argument callable returning its meta dict."""
    n_points = 11 if quick else 31
    n_seeds = 4 if quick else 8
    n_lanes = 8 if quick else 32
    n_stages = 2 if quick else 4
    n_frequencies = 61 if quick else 241
    return {
        "op_chain": _bench_op_chain,
        "dc_sweep": _bench_dc_sweep(n_points),
        "transient": _bench_transient,
        "transient_lte": _bench_transient_lte(n_stages),
        "ac_sweep": _bench_ac_sweep(n_frequencies),
        "montecarlo": _bench_montecarlo(n_seeds, n_workers),
        "batched_montecarlo": _bench_batched_montecarlo(n_lanes),
        "batched_sweep": _bench_batched_sweep(n_points),
        "sparse_adder_chain": _bench_sparse_adder_chain(quick),
        "sparse_batched_montecarlo": _bench_sparse_batched_montecarlo(quick),
        "shm_montecarlo": _bench_shm_montecarlo(n_seeds),
        "scope_capture": _bench_scope_capture(quick),
    }


def _traced_warmup(name: str, case: Callable[[], dict]) -> tuple[dict, dict]:
    """Run the untimed warmup under a private trace; returns
    (case meta, counter totals).  Timed repeats stay untraced, so the
    reported wall times measure the solver alone."""
    if telemetry.is_enabled():
        return case(), {}
    with telemetry.tracing(f"bench-{name}") as trace:
        meta = case()
    return meta, trace.total_counters()


def run_benchmarks(quick: bool = False, repeats: int | None = None,
                   n_workers: int = 1) -> list[BenchResult]:
    """Time every case; best-of-``repeats`` after one untimed warmup.

    The warmup run of each case is traced through :mod:`repro.telemetry`
    and its counter totals attached to the result, so the emitted
    report pairs every timing with the work the solver actually did.
    """
    if repeats is None:
        repeats = 1 if quick else 3
    results = []
    for name, case in default_cases(quick, n_workers).items():
        # Warmup: captures the case's meta detail plus trace counters.
        meta, counters = _traced_warmup(name, case)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            case()
            best = min(best, time.perf_counter() - t0)
        results.append(BenchResult(name=name, wall_s=best,
                                   repeats=repeats, meta=meta,
                                   trace_counters=counters))
    return results


def _blas_provenance() -> dict:
    """Which BLAS numpy linked against, best-effort.

    ``np.show_config`` has changed shape across numpy versions; a bench
    report must never fail over introspection, so any surprise
    degrades to ``{"name": "unknown"}``.
    """
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        return {"name": blas.get("name", "unknown"),
                "found": blas.get("found"),
                "version": blas.get("version")}
    except Exception:
        return {"name": "unknown"}


def runtime_provenance() -> dict:
    """Numerics-stack provenance attached to every report.

    Bench numbers are only comparable when numpy, its BLAS and the
    thread-pool pinning match; recording them turns "CI got slower"
    from archaeology into a diff.
    """
    return {
        "numpy": np.__version__,
        "blas": _blas_provenance(),
        "thread_env": {name: os.environ.get(name)
                       for name in THREAD_ENV_VARS},
        "cpu_count": os.cpu_count(),
    }


def write_report(results: list[BenchResult], path: str | Path,
                 quick: bool = False) -> Path:
    """Serialize ``results`` as schema-versioned JSON; returns the path."""
    path = Path(path)
    report = {
        "schema": BENCH_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                     time.gmtime()),
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runtime": runtime_provenance(),
        "results": {
            r.name: {"wall_s": r.wall_s, "repeats": r.repeats,
                     "meta": r.meta,
                     "trace_counters": r.trace_counters}
            for r in results
        },
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
