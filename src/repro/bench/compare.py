"""Bench-report regression gate.

``python -m repro bench --compare BENCH_perf.json`` times the suite
fresh and fails (exit 1) when any case shared with the committed
baseline got more than ``--max-ratio`` times slower.  CI runs this on
every push so a hot-path regression is caught by the bot, not by the
next person profiling.

The gate compares *per-case* wall times, not the total: a 10x
regression in one solver path must not hide behind a case that got
faster.  Cases present on only one side (added or retired benchmarks)
are reported but by default never fail the gate -- otherwise every new
benchmark would need a same-commit baseline refresh to go green.  CI,
however, passes ``--require-cases``: there, a case that the baseline
carries but the fresh run silently dropped (a bench that crashed out,
a case list that quietly shrank in quick mode) **fails** the gate --
a missing case is a missing regression check, which is itself a
regression.  New cases still pass either way.

Escape hatch: set ``REPRO_BENCH_ALLOW_REGRESSION=1`` (for instance in
a PR that knowingly trades speed for a fix) and the gate reports but
does not fail; refresh the committed baseline in the same PR.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..errors import AnalysisError
from .perf import BenchResult

#: Environment variable that downgrades a failing gate to a warning.
ALLOW_REGRESSION_ENV = "REPRO_BENCH_ALLOW_REGRESSION"


@dataclass(frozen=True)
class CaseComparison:
    """One case's fresh-vs-baseline verdict.

    Attributes:
        name: Case label.
        baseline_s: Committed wall time [s] (None: case is new).
        fresh_s: Just-measured wall time [s] (None: case was retired).
        ratio: fresh / baseline (None when either side is missing).
        regressed: True when ``ratio`` exceeded the gate's threshold.
        missing: True when the baseline carries the case but the fresh
            run did not produce it *and* the gate ran with
            ``require_cases`` -- a gate failure in its own right.
        under_floor: True when both sides ran faster than the gate's
            absolute wall-time floor, so the ratio was reported but not
            gated (sub-millisecond cases flip by integer factors on
            scheduler noise alone).
    """

    name: str
    baseline_s: float | None
    fresh_s: float | None
    ratio: float | None
    regressed: bool
    missing: bool = False
    under_floor: bool = False

    def describe(self) -> str:
        if self.baseline_s is None:
            return f"{self.name}: new case ({self.fresh_s * 1e3:.1f} ms)"
        if self.fresh_s is None:
            verdict = "MISSING from fresh run" if self.missing else "retired"
            return f"{self.name}: {verdict} (baseline " \
                   f"{self.baseline_s * 1e3:.1f} ms)"
        flag = "  REGRESSED" if self.regressed else ""
        if self.under_floor:
            flag = "  (under floor, ratio not gated)"
        return (f"{self.name}: {self.baseline_s * 1e3:8.1f} ms -> "
                f"{self.fresh_s * 1e3:8.1f} ms  (x{self.ratio:.2f}){flag}")


@dataclass(frozen=True)
class ComparisonReport:
    """The full gate verdict over a bench run."""

    cases: tuple[CaseComparison, ...]
    max_ratio: float

    @property
    def regressions(self) -> list[CaseComparison]:
        return [case for case in self.cases if case.regressed]

    @property
    def missing_cases(self) -> list[CaseComparison]:
        """Baseline cases the fresh run failed to produce (populated
        only under ``require_cases``)."""
        return [case for case in self.cases if case.missing]

    @property
    def passed(self) -> bool:
        return not self.regressions and not self.missing_cases

    def describe(self) -> str:
        lines = [case.describe() for case in self.cases]
        if self.passed:
            lines.append(f"gate passed (threshold x{self.max_ratio:g})")
        else:
            names = ", ".join(c.name for c in
                              self.regressions + self.missing_cases)
            lines.append(f"gate FAILED (threshold x{self.max_ratio:g}): "
                         f"{names}")
        return "\n".join(lines)


def load_baseline(path: str | Path) -> dict[str, float]:
    """Case name -> wall seconds from a committed report.

    Accepts every schema revision that carried per-case ``wall_s``
    (v1..v3); anything else is a corrupt baseline and a hard error.
    """
    path = Path(path)
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise AnalysisError(f"cannot read bench baseline {path}: {error}")
    schema = report.get("schema", "")
    if not str(schema).startswith("repro-bench-perf/"):
        raise AnalysisError(
            f"{path} is not a bench report (schema {schema!r})")
    try:
        return {name: float(entry["wall_s"])
                for name, entry in report["results"].items()}
    except (KeyError, TypeError, ValueError) as error:
        raise AnalysisError(
            f"malformed bench baseline {path}: {error}")


def compare_results(results: list[BenchResult],
                    baseline: dict[str, float],
                    max_ratio: float = 2.0,
                    require_cases: bool = False,
                    min_wall_s: float = 0.02) -> ComparisonReport:
    """Gate ``results`` against a committed baseline mapping.

    With ``require_cases`` set, every case the baseline carries must
    appear in the fresh run; a baseline-only case then fails the gate
    instead of being reported as benignly "retired".

    ``min_wall_s`` is an absolute floor under the ratio gate: when both
    the fresh and the baseline time are below it, the case's ratio is
    reported but cannot regress -- a 0.4 ms case that lands on 1.1 ms
    under scheduler noise is not a 2.7x solver regression.  A case
    either side of the floor is gated normally (genuinely crossing the
    floor is exactly the signal the gate exists for).  Set 0 to gate
    every case on ratio alone.
    """
    if max_ratio <= 1.0:
        raise AnalysisError(
            f"max_ratio must be > 1.0 (it is fresh/baseline): {max_ratio}")
    if min_wall_s < 0.0:
        raise AnalysisError(
            f"min_wall_s must be >= 0: {min_wall_s}")
    fresh = {result.name: result.wall_s for result in results}
    cases = []
    for name in sorted(set(fresh) | set(baseline)):
        fresh_s = fresh.get(name)
        baseline_s = baseline.get(name)
        ratio = None
        regressed = False
        under_floor = False
        if fresh_s is not None and baseline_s is not None:
            if baseline_s <= 0.0:
                raise AnalysisError(
                    f"baseline wall time for {name!r} is not positive: "
                    f"{baseline_s}")
            ratio = fresh_s / baseline_s
            under_floor = (fresh_s < min_wall_s
                           and baseline_s < min_wall_s)
            regressed = ratio > max_ratio and not under_floor
        missing = require_cases and fresh_s is None
        cases.append(CaseComparison(name=name, baseline_s=baseline_s,
                                    fresh_s=fresh_s, ratio=ratio,
                                    regressed=regressed, missing=missing,
                                    under_floor=under_floor))
    return ComparisonReport(cases=tuple(cases), max_ratio=max_ratio)


def regression_allowed() -> bool:
    """Whether the escape-hatch env var downgrades failures."""
    return os.environ.get(ALLOW_REGRESSION_ENV, "") not in ("", "0")
