"""Micro-benchmark harness for the simulation hot paths.

``python -m repro bench`` times the four workloads the engine is
optimised for -- operating-point solve, DC sweep, transient run and a
Monte-Carlo population on FAI-ADC-sized STSCL netlists -- and writes a
machine-readable ``BENCH_perf.json`` for trend tracking (CI uploads it
as an artifact on every push).
"""

from __future__ import annotations

from .compare import (
    ALLOW_REGRESSION_ENV,
    CaseComparison,
    ComparisonReport,
    compare_results,
    load_baseline,
)
from .perf import (
    BENCH_SCHEMA,
    BenchResult,
    default_cases,
    run_benchmarks,
    runtime_provenance,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "default_cases",
    "run_benchmarks",
    "runtime_provenance",
    "write_report",
    "ALLOW_REGRESSION_ENV",
    "CaseComparison",
    "ComparisonReport",
    "compare_results",
    "load_baseline",
]
