"""Greedy case shrinking: minimal circuits that still fail the same way.

A raw fuzz failure is a haystack -- a dozen random devices, of which
two matter.  The shrinker works on the *deck* representation
(:mod:`repro.spice.io`), the same serialization the corpus stores, so
"remove a device" is "drop a card" and the minimized case is corpus-
ready by construction: repeatedly try dropping each element card (and
each ``.nodeset`` hint) and keep the removal whenever the case still
reproduces the same failure class.

The failure class is ``(phase, status, leading detail token)`` of the
harness verdict -- coarse enough that shrinking survives cosmetic
message changes, fine enough that a case cannot drift from a transient
NaN violation to some unrelated compile error while shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..spice.io import read_netlist, write_netlist
from ..spice.netlist import Circuit
from .harness import FuzzBudgets, FuzzCaseResult, run_case

#: Hard cap on shrink evaluations; greedy passes usually need far
#: fewer, but a pathological case must not turn minimization into a
#: second fuzzing campaign.
MAX_EVALS = 200


@dataclass(frozen=True)
class FailureClass:
    """The shrink-invariant signature of a harness verdict."""

    status: str
    phase: str
    kind: str

    @classmethod
    def of(cls, result: FuzzCaseResult) -> "FailureClass":
        # First token of the detail is the exception type (harness
        # formats "<TypeName>: ..." / "foreign exception <TypeName>").
        token = result.detail.split(":", 1)[0].strip()
        return cls(status=result.status, phase=result.phase, kind=token)


def _deck_lines(deck: str) -> list[str]:
    return deck.splitlines()


def _is_droppable(line: str) -> bool:
    stripped = line.strip()
    if not stripped or stripped.startswith("*"):
        return False
    if stripped.lower().startswith((".temp", ".end")):
        return False
    return True  # element cards and .nodeset hints


def _evaluate(deck: str, budgets: FuzzBudgets,
              seed: int, mode: str) -> FailureClass | None:
    """Failure class of a deck, or None when it does not even parse."""
    try:
        circuit = read_netlist(deck)
    except ReproError:
        return None
    result = run_case(circuit, budgets, seed=seed, mode=mode)
    return FailureClass.of(result)


def shrink_case(circuit: Circuit, result: FuzzCaseResult,
                budgets: FuzzBudgets | None = None,
                max_evals: int = MAX_EVALS) -> tuple[str, int]:
    """Minimize ``circuit`` while ``result``'s failure class reproduces.

    Returns ``(minimal deck text, evaluations spent)``.  The original
    circuit is never mutated.  When the failure does not reproduce even
    unshrunk (a flaky wall-clock abort, say), the full deck is returned
    untouched -- a corpus entry is still better than a lost case.
    """
    budgets = budgets or FuzzBudgets()
    target = FailureClass.of(result)
    deck = write_netlist(circuit)
    evals = 1
    if _evaluate(deck, budgets, result.seed, result.mode) != target:
        return deck, evals

    lines = _deck_lines(deck)
    improved = True
    while improved and evals < max_evals:
        improved = False
        index = 0
        while index < len(lines) and evals < max_evals:
            if not _is_droppable(lines[index]):
                index += 1
                continue
            candidate = lines[:index] + lines[index + 1:]
            evals += 1
            if _evaluate("\n".join(candidate), budgets, result.seed,
                         result.mode) == target:
                lines = candidate        # keep the removal
                improved = True
            else:
                index += 1
    return "\n".join(lines) + "\n", evals
