"""Persisted regression corpus of minimized fuzz failures.

Every diagnosed-or-worse fuzz case that survives shrinking can be
serialized to a small JSON file and committed under ``tests/corpus/``.
From there two consumers replay it:

* the parametrized regression test in ``tests/unit/fuzz`` -- every
  committed entry must keep producing a *clean* verdict (``ok`` or
  ``diagnosed``, never ``violation``) on every future revision;
* ``python -m repro fuzz --replay-corpus`` -- the CI smoke job replays
  the corpus before fuzzing fresh seeds, so a regression on a known
  case fails fast and by name.

The deck text *is* the case: entries do not depend on the generator
staying bit-stable across revisions, only on the SPICE-ish dialect of
:mod:`repro.spice.io`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReproError
from ..spice.io import read_netlist
from .harness import FuzzBudgets, FuzzCaseResult, run_case

#: Bumped when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One minimized, replayable fuzz case."""

    name: str
    seed: int
    mode: str
    phase: str
    status: str
    detail: str
    deck: str
    note: str = ""

    @classmethod
    def from_result(cls, result: FuzzCaseResult, deck: str,
                    note: str = "") -> "CorpusEntry":
        return cls(name=result.circuit_name, seed=result.seed,
                   mode=result.mode, phase=result.phase,
                   status=result.status, detail=result.detail,
                   deck=deck, note=note)

    def to_json(self) -> str:
        payload = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "seed": self.seed,
            "mode": self.mode,
            "phase": self.phase,
            "status": self.status,
            "detail": self.detail,
            "note": self.note,
            "deck": self.deck.splitlines(),
        }
        return json.dumps(payload, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CorpusEntry":
        payload = json.loads(text)
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise ReproError(
                f"unsupported corpus schema {schema!r} "
                f"(this revision reads schema {SCHEMA_VERSION})")
        return cls(name=payload["name"], seed=int(payload["seed"]),
                   mode=payload["mode"], phase=payload["phase"],
                   status=payload["status"], detail=payload["detail"],
                   deck="\n".join(payload["deck"]) + "\n",
                   note=payload.get("note", ""))


def save_entry(entry: CorpusEntry, corpus_dir: str | Path) -> Path:
    """Write ``entry`` to ``corpus_dir`` and return the file path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    safe = "".join(ch if ch.isalnum() or ch in "-_" else "_"
                   for ch in entry.name)
    path = corpus_dir / f"{safe}.json"
    path.write_text(entry.to_json())
    return path


def load_corpus(corpus_dir: str | Path) -> list[tuple[Path, CorpusEntry]]:
    """All corpus entries under ``corpus_dir``, sorted by file name."""
    corpus_dir = Path(corpus_dir)
    entries = []
    for path in sorted(corpus_dir.glob("*.json")):
        entries.append((path, CorpusEntry.from_json(path.read_text())))
    return entries


def replay_entry(entry: CorpusEntry,
                 budgets: FuzzBudgets | None = None) -> FuzzCaseResult:
    """Re-run one corpus entry through the harness.

    The converge-or-diagnose invariant must hold for corpus cases just
    like fresh ones; a deck that no longer parses is itself a verdict
    (the dialect regressed), reported as a violation rather than an
    exception so CI output stays uniform.
    """
    budgets = budgets or FuzzBudgets()
    try:
        circuit = read_netlist(entry.deck)
    except ReproError as error:
        return FuzzCaseResult(
            seed=entry.seed, mode=entry.mode, circuit_name=entry.name,
            status="violation", phase="parse",
            detail=f"corpus deck no longer parses: {error}",
            wall_time=0.0)
    return run_case(circuit, budgets, seed=entry.seed, mode=entry.mode)
