"""Constrained-random analog netlist generation.

Two complementary circuit sources feed the fuzz harness:

* :func:`random_circuit` -- free-form constrained-random construction
  from MOS/R/C/diode pools over a fixed net convention (``vdd``/ground
  rails, a driven bias-net pool, a differential ``inp``/``inn`` input
  pair, anonymous internal nets).  The generator *guarantees* its
  output passes :func:`repro.spice.validate.structural_report`: after
  random assembly, a bounded repair pass anchors every sense-only net
  and rail-disconnected island with a resistor, so the solver is only
  ever exercised on structurally solvable systems -- the harness tests
  the solver, not the netlist checker.
* :func:`stscl_mutant` -- structured mutations of the paper's own
  STSCL generators (:mod:`repro.stscl.netlist_gen`): tail swaps, load
  rewires and stack-depth jitter keep part of the corpus *near* the
  design space the paper studies, where subtle bias pathologies live,
  instead of only far from it.

Everything is a pure function of ``(seed, config)`` via
``numpy.random.Generator`` -- the same seed always produces the same
circuit, which is what makes corpus entries and CI smoke runs
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..devices.diode import Diode, NWELL_DIODE_180
from ..devices.mosfet import Mosfet
from ..devices.parameters import nmos_180, pmos_180
from ..spice.netlist import Circuit
from ..spice.validate import structural_report, validate_structure

#: Generation modes understood by :func:`generate`.
MODES = ("random", "stscl", "mixed")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the constrained-random generator.

    Attributes:
        n_devices: Inclusive (min, max) random device count (the rails,
            IO and bias sources come on top).
        n_internal: Inclusive (min, max) internal net-pool size.
        n_bias: Inclusive (min, max) driven bias-net pool size.
        vdd_range: Supply voltage range [V]; subthreshold source-coupled
            design lives at the low end, so the default reaches down to
            ambitious supplies.
        max_repairs: Bound on the structural repair loop (each pass can
            anchor several nets; one pass normally suffices).
    """

    n_devices: tuple[int, int] = (4, 14)
    n_internal: tuple[int, int] = (2, 6)
    n_bias: tuple[int, int] = (1, 3)
    vdd_range: tuple[float, float] = (0.4, 1.8)
    max_repairs: int = 4


def _int_between(rng: np.random.Generator, lo_hi: tuple[int, int]) -> int:
    lo, hi = lo_hi
    return int(rng.integers(lo, hi + 1))


def _choice(rng: np.random.Generator, items):
    return items[int(rng.integers(0, len(items)))]


def _distinct_pair(rng: np.random.Generator, nets) -> tuple[str, str]:
    a = _choice(rng, nets)
    for _ in range(8):
        b = _choice(rng, nets)
        if b != a:
            return a, b
    return a, "0"


def _mos_geometry(rng: np.random.Generator) -> tuple[float, float]:
    w = float(_choice(rng, (0.4e-6, 1e-6, 2e-6, 4e-6)))
    l = float(_choice(rng, (0.18e-6, 0.5e-6, 1e-6)))
    return w, l


def repair_structure(circuit: Circuit, rng: np.random.Generator,
                     max_repairs: int = 4) -> Circuit:
    """Anchor every structural defect with a resistor until the netlist
    validates; raises if ``max_repairs`` passes do not suffice.

    Sense-only nets (a gate driven by nothing, a dangling capacitor
    plate) and rail-disconnected islands get a random-valued anchor
    resistor to ground -- the repair a designer would make, and one
    that keeps the circuit's random character instead of rejecting it.
    """
    for round_index in range(max_repairs):
        issues = structural_report(circuit)
        if not issues:
            return circuit
        for issue in issues:
            anchor_nets = issue.nets
            if issue.kind == "rail-disconnected":
                # One anchor grounds the whole island.
                anchor_nets = issue.nets[:1]
            for net in anchor_nets:
                value = float(10 ** rng.uniform(4.0, 6.5))
                circuit.add_resistor(
                    f"ranchor{round_index}_{net}", net, "0", value)
    validate_structure(circuit)  # raises with the surviving defects
    return circuit


def random_circuit(seed: int,
                   config: GeneratorConfig | None = None) -> Circuit:
    """One constrained-random source-coupled-flavoured netlist.

    Net convention: ``vdd`` and ground are always present and driven;
    ``vbias<k>`` nets are driven at random fractions of the supply
    (gate-bias pool); ``inp``/``inn`` form a driven differential input
    pair around midrail; ``n<k>`` are free internal nets.  NMOS bulks
    tie to ground and PMOS bulks to ``vdd`` (no random body chaos --
    that is a device-model question, not a solver one).
    """
    config = config or GeneratorConfig()
    rng = np.random.default_rng(seed)
    circuit = Circuit(f"fuzz_rand_{seed}")

    vdd = float(rng.uniform(*config.vdd_range))
    circuit.add_vsource("vvdd", "vdd", "0", vdd)
    bias_nets = []
    for k in range(_int_between(rng, config.n_bias)):
        net = f"vbias{k}"
        circuit.add_vsource(f"vb{k}", net, "0",
                            float(rng.uniform(0.1, 0.95)) * vdd)
        bias_nets.append(net)
    v_cm = 0.5 * vdd
    v_diff = float(rng.uniform(0.01, 0.2)) * vdd
    circuit.add_vsource("vinp", "inp", "0", v_cm + 0.5 * v_diff)
    circuit.add_vsource("vinn", "inn", "0", v_cm - 0.5 * v_diff)

    internal = [f"n{k}" for k in range(_int_between(rng, config.n_internal))]
    driven = ["vdd", "inp", "inn", *bias_nets]
    all_nets = [*driven, *internal, "0"]
    gate_nets = [*driven, *internal]

    nmos = Mosfet(nmos_180(), *_mos_geometry(rng))
    pmos = Mosfet(pmos_180(), *_mos_geometry(rng))

    for k in range(_int_between(rng, config.n_devices)):
        kind = rng.uniform()
        if kind < 0.30:                                    # NMOS
            drain, source = _distinct_pair(rng, all_nets)
            circuit.add_mosfet(f"mn{k}", drain, _choice(rng, gate_nets),
                               source, "0", nmos)
        elif kind < 0.50:                                  # PMOS
            drain, source = _distinct_pair(rng, all_nets)
            circuit.add_mosfet(f"mp{k}", drain, _choice(rng, gate_nets),
                               source, "vdd", pmos)
        elif kind < 0.75:                                  # resistor
            a, b = _distinct_pair(rng, all_nets)
            circuit.add_resistor(f"r{k}", a, b,
                                 float(10 ** rng.uniform(3.0, 7.0)))
        elif kind < 0.90:                                  # capacitor
            a, b = _distinct_pair(rng, all_nets)
            circuit.add_capacitor(f"c{k}", a, b,
                                  float(10 ** rng.uniform(-15.0, -11.0)))
        else:                                              # diode
            a, b = _distinct_pair(rng, all_nets)
            circuit.add_diode(f"d{k}", a, b, Diode(NWELL_DIODE_180))

    repair_structure(circuit, rng, config.max_repairs)
    # A few nodeset hints, like a designer would leave: only on nets
    # the circuit actually uses (a stray nodeset is a *defect* the
    # validator flags, and deliberately planting one here would make
    # every case fail at compile instead of exercising the solver).
    used = set(circuit.node_names)
    for net in internal:
        if net in used and rng.uniform() < 0.3:
            circuit.nodeset(net, float(rng.uniform(0.0, vdd)))
    return circuit


# -- STSCL-biased mutations ----------------------------------------------


def _stscl_base(seed: int, rng: np.random.Generator) -> Circuit:
    """One of the paper's generator outputs, with jittered parameters.

    Stack-depth jitter lives here: buffer chains draw a random stage
    count and trees a random input count, so the mutant pool spans the
    1..3-level series-gating depths of the paper's Fig. 8 cells.
    """
    from ..stscl import (StsclGateDesign, replica_bias_circuit,
                         stscl_buffer_chain_circuit,
                         stscl_inverter_circuit, stscl_majority_circuit,
                         stscl_tree_circuit)

    design = StsclGateDesign(
        i_ss=float(10 ** rng.uniform(-9.0, -6.0)),
        v_sw=float(rng.uniform(0.15, 0.4)))
    vdd = float(rng.uniform(0.5, 1.2))
    kind = int(rng.integers(0, 5))
    if kind == 0:
        circuit, _ = stscl_inverter_circuit(design, vdd)
    elif kind == 1:
        circuit, _ = stscl_buffer_chain_circuit(
            design, vdd, n_stages=int(rng.integers(1, 5)),
            in_p=vdd, in_n=vdd - design.v_sw)
    elif kind == 2:
        n_inputs = int(rng.integers(1, 4))
        table = rng.uniform(size=2 ** n_inputs) < 0.5
        values = [(vdd, vdd - design.v_sw) if rng.uniform() < 0.5
                  else (vdd - design.v_sw, vdd)
                  for _ in range(n_inputs)]

        def function(assignment,
                     table=tuple(bool(b) for b in table)) -> bool:
            index = sum(bit << k for k, bit in enumerate(assignment))
            return table[index]

        circuit, _ = stscl_tree_circuit(design, vdd, function, values)
    elif kind == 3:
        values = tuple(bool(b) for b in rng.uniform(size=3) < 0.5)
        circuit, _ = stscl_majority_circuit(design, vdd, values)
    else:
        circuit, _ = replica_bias_circuit(design, vdd)
    circuit.name = f"fuzz_stscl_{seed}"
    return circuit


def rewire(circuit: Circuit, element_name: str, terminal: int,
           net: str) -> None:
    """Move one terminal of ``element_name`` onto ``net``.

    The structural mutation primitive of the STSCL mutator: updates the
    element's node tuple, registers the (possibly new) net and drops
    the cached compilation so the next compile rebinds indices.
    """
    element = circuit.element(element_name)
    nodes = list(element.nodes)
    nodes[terminal] = net
    element.nodes = tuple(nodes)
    circuit._touch_node(net)
    circuit.invalidate()


def stscl_mutant(seed: int,
                 config: GeneratorConfig | None = None) -> Circuit:
    """A structurally mutated STSCL circuit (tail swaps, load rewires).

    Mutations deliberately mis-wire the gate the way a bad netlist
    generator or a botched layout edit would -- while the repair pass
    keeps the result structurally solvable, so every mutant still
    exercises the solver rather than the compile-time validator.
    """
    config = config or GeneratorConfig()
    rng = np.random.default_rng(seed)
    circuit = _stscl_base(seed, rng)

    mos_names = [e.name for e in circuit.mos_elements()]
    tail_sources = [e.name for e in circuit.elements
                    if e.name.startswith("i")]
    nets = circuit.node_names
    for _ in range(int(rng.integers(0, 3))):
        op = rng.uniform()
        if op < 0.4 and tail_sources:
            # Tail swap: move a tail sink onto another net (a classic
            # generator bug -- two gates sharing one tail).
            rewire(circuit, _choice(rng, tail_sources), 0,
                   _choice(rng, nets))
        elif op < 0.8 and mos_names:
            # Load/pair rewire: reconnect a random MOS drain or source.
            name = _choice(rng, mos_names)
            terminal = 0 if rng.uniform() < 0.5 else 2
            rewire(circuit, name, terminal, _choice(rng, nets))
        elif mos_names:
            # Gate rewire: sense another net (stays valid by itself).
            rewire(circuit, _choice(rng, mos_names), 1,
                   _choice(rng, nets))

    repair_structure(circuit, rng, config.max_repairs)
    return circuit


def generate(seed: int, mode: str = "mixed",
             config: GeneratorConfig | None = None) -> Circuit:
    """The circuit of ``seed`` under ``mode``.

    ``"mixed"`` alternates deterministically: even seeds draw from the
    free random generator, odd seeds from the STSCL mutation pool.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if mode == "random" or (mode == "mixed" and seed % 2 == 0):
        return random_circuit(seed, config)
    return stscl_mutant(seed, config)
