"""Circuit-space fuzzing: generator, converge-or-diagnose harness,
shrinker and regression corpus.

Entry point: ``python -m repro fuzz`` (see :mod:`repro.__main__`), or
programmatically::

    from repro.fuzz import run_campaign
    report = run_campaign(300, seed=0, mode="mixed")
    assert not report.violations, report.describe()
"""

from .corpus import (CorpusEntry, load_corpus, replay_entry, save_entry)
from .generator import (MODES, GeneratorConfig, generate, random_circuit,
                        repair_structure, rewire, stscl_mutant)
from .harness import (HANG_GRACE, PHASES, FuzzBudgets, FuzzCaseResult,
                      FuzzReport, InvariantViolation, characterize_survivor,
                      run_campaign, run_case)
from .shrink import FailureClass, shrink_case

__all__ = [
    "MODES",
    "PHASES",
    "HANG_GRACE",
    "GeneratorConfig",
    "generate",
    "random_circuit",
    "stscl_mutant",
    "repair_structure",
    "rewire",
    "FuzzBudgets",
    "FuzzCaseResult",
    "FuzzReport",
    "InvariantViolation",
    "run_case",
    "run_campaign",
    "characterize_survivor",
    "FailureClass",
    "shrink_case",
    "CorpusEntry",
    "save_entry",
    "load_corpus",
    "replay_entry",
]
