"""The converge-or-diagnose fuzz harness.

Every generated circuit is driven through the full analysis gauntlet --
``op -> dc_sweep -> short transient -> batched transient -> fault
campaign`` -- under hard per-phase iteration and wall-clock budgets.
The invariant under test:

    Every circuit either converges or raises a
    :class:`~repro.errors.ReproError` subclass carrying its forensic
    payload.  Never a hang, never a raw ``numpy.linalg.LinAlgError``,
    never an unexplained NaN in a converged result, never a Python
    crash.

Outcomes are classified per case:

* ``"ok"`` -- every phase converged with finite results;
* ``"diagnosed"`` -- some phase failed *cleanly* (a ``ReproError``
  subclass with diagnostics attached where the contract promises
  them).  This is a *passing* outcome: hard circuits are supposed to
  fail with forensics;
* ``"violation"`` -- the invariant broke: a foreign exception type, a
  NaN in converged results, a convergence error with no diagnostics,
  or a phase overrunning its wall-clock budget by more than the grace
  factor (the hang proxy).

Survivors additionally feed a seeded characterization smoke across
supply x threshold corners (:func:`characterize_survivor`), mirroring
how a production flow would immediately stress every new topology.

Telemetry: under an active trace the campaign increments
``fuzz_circuits``, ``fuzz_clean_failures`` and
``fuzz_invariant_violations`` on the campaign span -- the counters the
CI smoke job asserts on.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass, field

import numpy as np

from .. import telemetry
from ..errors import ConvergenceError, ReproError
from ..spice.dc import NewtonOptions, dc_sweep, operating_point
from ..spice.elements import MosElement, Resistor, VoltageSource
from ..spice.netlist import Circuit
from ..spice.transient import TransientOptions, transient
from .generator import GeneratorConfig, generate

#: Phase names, in gauntlet order.
PHASES = ("op", "dc_sweep", "transient", "batched_transient", "faults",
          "characterize")

#: A phase exceeding ``budget * HANG_GRACE`` wall-clock is a violation
#: even if it eventually returned: the deadline plumbing failed.
HANG_GRACE = 10.0


@dataclass(frozen=True)
class FuzzBudgets:
    """Per-phase hard budgets.

    Attributes:
        max_iterations: Newton iteration cap per solve.
        op_wall / sweep_wall / tran_wall / fault_wall: Wall-clock
            budget [s] per phase.
        sweep_points: DC sweep length.
        t_stop: Transient horizon [s].
        max_rejections: Transient step-rejection budget.
    """

    max_iterations: int = 80
    op_wall: float = 5.0
    sweep_wall: float = 10.0
    tran_wall: float = 10.0
    fault_wall: float = 10.0
    sweep_points: int = 5
    t_stop: float = 2.0e-7
    max_rejections: int = 200

    def newton(self, wall: float) -> NewtonOptions:
        return NewtonOptions(max_iterations=self.max_iterations,
                             max_wall_time=wall)


@dataclass
class FuzzCaseResult:
    """Outcome of one fuzz case.

    ``status`` is ``"ok"`` / ``"diagnosed"`` / ``"violation"``;
    ``phase`` names where the gauntlet ended (``"all"`` for clean
    passes) and ``detail`` the failure one-liner.
    """

    seed: int
    mode: str
    circuit_name: str
    status: str
    phase: str = "all"
    detail: str = ""
    wall_time: float = 0.0


@dataclass
class FuzzReport:
    """Aggregate of one fuzz campaign."""

    cases: list[FuzzCaseResult] = field(default_factory=list)

    @property
    def n_ok(self) -> int:
        return sum(1 for c in self.cases if c.status == "ok")

    @property
    def n_diagnosed(self) -> int:
        return sum(1 for c in self.cases if c.status == "diagnosed")

    @property
    def violations(self) -> list[FuzzCaseResult]:
        return [c for c in self.cases if c.status == "violation"]

    def describe(self) -> str:
        lines = [f"{len(self.cases)} circuits: {self.n_ok} converged, "
                 f"{self.n_diagnosed} failed with diagnostics, "
                 f"{len(self.violations)} invariant violations"]
        for case in self.violations:
            lines.append(f"  VIOLATION seed={case.seed} "
                         f"{case.circuit_name} [{case.phase}]: "
                         f"{case.detail}")
        return "\n".join(lines)


class InvariantViolation(Exception):
    """Internal marker: the converge-or-diagnose contract broke.

    Deliberately NOT a :class:`ReproError` -- the harness must treat
    its own verdicts and genuine foreign exceptions identically.
    """


def _check_finite(values, where: str) -> None:
    array = np.asarray(list(values), dtype=float)
    if array.size and not np.all(np.isfinite(array)):
        raise InvariantViolation(
            f"non-finite value in converged results ({where})")


def _first_source(circuit: Circuit) -> VoltageSource | None:
    for element in circuit.elements:
        if isinstance(element, VoltageSource):
            return element
    return None


def _phase_op(circuit: Circuit, budgets: FuzzBudgets) -> None:
    result = operating_point(circuit, budgets.newton(budgets.op_wall))
    if result.converged:
        _check_finite(result.voltages.values(), "operating point")


def _phase_dc_sweep(circuit: Circuit, budgets: FuzzBudgets) -> None:
    source = _first_source(circuit)
    if source is None:
        return
    center = float(source.waveform(0.0))
    span = max(abs(center) * 0.1, 0.05)
    values = np.linspace(center - span, center + span,
                         budgets.sweep_points)
    # The whole sweep shares one wall budget: an absolute deadline is
    # threaded through every point's ladder.
    options = NewtonOptions(
        max_iterations=budgets.max_iterations,
        deadline=_time.perf_counter() + budgets.sweep_wall)
    result = dc_sweep(circuit, source.name, values, options=options,
                      on_error="raise")
    for point in result.points:
        if point.converged:
            _check_finite(point.voltages.values(), "dc_sweep point")


def _phase_transient(circuit: Circuit, budgets: FuzzBudgets) -> None:
    result = transient(
        circuit, budgets.t_stop,
        TransientOptions(newton=NewtonOptions(
                             max_iterations=budgets.max_iterations),
                         max_rejections=budgets.max_rejections,
                         max_wall_time=budgets.tran_wall))
    for name, wave in result.voltages.items():
        _check_finite(wave, f"transient waveform {name}")


def _phase_batched_transient(circuit: Circuit,
                             budgets: FuzzBudgets) -> None:
    """Three perturbed twins of the case integrate in lockstep.

    Exercises the batched transient engine's own converge-or-diagnose
    contract: lanes that leave the shared grid must surface as recorded
    clean failures (never a hang -- the wall budget threads into the
    stacked Newton loop and the serial fallbacks alike), and every lane
    that does converge must return finite waveforms.  Circuits the
    batched assembler rejects (foreign or controlled-source elements)
    skip the phase; the serial transient phase already covered them.
    """
    from ..errors import AnalysisError
    from ..spice.batch import LaneSpec, batch_transient

    n_mos = len(circuit.mos_elements())
    lanes = [LaneSpec(label="nominal")]
    for shift in (-0.01, 0.01):
        lanes.append(LaneSpec(
            vt_delta=(np.full(n_mos, shift) if n_mos else None),
            label=f"vt{shift:+g}"))
    options = TransientOptions(
        newton=NewtonOptions(max_iterations=budgets.max_iterations),
        max_rejections=budgets.max_rejections,
        max_wall_time=budgets.tran_wall)
    try:
        batch = batch_transient(circuit, lanes, budgets.t_stop, options,
                                on_error="skip")
    except AnalysisError:
        return
    for result in batch.results:
        if result is None:  # a recorded clean per-lane failure
            continue
        for name, wave in result.voltages.items():
            _check_finite(wave, f"batched transient waveform {name}")


def _fault_metric(circuit: Circuit, options: NewtonOptions) -> dict:
    """Campaign metric: solve the faulted twin's operating point."""
    result = operating_point(circuit, options)
    voltages = list(result.voltages.values())
    return {"v_max_abs": max((abs(v) for v in voltages), default=0.0)}


def _phase_faults(circuit: Circuit, budgets: FuzzBudgets) -> None:
    """A small fault campaign over the case's own devices.

    Faults target the first MOS (VT outlier) and the first resistor
    (drift); circuits with neither skip the phase.  The campaign's
    ``build`` re-derives a fresh twin from the deck, so faulted runs
    never mutate the case under test.
    """
    from ..faults.campaign import FaultCampaign
    from ..faults.models import ResistorDrift, VtOutlier
    from ..spice.io import read_netlist, write_netlist

    # The campaign rebuilds its target from the deck (fresh twin per
    # fault, the case under test never mutates) -- and the deck
    # round-trip renames elements (cards keep their SPICE designator),
    # so faults target the *rebuilt* names.
    deck = write_netlist(circuit)
    twin = read_netlist(deck)
    faults = []
    mos = next((e for e in twin.elements
                if isinstance(e, MosElement)), None)
    if mos is not None:
        faults.append(VtOutlier(mos.name, shift=0.1))
    resistor = next((e for e in twin.elements
                     if isinstance(e, Resistor)), None)
    if resistor is not None:
        faults.append(ResistorDrift(resistor.name, factor=10.0))
    if not faults:
        return
    options = budgets.newton(budgets.fault_wall)
    report = FaultCampaign(
        build=lambda: read_netlist(deck),
        metric_fn=lambda twin: _fault_metric(twin, options),
        faults=faults).run()
    _check_finite(report.baseline.values(), "fault baseline")
    for outcome in report.outcomes:
        if outcome.error is None:
            _check_finite(outcome.metrics.values(),
                          f"fault {outcome.fault}")


def characterize_survivor(circuit: Circuit,
                          budgets: FuzzBudgets) -> None:
    """Corners x supply smoke for a circuit that passed the gauntlet.

    Two supply corners x two global-VT corners solved as one batched
    ensemble (falling back to serial solves for circuits the batched
    assembler rejects -- controlled-source elements, say).  The same
    converge-or-diagnose invariant applies: every corner either
    converges with finite voltages or is a recorded clean failure.
    """
    from ..errors import AnalysisError
    from ..spice.batch import LaneSpec, apply_lane, batch_operating_point

    supply = _first_source(circuit)
    if supply is None:
        return
    nominal = float(supply.waveform(0.0))
    n_mos = len(circuit.mos_elements())
    lanes = []
    for supply_scale in (0.95, 1.05):
        for vt_shift in (-0.02, 0.02):
            lanes.append(LaneSpec(
                vt_delta=(np.full(n_mos, vt_shift) if n_mos else None),
                source_values=((supply.name, nominal * supply_scale),),
                label=f"vdd{supply_scale:g}/vt{vt_shift:+g}"))
    options = budgets.newton(budgets.op_wall)
    try:
        batch = batch_operating_point(circuit, lanes, options=options,
                                      on_error="skip")
        points = batch.points
    except AnalysisError:
        # Foreign/controlled elements: same corners, serial ladder.
        points = []
        for lane in lanes:
            undo = apply_lane(circuit, lane)
            try:
                points.append(operating_point(circuit, options))
            except ConvergenceError:
                points.append(None)
            finally:
                undo()
    for point in points:
        if point is not None and point.converged:
            _check_finite(point.voltages.values(), "characterization")


_PHASE_FUNCS = {
    "op": _phase_op,
    "dc_sweep": _phase_dc_sweep,
    "transient": _phase_transient,
    "batched_transient": _phase_batched_transient,
    "faults": _phase_faults,
    "characterize": characterize_survivor,
}


def run_case(circuit: Circuit, budgets: FuzzBudgets | None = None,
             seed: int = 0, mode: str = "manual") -> FuzzCaseResult:
    """Drive one circuit through the gauntlet; classify the outcome.

    Never raises: every exception -- expected or foreign -- is folded
    into the returned :class:`FuzzCaseResult`.
    """
    budgets = budgets or FuzzBudgets()
    start = _time.perf_counter()
    wall_limits = {"op": budgets.op_wall, "dc_sweep": budgets.sweep_wall,
                   "transient": budgets.tran_wall,
                   "batched_transient": budgets.tran_wall,
                   "faults": budgets.fault_wall,
                   "characterize": budgets.op_wall}

    def finish(status: str, phase: str, detail: str) -> FuzzCaseResult:
        return FuzzCaseResult(
            seed=seed, mode=mode, circuit_name=circuit.name,
            status=status, phase=phase, detail=detail,
            wall_time=_time.perf_counter() - start)

    for phase in PHASES:
        phase_start = _time.perf_counter()
        try:
            # Degenerate circuits legitimately walk the solver through
            # overflow territory; the invariant is about *results*, so
            # intermediate FP warnings must not escalate into errors
            # under stricter caller configurations.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                _PHASE_FUNCS[phase](circuit, budgets)
        except InvariantViolation as violation:
            return finish("violation", phase, str(violation))
        except ConvergenceError as error:
            if error.diagnostics is None and phase != "characterize":
                return finish(
                    "violation", phase,
                    f"ConvergenceError without diagnostics: {error}")
            return finish("diagnosed", phase,
                          f"{type(error).__name__}: {error}")
        except ReproError as error:
            return finish("diagnosed", phase,
                          f"{type(error).__name__}: {error}")
        except Exception as error:  # noqa: BLE001 -- the invariant
            return finish(
                "violation", phase,
                f"foreign exception {type(error).__name__}: {error}")
        spent = _time.perf_counter() - phase_start
        if spent > wall_limits[phase] * HANG_GRACE:
            return finish(
                "violation", phase,
                f"phase overran its {wall_limits[phase]:g}s budget "
                f"({spent:.1f}s spent): deadline plumbing failed")
    return finish("ok", "all", "")


def run_campaign(n_circuits: int, seed: int = 0, mode: str = "mixed",
                 budgets: FuzzBudgets | None = None,
                 config: GeneratorConfig | None = None,
                 on_case=None) -> FuzzReport:
    """Generate and gauntlet ``n_circuits`` cases from ``seed``.

    ``on_case(result, circuit)`` is called after each case (corpus
    capture, progress printing).  Generation itself is also under the
    invariant: a generator crash is a violation, not a harness crash.
    """
    budgets = budgets or FuzzBudgets()
    report = FuzzReport()
    with telemetry.span("fuzz-campaign", n_circuits=n_circuits,
                        seed=seed, mode=mode) as tspan:
        for k in range(n_circuits):
            case_seed = seed + k
            try:
                circuit = generate(case_seed, mode, config)
            except Exception as error:  # noqa: BLE001
                result = FuzzCaseResult(
                    seed=case_seed, mode=mode, circuit_name="<generator>",
                    status="violation", phase="generate",
                    detail=f"{type(error).__name__}: {error}")
                circuit = None
            else:
                result = run_case(circuit, budgets, seed=case_seed,
                                  mode=mode)
            report.cases.append(result)
            tspan.inc("fuzz_circuits")
            if result.status == "diagnosed":
                tspan.inc("fuzz_clean_failures")
            elif result.status == "violation":
                tspan.inc("fuzz_invariant_violations")
                tspan.event("fuzz-violation", seed=case_seed,
                            phase=result.phase, detail=result.detail)
            if on_case is not None:
                on_case(result, circuit)
        tspan.annotate(n_ok=report.n_ok, n_diagnosed=report.n_diagnosed,
                       n_violations=len(report.violations))
    return report
