"""Physical constants used throughout the library.

All values are SI.  The thermal voltage helper is the single place the
k*T/q computation lives; every model that needs U_T goes through it so a
temperature change propagates consistently.
"""

from __future__ import annotations

import math

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Absolute zero offset: 0 degC in kelvin.
ZERO_CELSIUS = 273.15

#: Reference temperature for model parameters [K] (27 degC, SPICE default).
T_NOMINAL = ZERO_CELSIUS + 27.0

#: Permittivity of free space [F/m].
EPSILON_0 = 8.8541878128e-12

#: Relative permittivity of SiO2.
EPSILON_SIO2 = 3.9

#: Relative permittivity of silicon.
EPSILON_SI = 11.7

#: ln(2), used in the STSCL delay/power expressions of the paper (Eq. 1).
LN2 = math.log(2.0)


def thermal_voltage(temperature: float = T_NOMINAL) -> float:
    """Return the thermal voltage U_T = k*T/q [V] at ``temperature`` [K].

    >>> round(thermal_voltage(300.15), 6)
    0.025865
    """
    if temperature <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature} K")
    return BOLTZMANN * temperature / ELEMENTARY_CHARGE


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from Celsius to kelvin."""
    kelvin = temp_c + ZERO_CELSIUS
    if kelvin <= 0.0:
        raise ValueError(f"{temp_c} degC is at or below absolute zero")
    return kelvin


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to Celsius."""
    return temp_k - ZERO_CELSIUS
