"""Thermal-noise budget of source-coupled stages.

The ADC's dynamic performance (ENOB 6.5 vs the 7.9 quantisation limit)
is set by the noise of the nW-level analog chain.  This module derives
that budget from first principles so the converter's aggregate
``noise_rms`` calibration can be sanity-checked against physics rather
than being a free parameter:

* an SCL stage's output noise is the kT/C of its load, multiplied by
  the usual excess factor from the pair's channel noise amplified over
  the same bandwidth;
* referring to the input divides by the stage gain;
* the folding chain adds the folder, interpolator and comparator
  stages in RSS (independent devices).

The library-level check lives in
``tests/unit/analysis/test_noise.py``; the headline is that a
1 nA-class chain lands at ~1 mV rms input-referred -- the right order
for the fitted 1.5 mV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import BOLTZMANN, T_NOMINAL, thermal_voltage
from ..errors import ModelError

#: Long-channel thermal-noise factor of a MOS device in weak inversion
#: (gamma = n/2 from the EKV noise model; we keep the classic symbol).
GAMMA_WEAK_INVERSION = 0.65


@dataclass(frozen=True)
class StageNoise:
    """Noise summary of one source-coupled stage.

    Attributes:
        output_rms: Output-referred rms noise [V].
        input_rms: Input-referred rms noise [V].
        gain: Small-signal gain used for the referral.
        ktc_rms: The bare kT/C floor of the load [V].
        excess_factor: output variance / kT-C variance.
    """

    output_rms: float
    input_rms: float
    gain: float
    ktc_rms: float
    excess_factor: float


def scl_stage_noise(i_bias: float, v_sw: float, c_load: float,
                    n: float = 1.3,
                    temperature: float = T_NOMINAL) -> StageNoise:
    """Thermal noise of one SCL gain stage (gate or pre-amplifier).

    The load resistor R_L = V_SW/I contributes 4kT R_L over the output
    bandwidth 1/(4 R_L C_L) -> exactly kT/C.  Each pair transistor
    contributes 4kT gamma/gm amplified by gm^2 R_L^2 over the same
    bandwidth -> kT/C * 2 gamma gm R_L (two devices, but each sees half
    the band in the differential path; we keep the conservative factor
    2).  Total:

        v_out,n^2 = (kT/C) * (1 + 2 gamma * gm R_L)

    with gm R_L = V_SW / (2 n U_T), the supply- and current-independent
    stage gain -- so the *noise* is also bias-independent, another face
    of the paper's decoupling.
    """
    if min(i_bias, v_sw, c_load) <= 0.0:
        raise ModelError("i_bias, v_sw and c_load must be positive")
    ut = thermal_voltage(temperature)
    gain = v_sw / (2.0 * n * ut)
    ktc = BOLTZMANN * temperature / c_load
    excess = 1.0 + 2.0 * GAMMA_WEAK_INVERSION * gain
    variance = ktc * excess
    output_rms = math.sqrt(variance)
    return StageNoise(output_rms=output_rms,
                      input_rms=output_rms / gain,
                      gain=gain,
                      ktc_rms=math.sqrt(ktc),
                      excess_factor=excess)


def chain_input_noise(stages: list[StageNoise]) -> float:
    """Input-referred rms noise of a cascade [V].

    Stage k's input noise is divided by the gain of everything before
    it (Friis): the first stage dominates a well-designed chain.
    """
    if not stages:
        raise ModelError("need at least one stage")
    total_variance = 0.0
    running_gain = 1.0
    for stage in stages:
        total_variance += (stage.input_rms / running_gain) ** 2
        running_gain *= stage.gain
    return math.sqrt(total_variance)


def adc_noise_budget(i_unit: float = 26e-9, v_sw: float = 0.2,
                     c_signal: float = 50e-15,
                     comparator_stages: int = 2,
                     temperature: float = T_NOMINAL) -> dict[str, float]:
    """First-principles input-referred noise of the FAI fine chain [V].

    Chain: folder (a gain-~3 SCL stage driving the interpolation
    node), then ``comparator_stages`` pre-amplifier stages ahead of the
    regenerative latch.  kT/C of the track/hold adds in RSS.

    Returns a breakdown dict with the total under ``"total"``.
    """
    folder = scl_stage_noise(i_unit, v_sw, c_signal,
                             temperature=temperature)
    preamps = [scl_stage_noise(i_unit, v_sw, c_signal,
                               temperature=temperature)
               for _k in range(comparator_stages)]
    chain = chain_input_noise([folder] + preamps)
    sample_ktc = math.sqrt(BOLTZMANN * temperature / 200e-15)
    total = math.hypot(chain, sample_ktc)
    return {
        "folder_input_rms": folder.input_rms,
        "chain_input_rms": chain,
        "sample_ktc_rms": sample_ktc,
        "total": total,
    }
