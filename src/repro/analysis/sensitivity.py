"""Normalised finite-difference sensitivities.

S = (dM/M) / (dP/P): the percent change of a metric per percent change
of a parameter.  The Fig. 3 contrast is exactly a sensitivity table:
STSCL delay vs V_DD ~ 0, subthreshold CMOS delay vs V_DD ~ -V_DD/(nU_T).
"""

from __future__ import annotations

from typing import Callable

from ..errors import AnalysisError


def finite_difference_sensitivity(metric_fn: Callable[[float], float],
                                  parameter_value: float,
                                  relative_step: float = 0.01) -> float:
    """Normalised sensitivity of ``metric_fn`` at ``parameter_value``.

    Central differences with a relative step; raises on a zero metric
    (the normalisation would be meaningless).
    """
    if parameter_value == 0.0:
        raise AnalysisError("cannot normalise around a zero parameter")
    if not 0.0 < relative_step < 0.5:
        raise AnalysisError(
            f"relative_step must be in (0, 0.5): {relative_step}")
    delta = parameter_value * relative_step
    up = metric_fn(parameter_value + delta)
    down = metric_fn(parameter_value - delta)
    centre = metric_fn(parameter_value)
    if centre == 0.0:
        raise AnalysisError("metric is zero at the evaluation point")
    derivative = (up - down) / (2.0 * delta)
    return derivative * parameter_value / centre
