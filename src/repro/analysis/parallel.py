"""Deterministic process-pool fan-out for embarrassingly parallel runs.

Monte-Carlo populations and fault campaigns evaluate independent
(seed / fault) work items, so they parallelise trivially -- but the
*results* must be indistinguishable from the serial loop: same values,
same failure records, same ordering, same exceptions.  The helpers here
guarantee that by

* submitting work items in their canonical order and collecting the
  futures in that same submission order (never completion order), and
* shipping library errors back as *data* -- workers catch
  :class:`~repro.errors.ReproError` and return the exception object, so
  the parent loop applies exactly the same ``on_error`` policy it would
  apply serially.

Workers run in separate processes, so everything shipped to them must
pickle.  :func:`ensure_picklable` turns the obscure mid-pool pickling
failure into an actionable error before any process is spawned (the
usual culprit: a lambda or closure metric function -- use a
module-level function with ``functools.partial`` instead).

The **shared-memory plan cache** (:func:`publish_plan` /
:func:`fetch_plan`) removes the dominant per-task payload: instead of
re-pickling the full work plan -- compiled constant stamps, gather
indices, device-bank parameter arrays -- into *every* task tuple, the
parent publishes the pickled plan once as a read-only
``multiprocessing.shared_memory`` segment and tasks carry only a tiny
:class:`PlanToken` (name + byte count) plus per-seed deltas.  Each
worker attaches by name on first use and caches the deserialized plan
for the rest of its life (``shm_plan_misses`` counts first attaches,
``shm_plan_hits`` the reuses).  The parent owns the segment: it unlinks
it as soon as the pool drains, with a module ``atexit`` sweep as the
crash safety net, so no ``/dev/shm`` segments outlive the campaign.
When the platform offers no shared memory the publish step simply
returns None and callers fall back to classic per-task pickling --
same results, fatter payloads.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .. import telemetry
from ..errors import AnalysisError

try:  # pragma: no cover - stdlib, absent only on exotic builds
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _resource_tracker = _shared_memory = None


def ensure_picklable(obj: Any, role: str) -> None:
    """Raise an actionable :class:`AnalysisError` when ``obj`` cannot be
    shipped to worker processes."""
    try:
        pickle.dumps(obj)
    except Exception as error:
        raise AnalysisError(
            f"{role} cannot be sent to worker processes ({error}); "
            f"parallel execution pickles its work items -- use a "
            f"module-level function (functools.partial is fine) instead "
            f"of a lambda or closure, or drop n_workers") from None


def validate_workers(n_workers: int | None) -> int:
    """Normalise an ``n_workers`` option: None -> 1, reject < 1."""
    if n_workers is None:
        return 1
    if n_workers < 1:
        raise AnalysisError(f"n_workers must be >= 1, got {n_workers}")
    return int(n_workers)


def default_chunksize(n_tasks: int, n_workers: int) -> int:
    """How many tasks one pool submission should carry.

    One submission per task maximises scheduling freedom but pays the
    full pickle-and-IPC round trip per item -- for a Monte-Carlo seed
    that solves in ten milliseconds, that overhead is a measurable
    fraction of the work.  Chunks amortise it.  Four chunks per worker
    (the heuristic ``multiprocessing.pool.Pool.map`` uses) keeps enough
    slack for load balancing when chunk durations vary.
    """
    if n_tasks <= 0:
        return 1
    return max(1, -(-n_tasks // (n_workers * 4)))


def _run_chunk(worker: Callable[..., Any],
               chunk: Sequence[tuple]) -> list[Any]:
    """Evaluate one chunk of tasks inside a worker process.

    Module-level so it pickles; results keep the chunk's task order.
    """
    return [worker(*task) for task in chunk]


def run_ordered(worker: Callable[..., Any],
                tasks: Sequence[tuple],
                n_workers: int,
                chunksize: int | None = None) -> list[Any]:
    """Map ``worker(*task)`` over ``tasks`` in a process pool.

    Results come back in **task order** regardless of which worker
    finishes first, so downstream reductions see the exact sequence the
    serial loop would have produced.  Tasks ship in chunks of
    ``chunksize`` (default: :func:`default_chunksize`) to amortise the
    per-submission pickle/IPC cost; chunking only regroups submissions,
    the result list is identical element-for-element to the unchunked
    pool.  The worker and every task must be picklable; preflight them
    with :func:`ensure_picklable` for a clear error message.
    """
    if chunksize is None:
        chunksize = default_chunksize(len(tasks), n_workers)
    elif chunksize < 1:
        raise AnalysisError(f"chunksize must be >= 1, got {chunksize}")
    chunks = [tasks[k:k + chunksize]
              for k in range(0, len(tasks), chunksize)]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(_run_chunk, worker, chunk)
                   for chunk in chunks]
        return [result for future in futures
                for result in future.result()]


# -- shared-memory plan cache ---------------------------------------------

#: Name prefix of every plan segment this library creates -- the CI
#: leak check greps ``/dev/shm`` for it after parallel workloads.
PLAN_PREFIX = "repro_plan_"

_plan_counter = itertools.count()

#: Plans published by this process and not yet closed; the atexit sweep
#: unlinks whatever a crashed campaign left behind.
_published_plans: set["SharedPlan"] = set()


def _sweep_published_plans() -> None:  # pragma: no cover - atexit path
    for plan in list(_published_plans):
        plan.close()


atexit.register(_sweep_published_plans)


def shm_available() -> bool:
    """True when ``multiprocessing.shared_memory`` imported and the
    platform can actually create a segment (checked lazily by
    :func:`publish_plan`)."""
    return _shared_memory is not None


@dataclass(frozen=True)
class PlanToken:
    """The per-task handle of a published plan: segment name plus the
    exact pickled byte count (segments round up to page size, so the
    consumer must not deserialize the padding)."""

    name: str
    size: int


class SharedPlan:
    """One published read-only plan segment, owned by the parent.

    ``close()`` is idempotent and both closes and unlinks -- call it in
    a ``finally`` as soon as the worker pool has drained.  Workers never
    unlink; they attach, copy, and detach inside :func:`fetch_plan`.
    """

    def __init__(self, shm, token: PlanToken) -> None:
        self._shm = shm
        self.token = token
        self.nbytes = token.size
        _published_plans.add(self)

    def close(self) -> None:
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        _published_plans.discard(self)
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def publish_plan(payload: Any) -> SharedPlan | None:
    """Pickle ``payload`` into a fresh shared-memory segment.

    Returns None -- callers then fall back to per-task pickling -- when
    shared memory is unavailable or the platform refuses the segment
    (no ``/dev/shm``, exhausted quota); an *unpicklable* payload still
    raises through :func:`ensure_picklable`'s error path semantics, as
    the classic path would reject it anyway.
    """
    if _shared_memory is None:
        return None
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    name = f"{PLAN_PREFIX}{os.getpid()}_{next(_plan_counter)}"
    try:
        shm = _shared_memory.SharedMemory(create=True, name=name,
                                          size=max(len(data), 1))
    except OSError:
        return None
    shm.buf[:len(data)] = data
    return SharedPlan(shm, PlanToken(name=name, size=len(data)))


#: Worker-side cache: plan name -> deserialized payload.  One miss per
#: (worker, plan), hits for every later task of the same campaign.
_attached_plans: dict[str, Any] = {}


def _fork_child_reset() -> None:  # pragma: no cover - runs in children
    """Forked children start with clean plan state: the attach cache is
    theirs to populate (a child must never "hit" on an entry it did not
    attach), and inherited :class:`SharedPlan` handles must never
    unlink the parent's live segments."""
    _attached_plans.clear()
    _published_plans.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_fork_child_reset)


def _attach_untracked(name: str):
    """Attach to an existing segment without the resource tracker
    adopting it: the parent owns the lifetime, and a tracker-registered
    attach would (a) spuriously unlink on worker exit and (b) spam
    KeyError warnings when sibling workers' register/unregister pairs
    interleave in the shared tracker (its cache is a set, so same-name
    registrations collapse).  Python 3.13 grew ``track=False``; older
    versions get the registration call suppressed for the duration of
    the attach -- ``shared_memory`` looks it up through the module
    attribute, so the swap is effective and strictly scoped."""
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        saved = _resource_tracker.register
        _resource_tracker.register = lambda *args, **kwargs: None
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            _resource_tracker.register = saved


def fetch_plan(token: PlanToken) -> Any:
    """Resolve a :class:`PlanToken` inside a worker process.

    First call per worker attaches the segment, copies the pickled
    bytes out, detaches immediately and caches the deserialized plan;
    every later call is a dictionary hit.  Counted as
    ``shm_plan_misses`` / ``shm_plan_hits`` under an active trace so
    campaigns can assert the one-attach-per-worker contract.
    """
    if token.name in _attached_plans:
        if telemetry.is_enabled():
            telemetry.current_span().inc("shm_plan_hits")
        return _attached_plans[token.name]
    if telemetry.is_enabled():
        telemetry.current_span().inc("shm_plan_misses")
    shm = _attach_untracked(token.name)
    try:
        payload = pickle.loads(bytes(shm.buf[:token.size]))
    finally:
        shm.close()
    _attached_plans[token.name] = payload
    return payload
