"""Deterministic process-pool fan-out for embarrassingly parallel runs.

Monte-Carlo populations and fault campaigns evaluate independent
(seed / fault) work items, so they parallelise trivially -- but the
*results* must be indistinguishable from the serial loop: same values,
same failure records, same ordering, same exceptions.  The helpers here
guarantee that by

* submitting work items in their canonical order and collecting the
  futures in that same submission order (never completion order), and
* shipping library errors back as *data* -- workers catch
  :class:`~repro.errors.ReproError` and return the exception object, so
  the parent loop applies exactly the same ``on_error`` policy it would
  apply serially.

Workers run in separate processes, so everything shipped to them must
pickle.  :func:`ensure_picklable` turns the obscure mid-pool pickling
failure into an actionable error before any process is spawned (the
usual culprit: a lambda or closure metric function -- use a
module-level function with ``functools.partial`` instead).
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from ..errors import AnalysisError


def ensure_picklable(obj: Any, role: str) -> None:
    """Raise an actionable :class:`AnalysisError` when ``obj`` cannot be
    shipped to worker processes."""
    try:
        pickle.dumps(obj)
    except Exception as error:
        raise AnalysisError(
            f"{role} cannot be sent to worker processes ({error}); "
            f"parallel execution pickles its work items -- use a "
            f"module-level function (functools.partial is fine) instead "
            f"of a lambda or closure, or drop n_workers") from None


def validate_workers(n_workers: int | None) -> int:
    """Normalise an ``n_workers`` option: None -> 1, reject < 1."""
    if n_workers is None:
        return 1
    if n_workers < 1:
        raise AnalysisError(f"n_workers must be >= 1, got {n_workers}")
    return int(n_workers)


def default_chunksize(n_tasks: int, n_workers: int) -> int:
    """How many tasks one pool submission should carry.

    One submission per task maximises scheduling freedom but pays the
    full pickle-and-IPC round trip per item -- for a Monte-Carlo seed
    that solves in ten milliseconds, that overhead is a measurable
    fraction of the work.  Chunks amortise it.  Four chunks per worker
    (the heuristic ``multiprocessing.pool.Pool.map`` uses) keeps enough
    slack for load balancing when chunk durations vary.
    """
    if n_tasks <= 0:
        return 1
    return max(1, -(-n_tasks // (n_workers * 4)))


def _run_chunk(worker: Callable[..., Any],
               chunk: Sequence[tuple]) -> list[Any]:
    """Evaluate one chunk of tasks inside a worker process.

    Module-level so it pickles; results keep the chunk's task order.
    """
    return [worker(*task) for task in chunk]


def run_ordered(worker: Callable[..., Any],
                tasks: Sequence[tuple],
                n_workers: int,
                chunksize: int | None = None) -> list[Any]:
    """Map ``worker(*task)`` over ``tasks`` in a process pool.

    Results come back in **task order** regardless of which worker
    finishes first, so downstream reductions see the exact sequence the
    serial loop would have produced.  Tasks ship in chunks of
    ``chunksize`` (default: :func:`default_chunksize`) to amortise the
    per-submission pickle/IPC cost; chunking only regroups submissions,
    the result list is identical element-for-element to the unchunked
    pool.  The worker and every task must be picklable; preflight them
    with :func:`ensure_picklable` for a clear error message.
    """
    if chunksize is None:
        chunksize = default_chunksize(len(tasks), n_workers)
    elif chunksize < 1:
        raise AnalysisError(f"chunksize must be >= 1, got {chunksize}")
    chunks = [tasks[k:k + chunksize]
              for k in range(0, len(tasks), chunksize)]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(_run_chunk, worker, chunk)
                   for chunk in chunks]
        return [result for future in futures
                for result in future.result()]
