"""Deterministic process-pool fan-out for embarrassingly parallel runs.

Monte-Carlo populations and fault campaigns evaluate independent
(seed / fault) work items, so they parallelise trivially -- but the
*results* must be indistinguishable from the serial loop: same values,
same failure records, same ordering, same exceptions.  The helpers here
guarantee that by

* submitting work items in their canonical order and collecting the
  futures in that same submission order (never completion order), and
* shipping library errors back as *data* -- workers catch
  :class:`~repro.errors.ReproError` and return the exception object, so
  the parent loop applies exactly the same ``on_error`` policy it would
  apply serially.

Workers run in separate processes, so everything shipped to them must
pickle.  :func:`ensure_picklable` turns the obscure mid-pool pickling
failure into an actionable error before any process is spawned (the
usual culprit: a lambda or closure metric function -- use a
module-level function with ``functools.partial`` instead).
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from ..errors import AnalysisError


def ensure_picklable(obj: Any, role: str) -> None:
    """Raise an actionable :class:`AnalysisError` when ``obj`` cannot be
    shipped to worker processes."""
    try:
        pickle.dumps(obj)
    except Exception as error:
        raise AnalysisError(
            f"{role} cannot be sent to worker processes ({error}); "
            f"parallel execution pickles its work items -- use a "
            f"module-level function (functools.partial is fine) instead "
            f"of a lambda or closure, or drop n_workers") from None


def validate_workers(n_workers: int | None) -> int:
    """Normalise an ``n_workers`` option: None -> 1, reject < 1."""
    if n_workers is None:
        return 1
    if n_workers < 1:
        raise AnalysisError(f"n_workers must be >= 1, got {n_workers}")
    return int(n_workers)


def run_ordered(worker: Callable[..., Any],
                tasks: Sequence[tuple],
                n_workers: int) -> list[Any]:
    """Map ``worker(*task)`` over ``tasks`` in a process pool.

    Results come back in **task order** regardless of which worker
    finishes first, so downstream reductions see the exact sequence the
    serial loop would have produced.  The worker and every task must be
    picklable; preflight them with :func:`ensure_picklable` for a clear
    error message.
    """
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        futures = [pool.submit(worker, *task) for task in tasks]
        return [future.result() for future in futures]
