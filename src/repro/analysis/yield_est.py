"""Parametric yield estimation from Monte-Carlo populations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..errors import AnalysisError
from .montecarlo import MonteCarloSummary


@dataclass(frozen=True)
class YieldReport:
    """Fraction of chips meeting every spec.

    Attributes:
        yield_fraction: Passing fraction in [0, 1].
        n_total: Population size.
        n_pass: Passing count.
        failures: Spec name -> number of chips failing it.
        n_invalid: Chips with a NaN metric (e.g. non-converging seeds
            recorded by ``MonteCarlo(on_error="skip")`` downstream);
            always counted as failing every spec they are NaN on.
    """

    yield_fraction: float
    n_total: int
    n_pass: int
    failures: dict[str, int]
    n_invalid: int = 0


def estimate_yield(summaries: Mapping[str, MonteCarloSummary],
                   specs: Mapping[str, Callable[[float], bool]]) -> YieldReport:
    """Apply per-metric pass predicates chip-by-chip.

    ``specs`` maps metric names (keys of ``summaries``) to predicates,
    e.g. ``{"inl": lambda v: v <= 1.0}``.
    """
    if not specs:
        raise AnalysisError("no specs given")
    missing = [name for name in specs if name not in summaries]
    if missing:
        raise AnalysisError(f"specs reference unknown metrics: {missing}")
    sizes = {summaries[name].values.size for name in specs}
    if len(sizes) != 1:
        raise AnalysisError("metric populations have different sizes")
    (n_total,) = sizes

    passing = np.ones(n_total, dtype=bool)
    invalid = np.zeros(n_total, dtype=bool)
    failures: dict[str, int] = {}
    for name, predicate in specs.items():
        values = summaries[name].values
        nan_mask = np.isnan(values)
        # A NaN metric (non-converged chip) fails the spec without ever
        # reaching the predicate, which may not be NaN-safe.
        ok = np.array([(not bad) and bool(predicate(float(v)))
                       for v, bad in zip(values, nan_mask)])
        failures[name] = int((~ok).sum())
        passing &= ok
        invalid |= nan_mask
    n_pass = int(passing.sum())
    return YieldReport(yield_fraction=n_pass / n_total, n_total=n_total,
                       n_pass=n_pass, failures=failures,
                       n_invalid=int(invalid.sum()))
