"""Generic Monte-Carlo runner over seeded chip instances.

The convention throughout the library: a *seed* fully determines one
chip's mismatch pattern.  The runner maps seeds through a user metric
function and summarises the distribution -- this is how the Fig. 11
INL/DNL numbers are reproduced as a population rather than one lucky
sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class MonteCarloSummary:
    """Distribution summary of one scalar metric.

    Attributes:
        name: Metric label.
        values: Raw per-seed values.
        mean / std / median: Moments.
        p05 / p95: 5th / 95th percentiles.
    """

    name: str
    values: np.ndarray
    mean: float
    std: float
    median: float
    p05: float
    p95: float

    @classmethod
    def from_values(cls, name: str, values) -> "MonteCarloSummary":
        array = np.asarray(list(values), dtype=float)
        if array.size == 0:
            raise AnalysisError(f"no samples for metric {name!r}")
        return cls(name=name, values=array,
                   mean=float(array.mean()), std=float(array.std()),
                   median=float(np.median(array)),
                   p05=float(np.percentile(array, 5)),
                   p95=float(np.percentile(array, 95)))


class MonteCarlo:
    """Run ``metric_fn(seed) -> dict[str, float]`` over many seeds.

    Example::

        def chip_metrics(seed):
            adc = FaiAdc(seed=seed)
            report = linearity_test(adc)
            return {"inl": report.inl_max, "dnl": report.dnl_max}

        mc = MonteCarlo(chip_metrics, n_runs=25)
        print(mc.run()["inl"].median)
    """

    def __init__(self, metric_fn: Callable[[int], dict[str, float]],
                 n_runs: int = 25, seed_base: int = 0) -> None:
        if n_runs < 1:
            raise AnalysisError(f"n_runs must be >= 1: {n_runs}")
        self.metric_fn = metric_fn
        self.n_runs = n_runs
        self.seed_base = seed_base

    def run(self) -> dict[str, MonteCarloSummary]:
        """Execute all runs; returns per-metric summaries."""
        collected: dict[str, list[float]] = {}
        expected_keys: set[str] | None = None
        for k in range(self.n_runs):
            metrics = self.metric_fn(self.seed_base + k)
            if not metrics:
                raise AnalysisError("metric function returned no metrics")
            if expected_keys is None:
                expected_keys = set(metrics)
            elif set(metrics) != expected_keys:
                raise AnalysisError(
                    "metric function returned inconsistent metric sets: "
                    f"{sorted(expected_keys)} vs {sorted(metrics)}")
            for name, value in metrics.items():
                collected.setdefault(name, []).append(float(value))
        return {name: MonteCarloSummary.from_values(name, values)
                for name, values in collected.items()}
