"""Generic Monte-Carlo runner over seeded chip instances.

The convention throughout the library: a *seed* fully determines one
chip's mismatch pattern.  The runner maps seeds through a user metric
function and summarises the distribution -- this is how the Fig. 11
INL/DNL numbers are reproduced as a population rather than one lucky
sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import telemetry
from ..errors import AnalysisError, ReproError
from .parallel import ensure_picklable, run_ordered, validate_workers


def _mc_eval(metric_fn: Callable[[int], dict[str, float]],
             seed: int) -> tuple[str, object]:
    try:
        return ("ok", metric_fn(seed))
    except ReproError as error:
        return ("error", error)


def _mc_worker(metric_fn: Callable[[int], dict[str, float]],
               seed: int, capture_trace: bool = False) -> tuple:
    """Evaluate one seed; in a worker process when parallel.

    Library errors come back as data -- ``("error", exception)`` -- so
    the parent applies the same ``on_error`` policy as the serial loop.
    Module-level so it pickles.

    ``capture_trace`` is set by the parallel path when the *parent* was
    tracing: the worker records a private trace around the evaluation
    and ships its spans back as a third tuple element for the parent to
    merge in submission order.  A fork-started worker inherits the
    parent's trace as a dead copy (mutations never propagate back), so
    it is dropped first.  The serial path instead opens a plain child
    span, which nests naturally.
    """
    if capture_trace:
        telemetry.reset()
        with telemetry.tracing(f"seed-{seed}", seed=seed) as trace:
            outcome = _mc_eval(metric_fn, seed)
        return outcome + (trace.root.to_dict(),)
    with telemetry.span(f"seed-{seed}", seed=seed):
        return _mc_eval(metric_fn, seed)


@dataclass(frozen=True)
class MonteCarloSummary:
    """Distribution summary of one scalar metric.

    Attributes:
        name: Metric label.
        values: Raw per-seed values.
        mean / std / median: Moments.
        p05 / p95: 5th / 95th percentiles.
    """

    name: str
    values: np.ndarray
    mean: float
    std: float
    median: float
    p05: float
    p95: float

    @classmethod
    def from_values(cls, name: str, values) -> "MonteCarloSummary":
        array = np.asarray(list(values), dtype=float)
        if array.size == 0:
            raise AnalysisError(f"no samples for metric {name!r}")
        # Sample standard deviation (ddof=1): these values estimate the
        # spread of the *population* the seeds were drawn from, not of
        # the finite sample itself.  A single sample carries no spread
        # information, so it reports 0.0 (not NaN).
        std = float(array.std(ddof=1)) if array.size > 1 else 0.0
        return cls(name=name, values=array,
                   mean=float(array.mean()), std=std,
                   median=float(np.median(array)),
                   p05=float(np.percentile(array, 5)),
                   p95=float(np.percentile(array, 95)))


class MonteCarloRun(dict):
    """Per-metric summaries plus the population's failure record.

    Behaves exactly like the ``dict[str, MonteCarloSummary]`` older
    callers expect, with the skipped seeds on the side.

    Attributes:
        failed_seeds: ``(seed, message)`` per seed whose metric
            evaluation raised under ``on_error="skip"``.
    """

    def __init__(self, summaries: dict[str, "MonteCarloSummary"],
                 failed_seeds: list[tuple[int, str]]) -> None:
        super().__init__(summaries)
        self.failed_seeds = list(failed_seeds)

    @property
    def n_failed(self) -> int:
        return len(self.failed_seeds)

    def describe(self) -> str:
        lines = [f"{name}: mean {summary.mean:.4g} "
                 f"std {summary.std:.4g} "
                 f"[p05 {summary.p05:.4g}, p95 {summary.p95:.4g}]"
                 for name, summary in self.items()]
        if self.failed_seeds:
            seeds = ", ".join(str(seed) for seed, _ in self.failed_seeds)
            lines.append(f"failed seeds ({self.n_failed}): {seeds}")
        return "\n".join(lines)


class MonteCarlo:
    """Run ``metric_fn(seed) -> dict[str, float]`` over many seeds.

    Example::

        def chip_metrics(seed):
            adc = FaiAdc(seed=seed)
            report = linearity_test(adc)
            return {"inl": report.inl_max, "dnl": report.dnl_max}

        mc = MonteCarlo(chip_metrics, n_runs=25)
        print(mc.run()["inl"].median)

    ``on_error`` selects the per-seed policy when ``metric_fn`` raises a
    library error (:class:`~repro.errors.ReproError` -- convergence
    failures above all):

    * ``"raise"`` (default): propagate, aborting the population;
    * ``"skip"``: record the seed in
      :attr:`MonteCarloRun.failed_seeds` and keep going, so one
      pathological chip cannot destroy a long campaign.

    ``n_workers > 1`` fans the seeds out over a process pool.  Seeds
    fully determine each chip, so the population is identical to the
    serial run -- same summaries, same failed-seed records, in the same
    seed order -- just wall-clock faster.  ``metric_fn`` must then be
    picklable (a module-level function, not a lambda).
    """

    def __init__(self, metric_fn: Callable[[int], dict[str, float]],
                 n_runs: int = 25, seed_base: int = 0,
                 on_error: str = "raise",
                 n_workers: int | None = None) -> None:
        if n_runs < 1:
            raise AnalysisError(f"n_runs must be >= 1: {n_runs}")
        if on_error not in ("raise", "skip"):
            raise AnalysisError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}")
        self.metric_fn = metric_fn
        self.n_runs = n_runs
        self.seed_base = seed_base
        self.on_error = on_error
        self.n_workers = validate_workers(n_workers)

    def _seeds(self) -> list[int]:
        return [self.seed_base + k for k in range(self.n_runs)]

    def _outcomes_serial(self):
        """Yield (seed, ("ok", metrics) | ("error", exception)) lazily
        -- under ``on_error="raise"`` later seeds never evaluate."""
        for seed in self._seeds():
            yield seed, _mc_worker(self.metric_fn, seed)

    def _outcomes_parallel(self):
        """Same outcome stream, evaluated on a process pool.

        Futures are collected in seed-submission order, so the
        reduction sees the exact sequence of the serial loop -- and,
        when tracing, the per-worker spans merge in that same order.
        """
        ensure_picklable(self.metric_fn, "metric_fn")
        results = run_ordered(_mc_worker,
                              [(self.metric_fn, seed,
                                telemetry.is_enabled())
                               for seed in self._seeds()],
                              self.n_workers)
        return zip(self._seeds(), results)

    def run(self) -> MonteCarloRun:
        """Execute all runs; returns per-metric summaries (a dict) with
        the failed-seed record attached."""
        with telemetry.span("montecarlo", n_runs=self.n_runs,
                            n_workers=self.n_workers,
                            seed_base=self.seed_base) as tspan:
            return self._run(tspan)

    def _run(self, tspan) -> MonteCarloRun:
        outcomes = (self._outcomes_parallel() if self.n_workers > 1
                    else self._outcomes_serial())
        collected: dict[str, list[float]] = {}
        expected_keys: set[str] | None = None
        failed: list[tuple[int, str]] = []
        for seed, outcome in outcomes:
            status, payload = outcome[0], outcome[1]
            if len(outcome) > 2 and outcome[2] is not None:
                # Worker-captured spans: graft them under this span in
                # submission order, exactly where the serial child span
                # would have gone.
                tspan.adopt(outcome[2])
            if status == "error":
                if self.on_error == "raise":
                    raise payload
                tspan.event("seed-failed", seed=seed, why=str(payload))
                tspan.inc("seeds_failed")
                failed.append((seed, str(payload)))
                continue
            metrics = payload
            if not metrics:
                raise AnalysisError("metric function returned no metrics")
            if expected_keys is None:
                expected_keys = set(metrics)
            elif set(metrics) != expected_keys:
                raise AnalysisError(
                    "metric function returned inconsistent metric sets: "
                    f"{sorted(expected_keys)} vs {sorted(metrics)}")
            for name, value in metrics.items():
                collected.setdefault(name, []).append(float(value))
        if not collected:
            raise AnalysisError(
                f"every seed failed ({len(failed)} of {self.n_runs}); "
                f"first: {failed[0][1] if failed else 'n/a'}")
        tspan.annotate(n_failed=len(failed))
        return MonteCarloRun(
            {name: MonteCarloSummary.from_values(name, values)
             for name, values in collected.items()}, failed)
