"""Generic Monte-Carlo runner over seeded chip instances.

The convention throughout the library: a *seed* fully determines one
chip's mismatch pattern.  The runner maps seeds through a user metric
function and summarises the distribution -- this is how the Fig. 11
INL/DNL numbers are reproduced as a population rather than one lucky
sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import telemetry
from ..errors import AnalysisError, ReproError
from .parallel import (PlanToken, ensure_picklable, fetch_plan,
                       publish_plan, run_ordered, validate_workers)


def _mc_eval(metric_fn: Callable[[int], dict[str, float]],
             seed: int) -> tuple[str, object]:
    try:
        return ("ok", metric_fn(seed))
    except ReproError as error:
        return ("error", error)


def _mc_worker(metric_fn: Callable[[int], dict[str, float]],
               seed: int, capture_trace: bool = False) -> tuple:
    """Evaluate one seed; in a worker process when parallel.

    Library errors come back as data -- ``("error", exception)`` -- so
    the parent applies the same ``on_error`` policy as the serial loop.
    Module-level so it pickles.

    ``capture_trace`` is set by the parallel path when the *parent* was
    tracing: the worker records a private trace around the evaluation
    and ships its spans back as a third tuple element for the parent to
    merge in submission order.  A fork-started worker inherits the
    parent's trace as a dead copy (mutations never propagate back), so
    it is dropped first.  The serial path instead opens a plain child
    span, which nests naturally.
    """
    if capture_trace:
        telemetry.reset()
        with telemetry.tracing(f"seed-{seed}", seed=seed) as trace:
            outcome = _mc_eval(metric_fn, seed)
        return outcome + (trace.root.to_dict(),)
    with telemetry.span(f"seed-{seed}", seed=seed):
        return _mc_eval(metric_fn, seed)


def _mc_worker_shm(token: PlanToken, seed: int,
                   capture_trace: bool = False) -> tuple:
    """Shared-memory twin of :func:`_mc_worker`.

    The task carries only a :class:`~repro.analysis.parallel.PlanToken`
    plus the seed; the metric function itself is resolved through the
    worker-local plan cache.  The fetch happens *inside* the traced
    region so ``shm_plan_hits`` / ``shm_plan_misses`` ride back to the
    parent with the rest of the seed's counters.
    """
    if capture_trace:
        telemetry.reset()
        with telemetry.tracing(f"seed-{seed}", seed=seed) as trace:
            outcome = _mc_eval(fetch_plan(token), seed)
        return outcome + (trace.root.to_dict(),)
    with telemetry.span(f"seed-{seed}", seed=seed):
        return _mc_eval(fetch_plan(token), seed)


@dataclass(frozen=True)
class MonteCarloSummary:
    """Distribution summary of one scalar metric.

    Attributes:
        name: Metric label.
        values: Raw per-seed values.
        mean / std / median: Moments.
        p05 / p95: 5th / 95th percentiles.
    """

    name: str
    values: np.ndarray
    mean: float
    std: float
    median: float
    p05: float
    p95: float

    @classmethod
    def from_values(cls, name: str, values) -> "MonteCarloSummary":
        array = np.asarray(list(values), dtype=float)
        if array.size == 0:
            raise AnalysisError(f"no samples for metric {name!r}")
        # Sample standard deviation (ddof=1): these values estimate the
        # spread of the *population* the seeds were drawn from, not of
        # the finite sample itself.  A single sample carries no spread
        # information, so it reports 0.0 (not NaN).
        std = float(array.std(ddof=1)) if array.size > 1 else 0.0
        return cls(name=name, values=array,
                   mean=float(array.mean()), std=std,
                   median=float(np.median(array)),
                   p05=float(np.percentile(array, 5)),
                   p95=float(np.percentile(array, 95)))


class MonteCarloRun(dict):
    """Per-metric summaries plus the population's failure record.

    Behaves exactly like the ``dict[str, MonteCarloSummary]`` older
    callers expect, with the skipped seeds on the side.

    Attributes:
        failed_seeds: ``(seed, message)`` per seed whose metric
            evaluation raised under ``on_error="skip"``.
    """

    def __init__(self, summaries: dict[str, "MonteCarloSummary"],
                 failed_seeds: list[tuple[int, str]]) -> None:
        super().__init__(summaries)
        self.failed_seeds = list(failed_seeds)

    @property
    def n_failed(self) -> int:
        return len(self.failed_seeds)

    def describe(self) -> str:
        lines = [f"{name}: mean {summary.mean:.4g} "
                 f"std {summary.std:.4g} "
                 f"[p05 {summary.p05:.4g}, p95 {summary.p95:.4g}]"
                 for name, summary in self.items()]
        if self.failed_seeds:
            seeds = ", ".join(str(seed) for seed, _ in self.failed_seeds)
            lines.append(f"failed seeds ({self.n_failed}): {seeds}")
        return "\n".join(lines)


class MonteCarlo:
    """Run ``metric_fn(seed) -> dict[str, float]`` over many seeds.

    Example::

        def chip_metrics(seed):
            adc = FaiAdc(seed=seed)
            report = linearity_test(adc)
            return {"inl": report.inl_max, "dnl": report.dnl_max}

        mc = MonteCarlo(chip_metrics, n_runs=25)
        print(mc.run()["inl"].median)

    ``on_error`` selects the per-seed policy when ``metric_fn`` raises a
    library error (:class:`~repro.errors.ReproError` -- convergence
    failures above all):

    * ``"raise"`` (default): propagate, aborting the population;
    * ``"skip"``: record the seed in
      :attr:`MonteCarloRun.failed_seeds` and keep going, so one
      pathological chip cannot destroy a long campaign.

    ``n_workers > 1`` fans the seeds out over a process pool.  Seeds
    fully determine each chip, so the population is identical to the
    serial run -- same summaries, same failed-seed records, in the same
    seed order -- just wall-clock faster.  ``metric_fn`` must then be
    picklable (a module-level function, not a lambda).

    ``shm`` controls how the metric function reaches the workers when
    parallel: ``"auto"`` (default) publishes it once as a read-only
    ``multiprocessing.shared_memory`` segment so each task ships only a
    tiny token plus its seed -- falling back to classic per-task
    pickling when shared memory is unavailable; ``"off"`` always
    pickles per task; ``"on"`` requires shared memory and raises when
    the platform cannot provide it.  Either way the outcome stream --
    summaries, failed-seed records, ordering -- is bit-identical to the
    serial loop.  Pair with :meth:`~repro.spice.batch.BatchedOpMetric.
    plan` so the published plan carries a pre-compiled circuit and the
    whole fleet compiles exactly once.

    ``backend="batched"`` solves the whole population as one stacked
    tensor instead of one Newton solve per seed; ``metric_fn`` must
    then be a :class:`~repro.spice.batch.BatchedOpMetric` spec (which
    is also a plain callable, so the same spec runs under every
    backend).  Each seed's mismatch draw becomes one lane of a
    :func:`~repro.spice.batch.batch_operating_point`; lanes the batched
    loop cannot converge fall back to the serial strategy ladder, so
    summaries, failed-seed records and their ordering match the serial
    backend (to float tolerance far inside 1e-9).

    ``analysis="transient"`` evaluates each seed as a waveform instead
    of a DC point: ``metric_fn`` is then a
    :class:`~repro.spice.batch.BatchedTranMetric` spec measuring a
    :class:`~repro.spice.results.TranResult`.  Under
    ``backend="batched"`` the whole population integrates as **one**
    lockstep :func:`~repro.spice.batch.batch_transient` campaign
    (shared adaptive grid, per-lane LTE, serial fallback for lanes
    that leave the grid); under ``backend="serial"`` the spec is
    simply called per seed.
    """

    def __init__(self, metric_fn: Callable[[int], dict[str, float]],
                 n_runs: int = 25, seed_base: int = 0,
                 on_error: str = "raise",
                 n_workers: int | None = None,
                 backend: str = "serial",
                 analysis: str = "op",
                 matrix_backend: str | None = None,
                 shm: str = "auto") -> None:
        if n_runs < 1:
            raise AnalysisError(f"n_runs must be >= 1: {n_runs}")
        if on_error not in ("raise", "skip"):
            raise AnalysisError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}")
        if shm not in ("auto", "on", "off"):
            raise AnalysisError(
                f"shm must be 'auto', 'on' or 'off', got {shm!r}")
        if backend not in ("serial", "batched"):
            raise AnalysisError(
                f"backend must be 'serial' or 'batched', got {backend!r}")
        if analysis not in ("op", "transient"):
            raise AnalysisError(
                f"analysis must be 'op' or 'transient', got {analysis!r}")
        if backend == "batched" and n_workers not in (None, 1):
            raise AnalysisError(
                "backend='batched' replaces the process pool; "
                "leave n_workers unset")
        if matrix_backend is not None and backend != "batched":
            raise AnalysisError(
                "matrix_backend overrides apply to backend='batched' only")
        self.metric_fn = metric_fn
        self.n_runs = n_runs
        self.seed_base = seed_base
        self.on_error = on_error
        self.n_workers = validate_workers(n_workers)
        self.backend = backend
        self.analysis = analysis
        self.matrix_backend = matrix_backend
        self.shm = shm

    def _seeds(self) -> list[int]:
        return [self.seed_base + k for k in range(self.n_runs)]

    def _outcomes_serial(self):
        """Yield (seed, ("ok", metrics) | ("error", exception)) lazily
        -- under ``on_error="raise"`` later seeds never evaluate."""
        for seed in self._seeds():
            yield seed, _mc_worker(self.metric_fn, seed)

    def _outcomes_parallel(self, tspan):
        """Same outcome stream, evaluated on a process pool.

        Futures are collected in seed-submission order, so the
        reduction sees the exact sequence of the serial loop -- and,
        when tracing, the per-worker spans merge in that same order.
        Under ``shm="auto"`` / ``"on"`` the metric function travels as
        one published shared-memory plan instead of riding every task
        tuple; the worker function changes, the work does not.
        """
        ensure_picklable(self.metric_fn, "metric_fn")
        trace_on = telemetry.is_enabled()
        plan = (publish_plan(self.metric_fn)
                if self.shm in ("auto", "on") else None)
        if plan is None:
            if self.shm == "on":
                raise AnalysisError(
                    "shm='on' but shared memory is unavailable on this "
                    "platform; use shm='auto' to fall back to per-task "
                    "pickling")
            results = run_ordered(_mc_worker,
                                  [(self.metric_fn, seed, trace_on)
                                   for seed in self._seeds()],
                                  self.n_workers)
            return zip(self._seeds(), results)
        try:
            tspan.event("shm-plan-published", bytes=plan.nbytes)
            results = run_ordered(_mc_worker_shm,
                                  [(plan.token, seed, trace_on)
                                   for seed in self._seeds()],
                                  self.n_workers)
        finally:
            plan.close()
        return zip(self._seeds(), results)

    def _outcomes_batched(self, tspan):
        """Same (seed, outcome) stream, produced by one stacked solve.

        Each seed's lane draw is a pure function of the seed (the
        :class:`~repro.spice.batch.BatchedOpMetric` contract), so the
        population is the one the serial loop would have evaluated;
        lanes that fail every strategy surface as the same
        ``("error", ConvergenceError)`` records, in seed order.

        Populations larger than one lane warm-start from a pilot solve
        of the first seed's lane (the sweep backend's pattern): every
        seed is a small perturbation of the same circuit, so the
        pilot's operating point puts the whole stack in the converged
        basin -- which is what lets circuits only the full homotopy
        ladder can solve cold (the bistable adder latches, say) run as
        stacked ensembles at all.  A failed pilot degrades to the flat
        nodeset start instead of poisoning the population.
        """
        from ..spice.batch import (BatchedOpMetric, BatchedTranMetric,
                                   batch_operating_point)
        spec = self.metric_fn
        if isinstance(spec, BatchedTranMetric):
            raise AnalysisError(
                "metric_fn is a BatchedTranMetric (a waveform metric); "
                "pass analysis='transient' to run it as a lockstep "
                "transient campaign")
        if not isinstance(spec, BatchedOpMetric):
            raise AnalysisError(
                "backend='batched' needs a BatchedOpMetric spec as "
                f"metric_fn, got {type(spec).__name__}; wrap the build/"
                "draw/measure triple in repro.spice.batch.BatchedOpMetric")
        circuit = spec.build()
        seeds = self._seeds()
        lanes = [spec.draw(seed, circuit) for seed in seeds]
        x0 = None
        if len(lanes) > 1:
            pilot = batch_operating_point(
                circuit, lanes[:1], options=spec.options,
                strategies=spec.strategies, on_error="skip",
                matrix_backend=self.matrix_backend)
            if not pilot.failures:
                x0 = pilot.points[0].x
                tspan.event("pilot-warm-start", seed=seeds[0])
            else:
                tspan.event("pilot-failed-flat-start",
                            why=str(pilot.failures[0][1]))
        batch = batch_operating_point(circuit, lanes, options=spec.options,
                                      strategies=spec.strategies,
                                      on_error="skip", x0=x0,
                                      matrix_backend=self.matrix_backend)
        failed = dict(batch.failures)
        outcomes = []
        for index, seed in enumerate(seeds):
            if index in failed:
                outcomes.append((seed, ("error", failed[index])))
                continue
            try:
                metrics = {name: float(value) for name, value in
                           spec.measure(batch.points[index]).items()}
            except ReproError as error:
                outcomes.append((seed, ("error", error)))
                continue
            outcomes.append((seed, ("ok", metrics)))
        return outcomes

    def _outcomes_batched_tran(self, tspan):
        """The transient twin of :meth:`_outcomes_batched`: one
        lockstep :func:`~repro.spice.batch.batch_transient` campaign
        produces the whole population's waveforms.

        No pilot warm start here -- every lane's t = 0 point is its own
        stacked DC solve inside the engine, and lanes that leave the
        shared grid rerun the full serial ladder + serial transient, so
        failures surface as the same ``("error", ConvergenceError)``
        records the serial loop would record, in seed order.
        """
        from ..spice.batch import BatchedTranMetric, batch_transient
        spec = self.metric_fn
        if not isinstance(spec, BatchedTranMetric):
            raise AnalysisError(
                "analysis='transient' with backend='batched' needs a "
                "BatchedTranMetric spec as metric_fn, got "
                f"{type(spec).__name__}; wrap the build/draw/measure "
                "triple in repro.spice.batch.BatchedTranMetric")
        circuit = spec.build()
        seeds = self._seeds()
        lanes = [spec.draw(seed, circuit) for seed in seeds]
        batch = batch_transient(circuit, lanes, spec.t_stop,
                                spec.options, on_error="skip",
                                matrix_backend=self.matrix_backend)
        failed = dict(batch.failures)
        outcomes = []
        for index, seed in enumerate(seeds):
            if index in failed:
                outcomes.append((seed, ("error", failed[index])))
                continue
            try:
                metrics = {name: float(value) for name, value in
                           spec.measure(batch.results[index]).items()}
            except ReproError as error:
                outcomes.append((seed, ("error", error)))
                continue
            outcomes.append((seed, ("ok", metrics)))
        return outcomes

    def run(self) -> MonteCarloRun:
        """Execute all runs; returns per-metric summaries (a dict) with
        the failed-seed record attached."""
        with telemetry.span("montecarlo", n_runs=self.n_runs,
                            n_workers=self.n_workers,
                            backend=self.backend,
                            analysis=self.analysis,
                            seed_base=self.seed_base) as tspan:
            return self._run(tspan)

    def _run(self, tspan) -> MonteCarloRun:
        if self.backend == "batched":
            if self.analysis == "transient":
                outcomes = self._outcomes_batched_tran(tspan)
            else:
                outcomes = self._outcomes_batched(tspan)
        elif self.n_workers > 1:
            outcomes = self._outcomes_parallel(tspan)
        else:
            outcomes = self._outcomes_serial()
        collected: dict[str, list[float]] = {}
        expected_keys: set[str] | None = None
        failed: list[tuple[int, str]] = []
        for seed, outcome in outcomes:
            status, payload = outcome[0], outcome[1]
            if len(outcome) > 2 and outcome[2] is not None:
                # Worker-captured spans: graft them under this span in
                # submission order, exactly where the serial child span
                # would have gone.
                tspan.adopt(outcome[2])
            if status == "error":
                if self.on_error == "raise":
                    raise payload
                tspan.event("seed-failed", seed=seed, why=str(payload))
                tspan.inc("seeds_failed")
                failed.append((seed, str(payload)))
                continue
            metrics = payload
            if not metrics:
                raise AnalysisError("metric function returned no metrics")
            if expected_keys is None:
                expected_keys = set(metrics)
            elif set(metrics) != expected_keys:
                raise AnalysisError(
                    "metric function returned inconsistent metric sets: "
                    f"{sorted(expected_keys)} vs {sorted(metrics)}")
            for name, value in metrics.items():
                collected.setdefault(name, []).append(float(value))
        if not collected:
            raise AnalysisError(
                f"every seed failed ({len(failed)} of {self.n_runs}); "
                f"first: {failed[0][1] if failed else 'n/a'}")
        tspan.annotate(n_failed=len(failed))
        return MonteCarloRun(
            {name: MonteCarloSummary.from_values(name, values)
             for name, values in collected.items()}, failed)
