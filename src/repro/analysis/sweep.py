"""One-dimensional parameter sweeps with tabular results.

A thin, explicit helper: benchmarks sweep a knob (tail current,
sampling rate, supply) through a metric function and want aligned
arrays back for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import telemetry
from ..errors import AnalysisError, ReproError


@dataclass(frozen=True)
class SweepTable:
    """Aligned sweep results.

    Attributes:
        parameter: Swept-knob label.
        values: Swept values.
        metrics: Metric name -> array aligned with ``values`` (NaN at
            points skipped under ``on_error="skip"``).
        failures: ``(index, message)`` per skipped point.
    """

    parameter: str
    values: np.ndarray
    metrics: dict[str, np.ndarray]
    failures: tuple[tuple[int, str], ...] = ()

    def column(self, name: str) -> np.ndarray:
        try:
            return self.metrics[name]
        except KeyError:
            raise AnalysisError(f"no metric {name!r} in sweep") from None

    def rows(self):
        """Iterate (value, {metric: value}) pairs -- printing helper."""
        for k, value in enumerate(self.values):
            yield float(value), {name: float(column[k])
                                 for name, column in self.metrics.items()}


def sweep_1d(parameter: str, values: Sequence[float],
             metric_fn: Callable[[float], dict[str, float]],
             on_error: str = "raise") -> SweepTable:
    """Evaluate ``metric_fn`` at each value; collect aligned columns.

    ``on_error="skip"`` records a point whose evaluation raises a
    library error as NaN across every metric column (noted in
    :attr:`SweepTable.failures`) instead of aborting the sweep.
    """
    if on_error not in ("raise", "skip"):
        raise AnalysisError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}")
    values_array = np.asarray(list(values), dtype=float)
    if values_array.size == 0:
        raise AnalysisError("empty sweep")
    rows: list[dict[str, float] | None] = []
    failures: list[tuple[int, str]] = []
    with telemetry.span("sweep-1d", parameter=parameter,
                        n_points=int(values_array.size)) as tspan:
        for index, value in enumerate(values_array):
            try:
                with telemetry.span(f"point-{index}", value=float(value)):
                    metrics = metric_fn(float(value))
            except ReproError as error:
                if on_error == "raise":
                    raise
                tspan.event("point-failed", index=index,
                            value=float(value), why=str(error))
                tspan.inc("sweep_points_failed")
                failures.append((index, str(error)))
                rows.append(None)
                continue
            if not metrics:
                raise AnalysisError("metric function returned no metrics")
            rows.append({name: float(metric)
                         for name, metric in metrics.items()})
        tspan.annotate(n_failures=len(failures))
    evaluated = [row for row in rows if row is not None]
    if not evaluated:
        raise AnalysisError(
            f"every sweep point failed ({len(failures)} of "
            f"{values_array.size})")
    names = set(evaluated[0])
    if any(set(row) != names for row in evaluated):
        raise AnalysisError("metric function returned inconsistent sets")
    metrics_out = {
        name: np.array([row[name] if row is not None else float("nan")
                        for row in rows])
        for name in evaluated[0]}
    return SweepTable(parameter=parameter, values=values_array,
                      metrics=metrics_out, failures=tuple(failures))
