"""One-dimensional parameter sweeps with tabular results.

A thin, explicit helper: benchmarks sweep a knob (tail current,
sampling rate, supply) through a metric function and want aligned
arrays back for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .. import telemetry
from ..errors import AnalysisError, ReproError


@dataclass(frozen=True)
class SweepTable:
    """Aligned sweep results.

    Attributes:
        parameter: Swept-knob label.
        values: Swept values.
        metrics: Metric name -> array aligned with ``values`` (NaN at
            points skipped under ``on_error="skip"``).
        failures: ``(index, message)`` per skipped point.
    """

    parameter: str
    values: np.ndarray
    metrics: dict[str, np.ndarray]
    failures: tuple[tuple[int, str], ...] = ()

    def column(self, name: str) -> np.ndarray:
        try:
            return self.metrics[name]
        except KeyError:
            raise AnalysisError(f"no metric {name!r} in sweep") from None

    def rows(self):
        """Iterate (value, {metric: value}) pairs -- printing helper."""
        for k, value in enumerate(self.values):
            yield float(value), {name: float(column[k])
                                 for name, column in self.metrics.items()}


def _sweep_rows_serial(values_array, metric_fn, on_error, tspan):
    """(rows, failures) of the classic one-point-at-a-time loop."""
    rows: list[dict[str, float] | None] = []
    failures: list[tuple[int, str]] = []
    for index, value in enumerate(values_array):
        try:
            with telemetry.span(f"point-{index}", value=float(value)):
                metrics = metric_fn(float(value))
        except ReproError as error:
            if on_error == "raise":
                raise
            tspan.event("point-failed", index=index,
                        value=float(value), why=str(error))
            tspan.inc("sweep_points_failed")
            failures.append((index, str(error)))
            rows.append(None)
            continue
        if not metrics:
            raise AnalysisError("metric function returned no metrics")
        rows.append({name: float(metric)
                     for name, metric in metrics.items()})
    return rows, failures


def _sweep_rows_batched(values_array, metric_fn, on_error, tspan,
                        matrix_backend=None):
    """Same (rows, failures), produced by one stacked multi-lane solve.

    ``metric_fn`` must be a :class:`~repro.spice.batch.BatchedOpSweep`
    spec; every swept value becomes one lane, and a lane that fails
    every strategy surfaces with the same error record -- and, under
    ``on_error="raise"``, the same (lowest-index) exception -- as the
    serial loop.
    """
    from ..spice.batch import BatchedOpSweep, batch_operating_point
    spec = metric_fn
    if not isinstance(spec, BatchedOpSweep):
        raise AnalysisError(
            "backend='batched' needs a BatchedOpSweep spec as metric_fn, "
            f"got {type(spec).__name__}; wrap the build/lane/measure "
            "triple in repro.spice.batch.BatchedOpSweep")
    circuit = spec.build()
    lanes = [spec.lane(float(value), circuit) for value in values_array]
    x0 = None
    if len(lanes) > 1:
        # Pilot warm start: solve the first point alone and seed every
        # lane from its solution.  Sweep points are perturbations of one
        # circuit, so the pilot's operating point is a far better start
        # than the flat nodeset guess -- most lanes then converge in
        # phase 1 instead of leaning on gmin stepping.  A failed pilot
        # (dead first point under ``on_error="skip"``) falls back to
        # the flat start rather than poisoning the whole sweep.
        pilot = batch_operating_point(
            circuit, lanes[:1], options=spec.options,
            strategies=spec.strategies, on_error="skip",
            matrix_backend=matrix_backend)
        if not pilot.failures:
            x0 = pilot.points[0].x
            tspan.event("pilot-warm-start", value=float(values_array[0]))
        else:
            tspan.event("pilot-failed-flat-start",
                        why=str(pilot.failures[0][1]))
    batch = batch_operating_point(circuit, lanes, options=spec.options,
                                  strategies=spec.strategies,
                                  on_error="skip", x0=x0,
                                  matrix_backend=matrix_backend)
    failed = dict(batch.failures)
    rows: list[dict[str, float] | None] = []
    failures: list[tuple[int, str]] = []
    for index, value in enumerate(values_array):
        error = failed.get(index)
        if error is None:
            try:
                metrics = spec.measure(batch.points[index])
            except ReproError as measure_error:
                error = measure_error
        if error is not None:
            if on_error == "raise":
                raise error
            tspan.event("point-failed", index=index,
                        value=float(value), why=str(error))
            tspan.inc("sweep_points_failed")
            failures.append((index, str(error)))
            rows.append(None)
            continue
        if not metrics:
            raise AnalysisError("metric function returned no metrics")
        rows.append({name: float(metric)
                     for name, metric in metrics.items()})
    return rows, failures


def sweep_1d(parameter: str, values: Sequence[float],
             metric_fn: Callable[[float], dict[str, float]],
             on_error: str = "raise",
             backend: str = "serial",
             matrix_backend: str | None = None) -> SweepTable:
    """Evaluate ``metric_fn`` at each value; collect aligned columns.

    ``on_error="skip"`` records a point whose evaluation raises a
    library error as NaN across every metric column (noted in
    :attr:`SweepTable.failures`) instead of aborting the sweep.

    ``backend="batched"`` solves every point as one lane of a stacked
    ensemble Newton solve (``metric_fn`` must then be a
    :class:`~repro.spice.batch.BatchedOpSweep` spec, which is also a
    plain callable for the serial path).  ``matrix_backend`` overrides
    the built circuit's dense/sparse preference for the stacked solve
    (``"sparse"``/``"auto"`` route thousand-unknown sweeps through the
    shared-pattern sparse ensemble path).
    """
    if on_error not in ("raise", "skip"):
        raise AnalysisError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}")
    if backend not in ("serial", "batched"):
        raise AnalysisError(
            f"backend must be 'serial' or 'batched', got {backend!r}")
    if matrix_backend is not None and backend != "batched":
        raise AnalysisError(
            "matrix_backend overrides apply to backend='batched' only")
    values_array = np.asarray(list(values), dtype=float)
    if values_array.size == 0:
        raise AnalysisError("empty sweep")
    with telemetry.span("sweep-1d", parameter=parameter,
                        backend=backend,
                        n_points=int(values_array.size)) as tspan:
        if backend == "batched":
            rows, failures = _sweep_rows_batched(values_array, metric_fn,
                                                 on_error, tspan,
                                                 matrix_backend)
        else:
            rows, failures = _sweep_rows_serial(values_array, metric_fn,
                                                on_error, tspan)
        tspan.annotate(n_failures=len(failures))
    evaluated = [row for row in rows if row is not None]
    if not evaluated:
        raise AnalysisError(
            f"every sweep point failed ({len(failures)} of "
            f"{values_array.size})")
    names = set(evaluated[0])
    if any(set(row) != names for row in evaluated):
        raise AnalysisError("metric function returned inconsistent sets")
    metrics_out = {
        name: np.array([row[name] if row is not None else float("nan")
                        for row in rows])
        for name in evaluated[0]}
    return SweepTable(parameter=parameter, values=values_array,
                      metrics=metrics_out, failures=tuple(failures))
