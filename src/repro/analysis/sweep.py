"""One-dimensional parameter sweeps with tabular results.

A thin, explicit helper: benchmarks sweep a knob (tail current,
sampling rate, supply) through a metric function and want aligned
arrays back for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class SweepTable:
    """Aligned sweep results.

    Attributes:
        parameter: Swept-knob label.
        values: Swept values.
        metrics: Metric name -> array aligned with ``values``.
    """

    parameter: str
    values: np.ndarray
    metrics: dict[str, np.ndarray]

    def column(self, name: str) -> np.ndarray:
        try:
            return self.metrics[name]
        except KeyError:
            raise AnalysisError(f"no metric {name!r} in sweep") from None

    def rows(self):
        """Iterate (value, {metric: value}) pairs -- printing helper."""
        for k, value in enumerate(self.values):
            yield float(value), {name: float(column[k])
                                 for name, column in self.metrics.items()}


def sweep_1d(parameter: str, values: Sequence[float],
             metric_fn: Callable[[float], dict[str, float]]) -> SweepTable:
    """Evaluate ``metric_fn`` at each value; collect aligned columns."""
    values_array = np.asarray(list(values), dtype=float)
    if values_array.size == 0:
        raise AnalysisError("empty sweep")
    collected: dict[str, list[float]] = {}
    for value in values_array:
        metrics = metric_fn(float(value))
        if not metrics:
            raise AnalysisError("metric function returned no metrics")
        for name, metric in metrics.items():
            collected.setdefault(name, []).append(float(metric))
    lengths = {len(v) for v in collected.values()}
    if lengths != {values_array.size}:
        raise AnalysisError("metric function returned inconsistent sets")
    return SweepTable(parameter=parameter, values=values_array,
                      metrics={name: np.asarray(vals)
                               for name, vals in collected.items()})
