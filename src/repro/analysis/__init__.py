"""Statistical analysis machinery: Monte-Carlo, sweeps, sensitivity,
yield.

These drive the PVT and mismatch experiments (E4, E6) and are generic
enough to reuse on any model in the library.
"""

from .montecarlo import MonteCarlo, MonteCarloRun, MonteCarloSummary
from .sweep import sweep_1d, SweepTable
from .sensitivity import finite_difference_sensitivity
from .yield_est import estimate_yield, YieldReport
from .noise import (
    StageNoise,
    adc_noise_budget,
    chain_input_noise,
    scl_stage_noise,
)

__all__ = [
    "MonteCarlo", "MonteCarloRun", "MonteCarloSummary",
    "sweep_1d", "SweepTable",
    "finite_difference_sensitivity",
    "estimate_yield", "YieldReport",
    "StageNoise", "adc_noise_budget", "chain_input_noise",
    "scl_stage_noise",
]
