"""Engineering-notation quantities.

Circuit work lives across 15 orders of magnitude (pA tail currents to MHz
clocks), so readable parsing/formatting of SI-prefixed quantities is part
of the public API:

>>> parse_quantity("10n")
1e-08
>>> parse_quantity("200mV", expect_unit="V")
0.2
>>> format_quantity(4.2e-9, "A")
'4.2nA'
"""

from __future__ import annotations

import math
import re

from .errors import UnitError

#: SI prefix -> multiplier.  Both 'u' and the micro sign are accepted.
SI_PREFIXES: dict[str, float] = {
    "y": 1e-24, "z": 1e-21, "a": 1e-18, "f": 1e-15, "p": 1e-12,
    "n": 1e-9, "u": 1e-6, "µ": 1e-6, "μ": 1e-6, "m": 1e-3,
    "": 1.0,
    "k": 1e3, "K": 1e3, "M": 1e6, "G": 1e9, "T": 1e12,
}

#: Multiplier -> canonical prefix for formatting (descending order).
_FORMAT_PREFIXES: tuple[tuple[float, str], ...] = (
    (1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"), (1.0, ""),
    (1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p"), (1e-15, "f"),
    (1e-18, "a"), (1e-21, "z"), (1e-24, "y"),
)

_QUANTITY_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        \s*
        (?P<prefix>[yzafpnuµμmkKMGT]?)
        (?P<unit>[A-Za-z/%]*)
        \s*$""",
    re.VERBOSE,
)

#: Units whose first letter collides with a prefix letter; when the suffix
#: exactly equals one of these, it is a bare unit, not prefix+unit.
_KNOWN_UNITS = frozenset({
    "V", "A", "W", "F", "H", "Hz", "s", "S", "J", "Ohm", "ohm", "m", "K",
    "dB", "LSB", "%", "S/s", "b", "B",
})


def parse_quantity(text: str | float, expect_unit: str | None = None) -> float:
    """Parse an engineering-notation string into a float.

    ``text`` may already be numeric, in which case it passes through.
    Accepts forms like ``"10n"``, ``"10nA"``, ``"1.2u"``, ``"0.5"``,
    ``"80kS/s"``, ``"-3mV"``.  When ``expect_unit`` is given, a present
    unit must match it (a missing unit is accepted).

    Raises :class:`~repro.errors.UnitError` on malformed input.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse quantity {text!r}")
    number = float(match.group("number"))
    prefix = match.group("prefix")
    unit = match.group("unit")

    # Disambiguate prefix-vs-unit: "500m" is 0.5 by default, but when the
    # caller expects unit "m" (metres) the trailing letter is the unit.
    if unit == "" and prefix and expect_unit is not None \
            and prefix == expect_unit and prefix in _KNOWN_UNITS:
        unit, prefix = prefix, ""

    if prefix not in SI_PREFIXES:
        raise UnitError(f"unknown SI prefix {prefix!r} in {text!r}")
    if expect_unit is not None and unit and unit != expect_unit:
        raise UnitError(
            f"expected unit {expect_unit!r} but got {unit!r} in {text!r}")
    return number * SI_PREFIXES[prefix]


def format_quantity(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with the closest SI prefix.

    >>> format_quantity(0.0442e-6, "W")
    '44.2nW'
    """
    if value == 0.0:
        return f"0{unit}"
    if math.isnan(value) or math.isinf(value):
        return f"{value}{unit}"
    magnitude = abs(value)
    for multiplier, prefix in _FORMAT_PREFIXES:
        if magnitude >= multiplier:
            scaled = value / multiplier
            text = f"{scaled:.{digits}g}"
            return f"{text}{prefix}{unit}"
    # Smaller than the smallest prefix: fall back to scientific notation.
    return f"{value:.{digits}g}{unit}"


def decades(start: float, stop: float, points_per_decade: int = 10) -> list[float]:
    """Return a logarithmic grid from ``start`` to ``stop`` inclusive.

    Used by sweeps that span many orders of magnitude (e.g. tail currents
    from 1 pA to 1 uA as in Fig. 9).
    """
    if start <= 0.0 or stop <= 0.0:
        raise UnitError("log grid endpoints must be positive")
    if points_per_decade < 1:
        raise UnitError("points_per_decade must be >= 1")
    if start == stop:
        return [start]
    n_decades = math.log10(stop / start)
    n_points = max(2, int(round(abs(n_decades) * points_per_decade)) + 1)
    step = n_decades / (n_points - 1)
    return [start * 10.0 ** (step * i) for i in range(n_points)]


def db20(ratio: float) -> float:
    """Voltage/current ratio to decibels (20*log10)."""
    if ratio <= 0.0:
        raise UnitError(f"dB of non-positive ratio {ratio}")
    return 20.0 * math.log10(ratio)


def db10(ratio: float) -> float:
    """Power ratio to decibels (10*log10)."""
    if ratio <= 0.0:
        raise UnitError(f"dB of non-positive ratio {ratio}")
    return 10.0 * math.log10(ratio)


def from_db20(value_db: float) -> float:
    """Decibels back to a voltage/current ratio."""
    return 10.0 ** (value_db / 20.0)
