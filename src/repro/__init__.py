"""repro: an ultra-low-power mixed-signal design platform built on
subthreshold source-coupled circuits.

This library reproduces, end to end, the system described in

    A. Tajalli and Y. Leblebici, "Ultra-Low Power Mixed-Signal Design
    Platform Using Subthreshold Source-Coupled Circuits", DATE 2010.

It contains (bottom to top):

* :mod:`repro.devices` -- EKV subthreshold MOS models, diodes, mismatch,
  PVT (substitute for the 0.18 um foundry PDK);
* :mod:`repro.spice` -- a from-scratch MNA circuit simulator (DC / AC /
  transient), substitute for the commercial simulator;
* :mod:`repro.stscl` -- the STSCL gate: analytic models, cell library,
  transistor-level netlist generators, Eq. (1) power model, minimum
  supply, the pipelined adder of ref. [13];
* :mod:`repro.digital` -- gate-level netlists, event-driven simulation,
  STA, the ADC's 196-gate encoder, the subthreshold-CMOS baseline;
* :mod:`repro.analog` -- current-mode folder / interpolator / preamp /
  comparator / scalable reference ladder (Figs. 5-7);
* :mod:`repro.adc` -- the 8-bit folding-and-interpolating ADC and its
  metrology (INL / DNL / ENOB);
* :mod:`repro.pmu` -- PLL and the single bias controller that scales
  analog and digital together;
* :mod:`repro.platform_msys` -- the mixed-signal platform front end;
* :mod:`repro.analysis` -- Monte-Carlo / PVT sweep machinery.

Quick taste (see ``examples/quickstart.py`` for the narrated version)::

    from repro.stscl import StsclGateDesign
    gate = StsclGateDesign.default(i_ss=1e-9)
    print(gate.delay(), gate.power(vdd=1.0))
"""

from . import constants, errors, units

__version__ = "1.0.0"

__all__ = ["constants", "units", "errors", "__version__"]
