"""The complete folding-and-interpolating ADC (paper Fig. 4).

:class:`FaiAdc` wires the coarse flash, the fine folding path and the
encoder together, with one constructor knob per bias current so the PMU
(:mod:`repro.pmu.controller`) can scale the whole converter.

Coarse/fine synchronisation (Sec. III-B, "error correction"): the
reflection-symmetric Gray decode makes the composite code robust to the
coarse flash deciding up to ~half a fine fold early or late -- near a
segment boundary the folded signal is at its extremum, so a wrong
segment pairs with a reflected fine code and the result lands within
about one LSB of the truth.  The majority cells clean residual
thermometer bubbles.  (See ``tests/integration/test_adc_sync.py``.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import LN2
from ..digital.encoder import EncoderSpec, encode_batch, reference_encode
from ..errors import ModelError
from .config import FaiAdcConfig
from .flash import CoarseFlash
from .folding import FineFoldingPath
from .sample_hold import SampleHold


@dataclass(frozen=True)
class AdcBiasPoint:
    """The converter's bias currents (all scale together under the PMU).

    Attributes:
        i_unit: Fine-path folder/comparator unit current [A].
        i_coarse: Coarse comparator bias [A].
        i_res: Ladder control current [A].
        i_sh: Track/hold bias [A].
    """

    i_unit: float
    i_coarse: float
    i_res: float
    i_sh: float

    def scaled(self, factor: float) -> "AdcBiasPoint":
        """Every current multiplied by ``factor`` -- the single-knob
        scaling of Fig. 1."""
        if factor <= 0.0:
            raise ModelError(f"scale factor must be positive: {factor}")
        return AdcBiasPoint(
            i_unit=self.i_unit * factor, i_coarse=self.i_coarse * factor,
            i_res=self.i_res * factor, i_sh=self.i_sh * factor)


#: A reference bias point sized for the paper's top rate (80 kS/s);
#: with the 156-cell encoder it lands at the paper's ~4 uW / 80 kS/s
#: total (digital ~4 %), scaling linearly down to ~40 nW at 800 S/s.
NOMINAL_BIAS_80K = AdcBiasPoint(
    i_unit=26e-9, i_coarse=26e-9, i_res=40e-9, i_sh=150e-9)


class FaiAdc:
    """The 8-bit folding-and-interpolating converter.

    The same ``seed`` always builds the same "chip" (same mismatch
    pattern); ``ideal=True`` builds the error-free converter used as a
    reference in tests and benchmarks.
    """

    def __init__(self, config: FaiAdcConfig | None = None,
                 bias: AdcBiasPoint = NOMINAL_BIAS_80K,
                 ladder_sigma: float = 0.002,
                 noise_rms: float = 1.5e-3,
                 ideal: bool = False, seed: int | None = None) -> None:
        self.config = config or FaiAdcConfig()
        self.bias = bias
        self.ideal = ideal
        self.seed = seed
        #: Aggregate input-referred rms noise [V] (comparator thermal +
        #: latch + supply ripple), applied only on noisy conversions.
        #: Calibrated so the dynamic test lands at the paper's
        #: ENOB = 6.5 (static ramp tests average it out, as the paper's
        #: slow-ramp INL/DNL measurement does).
        self.noise_rms = 0.0 if ideal else noise_rms
        self._noise_rng = np.random.default_rng(
            None if seed is None else seed + 77)
        self.spec = EncoderSpec(coarse_bits=self.config.coarse_bits,
                                fine_bits=self.config.fine_bits)
        self.coarse = CoarseFlash(
            self.config, i_comparator=bias.i_coarse, i_res=bias.i_res,
            ladder_sigma=0.0 if ideal else ladder_sigma,
            comparator_ideal=ideal,
            seed=None if seed is None else seed + 10)
        self.fine = FineFoldingPath(
            self.config, i_unit=bias.i_unit, ideal=ideal,
            seed=None if seed is None else seed + 20)
        self.sample_hold = SampleHold(i_bias=bias.i_sh)

    def with_bias(self, bias: AdcBiasPoint) -> "FaiAdc":
        """Same chip (same mismatch) at a new bias point."""
        clone = FaiAdc.__new__(FaiAdc)
        clone.config = self.config
        clone.bias = bias
        clone.ideal = self.ideal
        clone.seed = self.seed
        clone.spec = self.spec
        clone.coarse = self.coarse.with_bias(bias.i_coarse, bias.i_res)
        clone.fine = self.fine.with_bias(bias.i_unit)
        clone.sample_hold = self.sample_hold.with_bias(bias.i_sh)
        clone.noise_rms = self.noise_rms
        clone._noise_rng = self._noise_rng
        return clone

    def scaled(self, factor: float) -> "FaiAdc":
        """Single-knob rescale of every bias current."""
        return self.with_bias(self.bias.scaled(factor))

    def calibrated(self, trim_resolution_rel: float = 0.002) -> "FaiAdc":
        """Chip with its fine comparator offsets foreground-trimmed
        (see :meth:`FineFoldingPath.calibrated`); coarse and ladder
        errors are untouched, so the residual linearity isolates them."""
        clone = self.with_bias(self.bias)
        clone.fine = self.fine.calibrated(trim_resolution_rel)
        return clone

    # -- conversion ---------------------------------------------------------

    def raw_words(self, v_in: np.ndarray,
                  noisy: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Raw comparator words before encoding: ``(coarse, fine)``.

        Shapes ``(n_samples, n_coarse_taps)`` / ``(n_samples,
        n_fine_signals)``.  This is the natural fault-injection point --
        :mod:`repro.faults` forces stuck bits here, between the analog
        front end and the digital encoder.
        """
        v_in = np.atleast_1d(np.asarray(v_in, dtype=float))
        if noisy and self.noise_rms > 0.0:
            v_in = v_in + self._noise_rng.normal(
                0.0, self.noise_rms, size=v_in.shape)
        return self.coarse.thermometer_batch(v_in), self.fine.fine_code(v_in)

    def convert_batch(self, v_in: np.ndarray,
                      noisy: bool = False) -> np.ndarray:
        """Convert an array of held input voltages to output codes.

        ``noisy`` adds the chip's input-referred rms noise per sample
        (used by dynamic tests; static ramp tests average noise out).
        """
        coarse, fine = self.raw_words(v_in, noisy=noisy)
        return encode_batch(coarse, fine, self.spec)

    def convert(self, v_in: float) -> int:
        """Convert one held voltage (scalar path, uses the scalar golden
        encoder -- bit-identical to the batch path)."""
        coarse = self.coarse.thermometer(float(v_in))
        fine_matrix = self.fine.fine_code(np.array([float(v_in)]))
        fine = tuple(bool(b) for b in fine_matrix[0])
        return reference_encode(coarse, fine, self.spec)

    def sample_and_convert(self, waveform, t_sample: np.ndarray) -> np.ndarray:
        """Full signal path: track/hold then convert."""
        held = self.sample_hold.sample(waveform, t_sample)
        return self.convert_batch(held)

    # -- power accounting -----------------------------------------------------

    def analog_branch_currents(self) -> dict[str, float]:
        """Static current of each analog section [A]."""
        cfg = self.config
        return {
            "fine_path": self.fine.branch_count() * self.bias.i_unit,
            "coarse_comparators": (cfg.n_segments - 1) * self.bias.i_coarse,
            "ladder": (self.coarse.ladder.string_current()
                       + self.coarse.ladder.bias_scheme.control_current(
                           self.coarse.ladder.n_segments,
                           self.bias.i_res)),
            "sample_hold": self.bias.i_sh,
        }

    def analog_power(self, vdd: float | None = None) -> float:
        """Total analog static power [W]."""
        vdd = self.config.vdd if vdd is None else vdd
        return sum(self.analog_branch_currents().values()) * vdd

    def max_sample_rate(self) -> float:
        """Highest sampling rate the current bias point supports [S/s].

        The binding constraints, all of which scale linearly with the
        bias (the single-knob property):

        * the track/hold must settle to half an LSB;
        * the comparator pre-amplifiers must settle within half a
          clock (their bandwidth at i_unit);
        * the reference-ladder taps must recover from kickback
          (7 tau to 8-bit accuracy against ~100 fF of tap loading).
        """
        from ..analog.preamp import Preamp

        sh_limit = self.sample_hold.max_sample_rate(self.config.n_bits)
        comparator_limit = Preamp(i_bias=self.bias.i_unit).bandwidth()
        ladder_tau = self.coarse.ladder.settling_time(c_tap=100e-15)
        ladder_limit = 1.0 / (2.0 * (self.config.n_bits - 1)
                              * LN2 * ladder_tau)
        return min(sh_limit, comparator_limit, ladder_limit)
