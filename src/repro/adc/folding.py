"""The fine folding-and-interpolating signal path (paper Fig. 4, right).

Chain: staggered folder bank -> x8 current interpolation -> comparator
bank.  The comparator outputs form the *cyclic* fine code the encoder
expects: comparator m flips exactly at code boundaries m+1, m+1+32, ...
in the ideal chain, and mismatch (folder pair offsets, interpolation
mirror errors, comparator current offsets) moves those crossings --
which is precisely how INL/DNL arises in the fine LSBs.

The "wiring" (which polarity of each interpolated signal means logic 0
at zero scale) is fixed at design time from the ideal chain, as the
differential routing of a real layout would be.
"""

from __future__ import annotations

import math

import numpy as np

from ..analog.folder import CurrentFolder, FolderBank
from ..analog.interpolator import CurrentInterpolator
from ..devices.mismatch import MismatchModel, PELGROM_180NM
from ..errors import ModelError
from .config import FaiAdcConfig


class FineFoldingPath:
    """The complete fine path of the FAI ADC.

    Attributes:
        config: Converter geometry.
        i_unit: Folder pair tail current [A] -- the PMU's analog knob.
        pair_w / pair_l: Folder pair device size [m] (offset sigma).
        mirror_sigma: Interpolation mirror relative-gain sigma.
        comparator_sigma_rel: Fine comparator current-offset sigma,
            relative to the unit current.
        ideal: Disable every mismatch source.
        seed: Chip seed; the same seed is the same chip.
    """

    def __init__(self, config: FaiAdcConfig, i_unit: float,
                 pair_w: float = 16.0e-6, pair_l: float = 4.0e-6,
                 mirror_sigma: float = 0.003,
                 comparator_sigma_rel: float = 0.005,
                 mismatch: MismatchModel = PELGROM_180NM,
                 ideal: bool = False, seed: int | None = None) -> None:
        if i_unit <= 0.0:
            raise ModelError(f"i_unit must be positive: {i_unit}")
        self.config = config
        self.i_unit = i_unit
        self.pair_w, self.pair_l = pair_w, pair_l
        self.mirror_sigma = mirror_sigma
        self.comparator_sigma_rel = comparator_sigma_rel
        self.mismatch = mismatch
        self.ideal = ideal
        self.seed = seed

        stages = int(math.log2(config.interpolation_factor))
        if 2 ** stages != config.interpolation_factor:
            raise ModelError("interpolation factor must be a power of two")
        self.interpolator = CurrentInterpolator(
            stages=stages,
            mirror_sigma=0.0 if ideal else mirror_sigma)

        base = FolderBank(
            n_folders=config.n_folders,
            full_scale=(config.v_low, config.v_high),
            folding_factor=config.folding_factor,
            n_signals=config.n_fine_signals,
            i_unit=i_unit)

        rng = np.random.default_rng(seed)
        if ideal:
            self.folders = base
            self._gains = None
            self._comp_offsets = np.zeros(config.n_fine_signals)
        else:
            sigma_off = mismatch.sigma_pair_offset(pair_w, pair_l)
            self.folders = [
                CurrentFolder(
                    references=f.references, i_unit=i_unit, tech=f.tech,
                    pair_offsets=tuple(rng.normal(
                        0.0, sigma_off, size=len(f.references))),
                    pair_gain_errors=tuple(rng.normal(
                        0.0, mismatch.sigma_beta(pair_w, pair_l),
                        size=len(f.references))),
                    temperature=f.temperature)
                for f in base]
            self._gains = self.interpolator.sample_gains(
                config.n_folders, rng)
            self._comp_offsets = rng.normal(
                0.0, comparator_sigma_rel,
                size=config.n_fine_signals)

        # Design-time wiring: reference polarities from the ideal chain
        # at the centre of code 0.
        v0 = config.v_low + 0.5 * config.lsb
        ideal_signals = self._signals_of(base, None, np.array([v0]))
        self._ref_positive = ideal_signals[:, 0] > 0.0

    def with_bias(self, i_unit: float) -> "FineFoldingPath":
        """Same chip (same mismatch pattern) at a new unit current."""
        clone = FineFoldingPath.__new__(FineFoldingPath)
        clone.config = self.config
        clone.i_unit = i_unit
        clone.pair_w, clone.pair_l = self.pair_w, self.pair_l
        clone.mirror_sigma = self.mirror_sigma
        clone.comparator_sigma_rel = self.comparator_sigma_rel
        clone.mismatch = self.mismatch
        clone.ideal = self.ideal
        clone.seed = self.seed
        clone.interpolator = self.interpolator
        clone.folders = [f.with_bias(i_unit) for f in self.folders]
        clone._gains = self._gains
        clone._comp_offsets = self._comp_offsets
        clone._ref_positive = self._ref_positive
        return clone

    def _signals_of(self, folders: list[CurrentFolder],
                    gains, v_in: np.ndarray) -> np.ndarray:
        raw = np.stack([f.output_current(v_in) for f in folders])
        return self.interpolator.interpolate(raw, gains)

    def signals(self, v_in: np.ndarray) -> np.ndarray:
        """Interpolated currents: shape (n_fine_signals, n_samples)."""
        v_in = np.atleast_1d(np.asarray(v_in, dtype=float))
        return self._signals_of(self.folders, self._gains, v_in)

    def fine_code(self, v_in: np.ndarray) -> np.ndarray:
        """Cyclic fine comparator word: shape (n_samples, n_signals)."""
        currents = self.signals(v_in)
        offsets = (self._comp_offsets * self.i_unit)[:, None]
        decisions = (currents + offsets) > 0.0
        # XOR against the design-time polarity so the code reads 0 at
        # the bottom of the range.
        cyclic = decisions != self._ref_positive[:, None]
        return cyclic.T

    def crossing_voltages(self, oversample: int = 64) -> np.ndarray:
        """Measured crossing voltage of every comparator transition.

        Scans the full scale and interpolates each sign change of each
        comparator's effective signal; used by linearity diagnostics.
        """
        cfg = self.config
        grid = np.linspace(cfg.v_low, cfg.v_high,
                           cfg.n_codes * oversample + 1)
        currents = self.signals(grid)
        effective = currents + (self._comp_offsets * self.i_unit)[:, None]
        crossings = []
        for row in effective:
            flips = np.nonzero(np.diff(np.signbit(row)))[0]
            for idx in flips:
                x1, x2 = grid[idx], grid[idx + 1]
                y1, y2 = row[idx], row[idx + 1]
                crossings.append(x1 - y1 * (x2 - x1) / (y2 - y1))
        return np.sort(np.asarray(crossings))

    def calibrated(self, trim_resolution_rel: float = 0.002,
                   trim_range_rel: float = 0.1) -> "FineFoldingPath":
        """Foreground offset calibration (extension beyond the paper).

        Test-time procedure: for each comparator, evaluate its
        effective signal at the ideal code boundaries it should cross,
        average the residual current, and cancel it with a
        per-comparator trim current of ``trim_resolution_rel`` * i_unit
        resolution (a small trim DAC), clamped to +/-``trim_range_rel``.

        Folder reference offsets and interpolation gain errors are
        *also* absorbed to first order, because the trim cancels the
        total residual at the boundaries, whatever its source.  What
        remains is curvature between boundaries and the coarse/ladder
        errors -- visible in the E4 ablation.
        """
        if trim_resolution_rel <= 0.0:
            raise ModelError(
                f"trim resolution must be positive: {trim_resolution_rel}")
        cfg = self.config
        boundaries = np.arange(1, cfg.n_codes + 1)
        voltages = cfg.v_low + boundaries * cfg.lsb
        # keep strictly inside the range (the top boundary is the edge)
        voltages = voltages[voltages < cfg.v_high]
        currents = self.signals(voltages)
        corrections = np.zeros(cfg.n_fine_signals)
        for m in range(cfg.n_fine_signals):
            own = np.nonzero(boundaries[:voltages.size]
                             % cfg.n_fine_signals
                             == (m + 1) % cfg.n_fine_signals)[0]
            if own.size == 0:
                continue
            residual = currents[m, own] / self.i_unit \
                + self._comp_offsets[m]
            corrections[m] = float(np.mean(residual))
        trim = np.round(corrections / trim_resolution_rel) \
            * trim_resolution_rel
        trim = np.clip(trim, -trim_range_rel, trim_range_rel)

        clone = self.with_bias(self.i_unit)
        clone._comp_offsets = self._comp_offsets - trim
        return clone

    def branch_count(self) -> int:
        """Tail/mirror current branches of the fine path (power units)."""
        folder_pairs = sum(len(f.references) for f in self.folders)
        mirrors = self.interpolator.branch_count(self.config.n_folders)
        comparators = self.config.n_fine_signals
        return folder_pairs + mirrors + comparators

    def power(self, vdd: float) -> float:
        """Fine-path static power [W]."""
        return self.branch_count() * self.i_unit * vdd
