"""ADC metrology: INL/DNL (histogram method) and FFT dynamic testing.

These are the instruments behind Fig. 11 (INL = 1.0 LSB, DNL = 0.4 LSB)
and the in-text ENOB = 6.5 figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class LinearityReport:
    """Static-linearity result.

    Attributes:
        dnl: Per-code differential non-linearity [LSB] (first/last code
            excluded from the extrema, as is standard).
        inl: Per-transition integral non-linearity [LSB], endpoint-fit.
        dnl_max: max |DNL| over interior codes.
        inl_max: max |INL|.
        missing_codes: Codes that never occurred.
    """

    dnl: np.ndarray
    inl: np.ndarray
    dnl_max: float
    inl_max: float
    missing_codes: tuple[int, ...]


def inl_dnl_from_codes(codes: np.ndarray, n_bits: int) -> LinearityReport:
    """Histogram linearity test from a uniform-ramp code record.

    ``codes`` must come from an input sweeping uniformly across (at
    least) the full scale; every interior code's hit count is then
    proportional to its analog width.
    """
    codes = np.asarray(codes, dtype=int)
    n_codes = 2 ** n_bits
    if codes.size < 4 * n_codes:
        raise AnalysisError(
            f"need >= {4 * n_codes} samples for a {n_bits}-bit histogram "
            f"test, got {codes.size}")
    if codes.min() < 0 or codes.max() >= n_codes:
        raise AnalysisError("codes outside the converter range")
    histogram = np.bincount(codes, minlength=n_codes).astype(float)
    interior = histogram[1:-1]
    if np.all(interior == 0.0):
        raise AnalysisError("no interior codes hit; is the ramp connected?")
    # The LSB estimate must average over *all* interior bins, zero-width
    # (missing) codes included: the interior hit counts jointly cover
    # the full-scale span, so dropping empty bins inflates the estimate
    # and the cumulative INL no longer telescopes onto the endpoint
    # line (it would disagree with the transition-level method on any
    # converter with a missing code).
    average = interior.mean()
    dnl_interior = interior / average - 1.0
    dnl = np.concatenate([[0.0], dnl_interior, [0.0]])
    inl = np.concatenate([[0.0], np.cumsum(dnl_interior)])
    # Endpoint fit: force INL to zero at both ends.
    drift = np.linspace(0.0, inl[-1], inl.size)
    inl = inl - drift
    missing = tuple(int(c) for c in range(1, n_codes - 1)
                    if histogram[c] == 0)
    return LinearityReport(
        dnl=dnl, inl=inl,
        dnl_max=float(np.max(np.abs(dnl_interior))),
        inl_max=float(np.max(np.abs(inl))),
        missing_codes=missing)


def code_transition_levels(convert, n_bits: int, v_low: float,
                           v_high: float,
                           resolution: float | None = None) -> np.ndarray:
    """Measure every code transition voltage by bisection.

    ``convert`` maps a voltage to a code (must be monotone, as the FAI
    converter is in range).  Returns the 2^n - 1 transition voltages
    T[c] (input level where the output first reaches code c+1...).
    This is the servo-loop measurement method; its INL/DNL must agree
    with the histogram method, which the integration tests enforce.
    """
    n_codes = 2 ** n_bits
    if v_high <= v_low:
        raise AnalysisError("v_high must exceed v_low")
    resolution = resolution or (v_high - v_low) / n_codes / 256.0
    transitions = np.empty(n_codes - 1)
    lo_bound = v_low
    for target in range(1, n_codes):
        lo, hi = lo_bound, v_high
        if convert(lo) >= target:
            # The carried-over bracket already reads at/above the
            # target.  That means bottom-rail clipping -- or, on a
            # noisy converter, the earlier bracket has flipped.  The
            # true transition sits at or below ``lo``, so re-bisect
            # down from the full lower range instead of recording the
            # stale bound as the transition.
            lo, hi = v_low, lo
            if convert(lo) >= target:
                transitions[target - 1] = lo
                continue
        elif convert(hi) < target:
            transitions[target - 1] = hi
            continue
        while hi - lo > resolution:
            mid = 0.5 * (lo + hi)
            if convert(mid) >= target:
                hi = mid
            else:
                lo = mid
        transitions[target - 1] = 0.5 * (lo + hi)
        lo_bound = lo  # monotone: next transition cannot be lower
    return transitions


def inl_dnl_from_transitions(transitions: np.ndarray,
                             n_bits: int) -> LinearityReport:
    """INL/DNL from measured transition levels (endpoint fit).

    DNL[c] for interior code c is (T[c] - T[c-1])/LSB - 1 with the LSB
    taken from the endpoint line through the first and last
    transitions; INL accumulates it.
    """
    transitions = np.asarray(transitions, dtype=float)
    n_codes = 2 ** n_bits
    if transitions.shape != (n_codes - 1,):
        raise AnalysisError(
            f"expected {n_codes - 1} transitions, got "
            f"{transitions.shape}")
    lsb = (transitions[-1] - transitions[0]) / (n_codes - 2)
    if lsb <= 0.0:
        raise AnalysisError("non-monotone transition record")
    widths = np.diff(transitions)
    dnl_interior = widths / lsb - 1.0
    dnl = np.concatenate([[0.0], dnl_interior, [0.0]])
    inl_mid = np.concatenate([[0.0], np.cumsum(dnl_interior)])
    inl = inl_mid - np.linspace(0.0, inl_mid[-1], inl_mid.size)
    return LinearityReport(
        dnl=dnl, inl=inl,
        dnl_max=float(np.max(np.abs(dnl_interior))),
        inl_max=float(np.max(np.abs(inl))),
        missing_codes=tuple(int(c) + 1
                            for c in np.nonzero(widths <= 0.0)[0]))


@dataclass(frozen=True)
class SineTestReport:
    """Dynamic (FFT) test result.

    Attributes:
        sndr_db: Signal-to-noise-and-distortion ratio [dB].
        sfdr_db: Spurious-free dynamic range [dB].
        enob: Effective number of bits.
        signal_bin: FFT bin of the test tone.
        guard_bins: Bins adjacent to the carrier excluded from both the
            noise sum and the SFDR spur search (they absorb the
            residual carrier skirt).  A spur landing exactly there is
            invisible to this test -- the policy is reported rather
            than silent.
        guard_power: One-sided power absorbed by the guard bins.
    """

    sndr_db: float
    sfdr_db: float
    enob: float
    signal_bin: int
    guard_bins: tuple[int, ...] = ()
    guard_power: float = 0.0


def enob_from_sndr(sndr_db: float) -> float:
    """ENOB = (SNDR - 1.76) / 6.02."""
    return (sndr_db - 1.76) / 6.02


def coherent_frequency(f_sample: float, n_samples: int,
                       cycles: int) -> float:
    """Coherent test frequency: an odd/coprime number of full cycles in
    the record (no spectral leakage, no repeated codes)."""
    if n_samples < 2 or cycles < 1:
        raise AnalysisError("need n_samples >= 2 and cycles >= 1")
    if math.gcd(cycles, n_samples) != 1:
        raise AnalysisError(
            f"cycles ({cycles}) must be coprime with n_samples "
            f"({n_samples}) for coherent sampling")
    return f_sample * cycles / n_samples


def sine_test(codes: np.ndarray, n_bits: int) -> SineTestReport:
    """FFT analysis of a coherently sampled sine-wave code record."""
    codes = np.asarray(codes, dtype=float)
    n = codes.size
    if n < 64:
        raise AnalysisError(f"need >= 64 samples, got {n}")
    centred = codes - codes.mean()
    spectrum = np.fft.rfft(centred)
    power = np.abs(spectrum) ** 2
    # One-sided power: every interior rfft bin carries half of the
    # two-sided power of its frequency; DC and (for even n) the
    # Nyquist bin appear exactly once and keep unit weight.  Without
    # this the noise floor -- much of which sits in interior bins --
    # is under-weighted relative to a Nyquist-bin component and the
    # SNDR of even an ideal quantizer comes out wrong.
    if n % 2 == 0:
        power[1:-1] *= 2.0
    else:
        power[1:] *= 2.0
    power[0] = 0.0
    signal_bin = int(np.argmax(power))
    if signal_bin == 0:
        raise AnalysisError("no signal tone found")
    signal_power = power[signal_bin]
    # Guard bins around the carrier absorb the residual skirt; the
    # exclusion is reported in the result so a spur hiding there is a
    # documented blind spot, not a silent one.
    guard_bins = tuple(b for b in (signal_bin - 1, signal_bin + 1)
                       if 1 <= b < power.size)
    noise = power.copy()
    noise[0] = 0.0
    noise[signal_bin] = 0.0
    guard_power = float(sum(power[b] for b in guard_bins))
    for b in guard_bins:
        noise[b] = 0.0
    noise_power = noise.sum()
    if noise_power <= 0.0:
        raise AnalysisError("zero noise power; record too short?")
    sndr = 10.0 * math.log10(signal_power / noise_power)
    sfdr = 10.0 * math.log10(signal_power / noise.max())
    return SineTestReport(sndr_db=sndr, sfdr_db=sfdr,
                          enob=enob_from_sndr(sndr),
                          signal_bin=signal_bin,
                          guard_bins=guard_bins,
                          guard_power=guard_power)
