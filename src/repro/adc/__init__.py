"""The 8-bit folding-and-interpolating ADC (paper Sec. III, Fig. 4).

Composition:

* a track/hold front end (:mod:`repro.adc.sample_hold`);
* a coarse flash sub-ADC over the PMOS reference ladder
  (:mod:`repro.adc.flash`);
* a fine path -- staggered current-mode folders, x8 current
  interpolation, comparator bank (:mod:`repro.adc.folding`);
* the STSCL digital encoder (golden model or the actual 156-cell gate
  netlist, :mod:`repro.digital.encoder`);
* metrology: INL/DNL histogram and FFT/ENOB testing
  (:mod:`repro.adc.metrics`).

Every analog block carries the full mismatch error model, and a single
control current scales the whole converter -- the property experiments
E3 (power scaling) and E4 (INL/DNL) quantify.
"""

from .config import FaiAdcConfig
from .sample_hold import SampleHold
from .flash import CoarseFlash
from .folding import FineFoldingPath
from .fai import FaiAdc
from .metrics import (
    inl_dnl_from_codes,
    inl_dnl_from_transitions,
    code_transition_levels,
    LinearityReport,
    sine_test,
    SineTestReport,
    enob_from_sndr,
    coherent_frequency,
)
from .testbench import (ramp_codes, linearity_test, dynamic_test,
                        sampled_transient_codes)

__all__ = [
    "FaiAdcConfig", "SampleHold", "CoarseFlash", "FineFoldingPath",
    "FaiAdc",
    "inl_dnl_from_codes", "inl_dnl_from_transitions",
    "code_transition_levels", "LinearityReport",
    "sine_test", "SineTestReport", "enob_from_sndr", "coherent_frequency",
    "ramp_codes", "linearity_test", "dynamic_test",
    "sampled_transient_codes",
]
