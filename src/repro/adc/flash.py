"""Coarse flash sub-ADC: PMOS reference ladder + comparator bank.

Extracts the 3 MSBs (paper Fig. 4, left).  Its thermometer output feeds
the encoder's majority bubble-correction stage; the reflection-robust
fine decode tolerates its boundary offsets to within ~1 LSB (see
:mod:`repro.adc.fai`).
"""

from __future__ import annotations

import numpy as np

from ..analog.comparator import ComparatorBank
from ..analog.ladder import LadderBiasScheme, ResistorLadder
from ..errors import ModelError
from .config import FaiAdcConfig


class CoarseFlash:
    """The coarse flash converter.

    One comparator per internal segment boundary (2^c - 1 of them), each
    comparing the held input against its ladder tap.
    """

    def __init__(self, config: FaiAdcConfig, i_comparator: float,
                 i_res: float, ladder_sigma: float = 0.0,
                 comparator_ideal: bool = True,
                 pair_w: float = 24.0e-6, pair_l: float = 6.0e-6,
                 seed: int | None = None) -> None:
        self.config = config
        n_taps = config.n_segments - 1
        if n_taps < 1:
            raise ModelError("coarse flash needs at least one boundary")
        self.ladder = ResistorLadder(
            n_taps=n_taps, v_low=config.v_low, v_high=config.v_high,
            i_res=i_res, sigma_rel=ladder_sigma,
            bias_scheme=LadderBiasScheme(share=4),
            seed=None if seed is None else seed + 1)
        # "Using large enough transistor sizes can minimize the effect
        # of current mismatch" (Sec. III-B): the coarse decisions gate
        # whole 32-LSB segments, so their pairs are drawn big.
        self.bank = ComparatorBank(
            n=n_taps, i_bias=i_comparator, ideal=comparator_ideal,
            pair_w=pair_w, pair_l=pair_l,
            seed=None if seed is None else seed + 2)

    def with_bias(self, i_comparator: float, i_res: float) -> "CoarseFlash":
        """Same chip at new bias currents (PMU scaling)."""
        clone = CoarseFlash.__new__(CoarseFlash)
        clone.config = self.config
        clone.ladder = self.ladder.with_control(i_res)
        clone.bank = self.bank.with_bias(i_comparator)
        return clone

    def thermometer(self, v_in: float) -> tuple[bool, ...]:
        """One conversion: the raw thermometer word (LSB tap first)."""
        taps = self.ladder.tap_voltages()
        offsets = self.bank.offsets()
        return tuple(bool(v_in > t + o) for t, o in zip(taps, offsets))

    def thermometer_batch(self, v_in: np.ndarray) -> np.ndarray:
        """Vectorised conversions: shape (n_samples, n_taps) booleans."""
        v_in = np.asarray(v_in, dtype=float)
        thresholds = self.ladder.tap_voltages() + self.bank.offsets()
        return v_in[:, None] > thresholds[None, :]

    def power(self, vdd: float) -> float:
        """Ladder + comparator power [W]."""
        comparators = self.bank.n * self.bank.i_bias * vdd
        return self.ladder.power(vdd) + comparators
