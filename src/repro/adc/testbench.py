"""Reusable ADC test harnesses: ramp (static) and sine (dynamic) tests.

These are the procedures the benchmarks and examples run; they mirror
how the paper's chip was characterised (Fig. 11 ramp histogram, ENOB
from a sampled sine).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import AnalysisError
from .fai import FaiAdc
from .metrics import (LinearityReport, SineTestReport, coherent_frequency,
                      inl_dnl_from_codes, sine_test)


def ramp_codes(adc: FaiAdc, samples_per_code: int = 32,
               margin_lsb: float = 0.0) -> np.ndarray:
    """Codes from a uniform ramp across the full scale.

    Unlike a plain flash, a *folding* converter is non-monotonic beyond
    its full scale (the folded signal wraps and the code walks back
    down), so the standard practice of overdriving the ramp corrupts
    the edge bins here; the default keeps the ramp exactly in range and
    the histogram test already excludes the two edge codes.
    """
    if samples_per_code < 1:
        raise AnalysisError(
            f"samples_per_code must be >= 1: {samples_per_code}")
    cfg = adc.config
    lo = cfg.v_low - margin_lsb * cfg.lsb
    hi = cfg.v_high + margin_lsb * cfg.lsb
    n = cfg.n_codes * samples_per_code
    ramp = np.linspace(lo, hi, n)
    return adc.convert_batch(ramp)


def linearity_test(adc: FaiAdc,
                   samples_per_code: int = 32) -> LinearityReport:
    """Histogram INL/DNL of ``adc`` (the Fig. 11 measurement)."""
    codes = ramp_codes(adc, samples_per_code)
    return inl_dnl_from_codes(codes, adc.config.n_bits)


def sampled_transient_codes(adc: FaiAdc, result, node_pos: str,
                            node_neg: str | None = None, *,
                            sample_times: np.ndarray,
                            center: float | None = None,
                            gain: float = 1.0) -> np.ndarray:
    """Codes from a simulated transient waveform sampled at given instants.

    The bridge between the SPICE layer and the converter metrology: a
    :class:`~repro.spice.results.TranResult` waveform (``node_pos``, or
    the ``node_pos - node_neg`` differential) is linearly interpolated
    at ``sample_times`` -- an ideal track/hold, deliberately, so Monte
    Carlo lanes that share a time grid produce *bit-identical* codes
    whenever their waveforms match -- mapped into the converter's input
    range as ``center + gain * v`` (``center`` defaults to mid-scale),
    and converted through the noiseless batch path.
    """
    sample_times = np.asarray(sample_times, dtype=float)
    time = np.asarray(result.time, dtype=float)
    if sample_times.size == 0:
        raise AnalysisError("sampled_transient_codes: no sample instants")
    if sample_times.min() < time[0] or sample_times.max() > time[-1]:
        raise AnalysisError(
            f"sample instants [{sample_times.min():g}, "
            f"{sample_times.max():g}] fall outside the simulated span "
            f"[{time[0]:g}, {time[-1]:g}]")
    wave = result.voltage(node_pos)
    if node_neg is not None:
        wave = wave - result.voltage(node_neg)
    cfg = adc.config
    mid = 0.5 * (cfg.v_low + cfg.v_high) if center is None else center
    held = mid + gain * np.interp(sample_times, time, wave)
    return adc.convert_batch(held)


def dynamic_test(adc: FaiAdc, f_sample: float,
                 n_samples: int = 4096, cycles: int = 67,
                 amplitude_fraction: float = 0.95,
                 use_sample_hold: bool = False) -> SineTestReport:
    """Coherent sine test returning SNDR/SFDR/ENOB.

    ``use_sample_hold`` routes the stimulus through the track/hold
    (adds its noise and jitter); otherwise the held values are ideal
    samples, isolating converter-core errors.
    """
    cfg = adc.config
    f_in = coherent_frequency(f_sample, n_samples, cycles)
    mid = 0.5 * (cfg.v_low + cfg.v_high)
    amp = 0.5 * cfg.full_scale * amplitude_fraction
    t = np.arange(n_samples) / f_sample

    if use_sample_hold:
        def waveform(time: float) -> float:
            return mid + amp * math.sin(2.0 * math.pi * f_in * time)
        codes = adc.sample_and_convert(waveform, t)
    else:
        held = mid + amp * np.sin(2.0 * np.pi * f_in * t)
        codes = adc.convert_batch(held, noisy=True)
    return sine_test(codes, cfg.n_bits)
