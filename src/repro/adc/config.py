"""Static configuration of the FAI ADC.

The defaults replicate the paper's converter: 8 bits (3 coarse + 5
fine), folding factor 8, interpolation factor 8 from 4 physical
folders, medium accuracy / sub-MHz / biomedical target.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignError


@dataclass(frozen=True)
class FaiAdcConfig:
    """Geometry and range of the converter.

    Attributes:
        coarse_bits: Flash sub-ADC resolution (MSBs).
        fine_bits: Folding/interpolating path resolution (LSBs).
        n_folders: Physical folding amplifiers; the interpolation
            factor is 2**fine_bits / n_folders (8 in the paper: one 2x
            merged into the folder and two 2x current interpolators).
        v_low / v_high: Input full-scale range [V].
        vdd: Supply voltage [V] (the paper's chip tolerates 1.0-1.25 V).
    """

    coarse_bits: int = 3
    fine_bits: int = 5
    n_folders: int = 4
    v_low: float = 0.2
    v_high: float = 0.8
    vdd: float = 1.0

    def __post_init__(self) -> None:
        if self.coarse_bits < 1 or self.fine_bits < 2:
            raise DesignError("need coarse_bits >= 1 and fine_bits >= 2")
        if self.v_high <= self.v_low:
            raise DesignError("v_high must exceed v_low")
        if self.vdd <= self.v_high:
            raise DesignError("supply must exceed the input range top")
        if self.n_fine_signals % self.n_folders != 0:
            raise DesignError(
                f"2**fine_bits ({self.n_fine_signals}) must be a "
                f"multiple of n_folders ({self.n_folders})")

    @property
    def n_bits(self) -> int:
        return self.coarse_bits + self.fine_bits

    @property
    def n_codes(self) -> int:
        return 2 ** self.n_bits

    @property
    def n_segments(self) -> int:
        """Coarse segments = folding factor."""
        return 2 ** self.coarse_bits

    @property
    def folding_factor(self) -> int:
        return self.n_segments

    @property
    def n_fine_signals(self) -> int:
        """Fine comparators / zero-crossing signals per segment."""
        return 2 ** self.fine_bits

    @property
    def interpolation_factor(self) -> int:
        """Signals generated per physical folder (paper: 8)."""
        return self.n_fine_signals // self.n_folders

    @property
    def full_scale(self) -> float:
        return self.v_high - self.v_low

    @property
    def lsb(self) -> float:
        """One LSB [V]."""
        return self.full_scale / self.n_codes

    def code_to_voltage(self, code: float) -> float:
        """Centre voltage of ``code`` [V]."""
        return self.v_low + (code + 0.5) * self.lsb

    def voltage_to_code(self, voltage: float) -> int:
        """Ideal quantisation of ``voltage`` (clamped to range)."""
        code = int((voltage - self.v_low) / self.lsb)
        return max(0, min(self.n_codes - 1, code))
