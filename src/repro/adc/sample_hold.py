"""Track-and-hold front end.

A simple switched source-follower/track switch model with the three
error mechanisms that matter at nW power levels:

* finite tracking bandwidth (switch conductance scales with the bias
  current -- the PMU scales this block too);
* kT/C sampling noise on the hold capacitor;
* aperture jitter against a moving input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import BOLTZMANN, T_NOMINAL, thermal_voltage
from ..errors import ModelError


@dataclass
class SampleHold:
    """Track-and-hold stage.

    Attributes:
        i_bias: Switch/buffer bias current [A].
        c_hold: Hold capacitance [F].
        n: Subthreshold slope factor of the switch device.
        jitter_rms: Aperture jitter [s].
        noisy: Enable kT/C noise (off for deterministic static tests).
        seed: RNG seed for the noise draws.
        temperature: Junction temperature [K].
    """

    i_bias: float = 10e-9
    c_hold: float = 200e-15
    n: float = 1.3
    jitter_rms: float = 0.0
    noisy: bool = False
    seed: int | None = None
    temperature: float = T_NOMINAL

    def __post_init__(self) -> None:
        if self.i_bias <= 0.0:
            raise ModelError(f"i_bias must be positive: {self.i_bias}")
        if self.c_hold <= 0.0:
            raise ModelError(f"c_hold must be positive: {self.c_hold}")
        self._rng = np.random.default_rng(self.seed)

    def with_bias(self, i_bias: float) -> "SampleHold":
        """Retuned copy (the PMU scaling operation)."""
        return SampleHold(i_bias=i_bias, c_hold=self.c_hold, n=self.n,
                          jitter_rms=self.jitter_rms, noisy=self.noisy,
                          seed=self.seed, temperature=self.temperature)

    def track_conductance(self) -> float:
        """On-conductance of the weak-inversion track switch [S]."""
        ut = thermal_voltage(self.temperature)
        return self.i_bias / (self.n * ut)

    def tracking_bandwidth(self) -> float:
        """-3 dB tracking bandwidth [Hz]."""
        return self.track_conductance() / (2.0 * math.pi * self.c_hold)

    def settling_error(self, f_sample: float,
                       track_fraction: float = 0.5) -> float:
        """Relative residual tracking error at ``f_sample``.

        exp(-T_track / tau) with T_track a fraction of the sample
        period.
        """
        if f_sample <= 0.0:
            raise ModelError(f"f_sample must be positive: {f_sample}")
        tau = self.c_hold / self.track_conductance()
        t_track = track_fraction / f_sample
        return math.exp(-t_track / tau)

    def noise_rms(self) -> float:
        """kT/C sampled-noise rms [V]."""
        return math.sqrt(BOLTZMANN * self.temperature / self.c_hold)

    def max_sample_rate(self, resolution_bits: int,
                        track_fraction: float = 0.5) -> float:
        """Highest f_s settling to within half an LSB at
        ``resolution_bits``."""
        if resolution_bits < 1:
            raise ModelError(f"bits must be >= 1: {resolution_bits}")
        tau = self.c_hold / self.track_conductance()
        n_tau = (resolution_bits + 1) * math.log(2.0)
        return track_fraction / (n_tau * tau)

    def sample(self, waveform, t_sample: np.ndarray) -> np.ndarray:
        """Sample ``waveform(t)`` at the instants ``t_sample``.

        Applies jitter and kT/C noise when enabled; the deterministic
        settling error is a gain term small enough to fold into the
        conversion (checked by :meth:`settling_error` at design time).
        """
        t_sample = np.asarray(t_sample, dtype=float)
        if self.jitter_rms > 0.0 and self.noisy:
            t_eff = t_sample + self._rng.normal(
                0.0, self.jitter_rms, size=t_sample.shape)
        else:
            t_eff = t_sample
        values = np.asarray([waveform(float(t)) for t in t_eff])
        if self.noisy:
            values = values + self._rng.normal(
                0.0, self.noise_rms(), size=values.shape)
        return values
