"""Ideal passive-element helper equations.

The SPICE engine stamps these directly; they are exposed here so analytic
models and tests share the same definitions.
"""

from __future__ import annotations

from ..errors import ModelError


def resistor_current(resistance: float, v_across: float) -> float:
    """Current through an ideal resistor [A]."""
    if resistance <= 0.0:
        raise ModelError(f"resistance must be positive, got {resistance}")
    return v_across / resistance


def capacitor_charge(capacitance: float, v_across: float) -> float:
    """Charge stored on an ideal capacitor [C]."""
    if capacitance < 0.0:
        raise ModelError(f"capacitance must be >= 0, got {capacitance}")
    return capacitance * v_across


def rc_time_constant(resistance: float, capacitance: float) -> float:
    """tau = R*C [s]."""
    if resistance <= 0.0 or capacitance < 0.0:
        raise ModelError("R must be positive and C non-negative")
    return resistance * capacitance
