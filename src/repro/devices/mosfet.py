"""Four-terminal MOS transistor evaluated on absolute node voltages.

:class:`Mosfet` wraps the EKV core equations into the form the MNA engine
needs: given the four terminal potentials it returns the channel current
and its partial derivative with respect to *every* terminal, so the
bulk-drain-shorted PMOS load of the paper (Fig. 2 / Fig. 6) -- whose whole
point is the body effect acting through the drain -- falls out naturally
by simply wiring B to D in the netlist.

Sign conventions: ``ids`` is the current flowing from the drain terminal
to the source terminal through the channel.  It is positive for a
conducting NMOS and negative for a conducting PMOS.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..constants import T_NOMINAL, thermal_voltage
from ..errors import ModelError
from .ekv import interp_f, interp_f_derivative
from .parameters import MosParameters

#: Smoothing width for the |V_DS| used by channel-length modulation [V].
_CLM_SMOOTH = 0.05


def _smooth_abs(x: float) -> tuple[float, float]:
    """Return (|x| smoothed, d/dx) using x*tanh(x/delta)."""
    t = math.tanh(x / _CLM_SMOOTH)
    value = x * t
    derivative = t + (x / _CLM_SMOOTH) * (1.0 - t * t)
    return value, derivative


@dataclass(frozen=True)
class MosOperatingPoint:
    """Bias-point solution of one transistor.

    Attributes:
        ids: Channel current, drain to source [A].
        partials: dI_DS/dV_terminal for terminals 'd', 'g', 's', 'b' [S].
        i_f: Normalized forward current (= inversion coefficient in
            saturation).
        i_r: Normalized reverse current.
        gm: Gate transconductance magnitude |dI/dV_G| [S].
        gds: Output conductance dI_DS/dV_D [S].
        gms: Source transconductance magnitude [S].
        gmb: Bulk transconductance magnitude [S].
        region: 'weak' / 'moderate' / 'strong' inversion.
        saturated: True when the reverse current is negligible.
    """

    ids: float
    partials: dict[str, float]
    i_f: float
    i_r: float
    region: str
    saturated: bool

    @property
    def gm(self) -> float:
        return abs(self.partials["g"])

    @property
    def gds(self) -> float:
        return abs(self.partials["d"])

    @property
    def gms(self) -> float:
        return abs(self.partials["s"])

    @property
    def gmb(self) -> float:
        return abs(self.partials["b"])


@dataclass
class Mosfet:
    """A sized MOS transistor instance.

    Attributes:
        params: Flavour parameters (see :mod:`repro.devices.parameters`).
        w: Channel width [m].
        l: Channel length [m].
        vt_shift: Additive threshold shift [V] (mismatch / corners).
        beta_factor: Multiplicative current-factor error (mismatch).
        m: Parallel multiplicity.
    """

    params: MosParameters
    w: float
    l: float
    vt_shift: float = 0.0
    beta_factor: float = 1.0
    m: int = 1

    def __post_init__(self) -> None:
        if self.w < self.params.w_min:
            raise ModelError(
                f"W={self.w} below minimum {self.params.w_min} "
                f"for {self.params.name}")
        if self.l < self.params.l_min:
            raise ModelError(
                f"L={self.l} below minimum {self.params.l_min} "
                f"for {self.params.name}")
        if self.m < 1:
            raise ModelError(f"multiplicity must be >= 1, got {self.m}")
        if self.beta_factor <= 0.0:
            raise ModelError(f"beta_factor must be positive: {self.beta_factor}")

    def specific_current(self, temperature: float = T_NOMINAL) -> float:
        """I_spec of this sized instance (includes multiplicity) [A]."""
        base = self.params.specific_current(self.w, self.l, temperature)
        return base * self.beta_factor * self.m

    def evaluate(self, vd: float, vg: float, vs: float, vb: float,
                 temperature: float = T_NOMINAL) -> MosOperatingPoint:
        """Solve the large-signal model at the given terminal voltages."""
        sign = self.params.polarity.sign
        ut = thermal_voltage(temperature)
        # Polarity-normalised, bulk-referenced voltages: a conducting PMOS
        # looks exactly like a conducting NMOS in this frame.
        ug = sign * (vg - vb)
        ud = sign * (vd - vb)
        us = sign * (vs - vb)
        vt = self.params.vt_at(temperature) + self.vt_shift
        n = self.params.n
        vp = (ug - vt) / n

        a = (vp - us) / ut
        b = (vp - ud) / ut
        i_f = float(interp_f(a))
        i_r = float(interp_f(b))
        fpa = float(interp_f_derivative(a))
        fpb = float(interp_f_derivative(b))
        i_spec = self.specific_current(temperature)

        uds = ud - us
        sabs, dsabs = _smooth_abs(uds)
        lam_eff = self.params.lambda_ / (self.l * 1e6)
        clm = 1.0 + lam_eff * sabs

        core = i_f - i_r
        i_norm = core * clm  # normalized channel current with CLM

        # Partials in the normalized frame.
        d_ug = clm * (fpa - fpb) / (n * ut)
        d_us = -clm * fpa / ut - core * lam_eff * dsabs
        d_ud = clm * fpb / ut + core * lam_eff * dsabs

        ids = sign * i_spec * i_norm
        # Chain rule back to absolute terminal voltages: u_x = sign*(v_x-v_b)
        # so dI/dv_x = sign*(sign*i_spec)*d_ux = i_spec*d_ux.
        p_g = i_spec * d_ug
        p_d = i_spec * d_ud
        p_s = i_spec * d_us
        p_b = -(p_g + p_d + p_s)  # translation invariance

        ic = max(i_f, i_r)
        if ic < 0.1:
            region = "weak"
        elif ic < 10.0:
            region = "moderate"
        else:
            region = "strong"
        saturated = i_r < 0.05 * i_f if i_f > 0.0 else False

        return MosOperatingPoint(
            ids=ids,
            partials={"d": p_d, "g": p_g, "s": p_s, "b": p_b},
            i_f=i_f, i_r=i_r, region=region, saturated=saturated)

    def capacitances(self) -> dict[tuple[str, str], float]:
        """Lumped terminal-pair capacitances [F].

        Weak-inversion approximation with overlap and junction terms; these
        feed the transient engine as linear capacitors.  The DWell junction
        of the PMOS load is modelled separately (see
        :class:`repro.devices.diode.Diode`) because its decoupling is
        itself an experiment (Fig. 6d).
        """
        cox_area = self.params.cox * self.w * self.l * self.m
        c_ov = self.params.cov * self.w * self.m
        diff_len = 0.5e-6
        c_junction = self.params.cj * self.w * diff_len * self.m
        return {
            ("g", "s"): c_ov + 0.25 * cox_area,
            ("g", "d"): c_ov + 0.25 * cox_area,
            ("g", "b"): 0.3 * cox_area,
            ("d", "b"): c_junction,
            ("s", "b"): c_junction,
        }

    def gate_capacitance(self) -> float:
        """Total gate capacitance [F]: the load one such gate presents."""
        caps = self.capacitances()
        return caps[("g", "s")] + caps[("g", "d")] + caps[("g", "b")]


@dataclass(frozen=True)
class MosBankResult:
    """Array-valued large-signal solution of a :class:`MosBank`.

    Each attribute is one value per device, in bank order.
    """

    ids: np.ndarray
    p_d: np.ndarray
    p_g: np.ndarray
    p_s: np.ndarray
    p_b: np.ndarray
    i_f: np.ndarray
    i_r: np.ndarray


class MosBank:
    """Array-valued EKV evaluation over a fixed set of devices.

    The MNA engine's vectorized assembler groups every MOS element of a
    circuit into one bank so a Newton iteration makes a single
    array-valued model call instead of one Python call per transistor.
    The math mirrors :meth:`Mosfet.evaluate` exactly (same
    interpolation, CLM smoothing and chain rule), just elementwise over
    numpy arrays.
    """

    def __init__(self, devices: Sequence[Mosfet],
                 temperatures: Sequence[float]) -> None:
        if len(devices) != len(temperatures):
            raise ModelError("one temperature per device required")
        self.n_devices = len(devices)
        self.sign = np.array([d.params.polarity.sign for d in devices],
                             dtype=float)
        self.vt = np.array(
            [d.params.vt_at(t) + d.vt_shift
             for d, t in zip(devices, temperatures)], dtype=float)
        self.n = np.array([d.params.n for d in devices], dtype=float)
        self.ut = np.array([thermal_voltage(t) for t in temperatures],
                           dtype=float)
        self.i_spec = np.array(
            [d.specific_current(t) for d, t in zip(devices, temperatures)],
            dtype=float)
        self.lam_eff = np.array(
            [d.params.lambda_ / (d.l * 1e6) for d in devices], dtype=float)
        # Precomputed packed / fused constants for evaluate()'s packed
        # elementwise pipeline (see there); all are exact element
        # copies or exact products, so results stay bit-identical to
        # the unpacked formulation.
        self._sign3 = np.tile(self.sign, 3)
        self._ut2 = np.tile(self.ut, 2)
        self._nut = self.n * self.ut
        self._sign_ispec = self.sign * self.i_spec
        self._ispec2 = np.tile(self.i_spec, 2)

    def overlay(self, vt: np.ndarray, i_spec: np.ndarray) -> "MosBank":
        """Shallow copy with ``vt`` / ``i_spec`` swapped for (lane-)
        overlaid arrays -- ``(n,)`` or stacked ``(..., n)`` -- and every
        derived packed constant rebuilt to match.  This is the only
        supported way to vary bank parameters after construction:
        assigning ``bank.i_spec`` directly leaves the precomputed
        ``_sign_ispec`` / ``_ispec2`` products stale."""
        bank = copy.copy(self)
        bank.vt = vt
        bank.i_spec = i_spec
        bank._sign_ispec = bank.sign * i_spec
        bank._ispec2 = np.tile(i_spec, 2)
        return bank

    def evaluate(self, vd: np.ndarray, vg: np.ndarray, vs: np.ndarray,
                 vb: np.ndarray) -> MosBankResult:
        """Channel currents and all terminal partials, one entry per
        device."""
        # The whole pipeline runs on packed arrays so every elementwise
        # kernel dispatches once over 2N/3N elements instead of two or
        # three times over N -- at the handful-of-devices sizes MNA
        # banks have, numpy dispatch overhead dominates the arithmetic.
        # ufuncs are elementwise, negation is exact, and all fused
        # constants preserve the original association order, so every
        # result is bit-identical to the unpacked formulation.
        # Packing happens along the trailing (device) axis so stacked
        # leading dimensions -- the batch engine passes (B, n) lanes --
        # ride through unchanged.
        n = vd.shape[-1]
        lead = vd.shape[:-1]
        v3 = np.empty(lead + (3 * n,))
        v3[..., :n] = vg
        v3[..., n:2 * n] = vs
        v3[..., 2 * n:] = vd
        vb3 = np.empty(lead + (3 * n,))
        vb3[..., :n] = vb
        vb3[..., n:2 * n] = vb
        vb3[..., 2 * n:] = vb
        u3 = self._sign3 * (v3 - vb3)   # [ug, us, ud]
        ug = u3[..., :n]
        us = u3[..., n:2 * n]
        ud = u3[..., 2 * n:]
        vp = (ug - self.vt) / self.n

        # Fused interp_f / interp_f_derivative: both share softplus(v/2),
        # so compute it once per argument (F = sp^2, F' = sp * sigmoid);
        # the forward/reverse arguments a = (vp-us)/ut, b = (vp-ud)/ut
        # ride the packed [us, ud] tail of u3.
        vp2 = np.empty(lead + (2 * n,))
        vp2[..., :n] = vp
        vp2[..., n:] = vp
        ab = (vp2 - u3[..., n:]) / self._ut2
        half = 0.5 * ab
        sp = np.logaddexp(0.0, half)
        i_fr = sp * sp
        i_f = i_fr[..., :n]
        i_r = i_fr[..., n:]
        # Only the lower bound needs guarding: exp(-x) underflows benignly
        # for large positive x but overflows for x below about -709.
        sig = 1.0 / (1.0 + np.exp(-np.maximum(half, -350.0)))
        fp = sp * sig

        uds = ud - us
        w = uds / _CLM_SMOOTH
        t = np.tanh(w)
        sabs = uds * t
        dsabs = t + w * (1.0 - t * t)
        lam_eff = self.lam_eff
        clm = 1.0 + lam_eff * sabs

        core = i_f - i_r
        d_ug = clm * (fp[..., :n] - fp[..., n:]) / self._nut
        # d_us = -clm fpa/ut - S and d_ud = clm fpb/ut + S share the
        # packed sum (clm fp)/ut + S; the source half is then negated
        # exactly.
        clm2 = np.empty(lead + (2 * n,))
        clm2[..., :n] = clm
        clm2[..., n:] = clm
        s_clm = core * lam_eff * dsabs
        s2 = np.empty(lead + (2 * n,))
        s2[..., :n] = s_clm
        s2[..., n:] = s_clm
        sum2 = clm2 * fp / self._ut2 + s2

        ids = self._sign_ispec * core * clm
        p_g = self.i_spec * d_ug
        p_sd = self._ispec2 * sum2
        p_s = -p_sd[..., :n]
        p_d = p_sd[..., n:]
        p_b = -(p_g + p_d + p_s)
        return MosBankResult(ids=ids, p_d=p_d, p_g=p_g, p_s=p_s, p_b=p_b,
                             i_f=i_f, i_r=i_r)

    def operating_points(self, vd: np.ndarray, vg: np.ndarray,
                         vs: np.ndarray,
                         vb: np.ndarray) -> list[MosOperatingPoint]:
        """Per-device :class:`MosOperatingPoint` records, in bank
        order."""
        r = self.evaluate(vd, vg, vs, vb)
        ic = np.maximum(r.i_f, r.i_r)
        points = []
        for k in range(self.n_devices):
            if ic[k] < 0.1:
                region = "weak"
            elif ic[k] < 10.0:
                region = "moderate"
            else:
                region = "strong"
            saturated = (r.i_r[k] < 0.05 * r.i_f[k]
                         if r.i_f[k] > 0.0 else False)
            points.append(MosOperatingPoint(
                ids=float(r.ids[k]),
                partials={"d": float(r.p_d[k]), "g": float(r.p_g[k]),
                          "s": float(r.p_s[k]), "b": float(r.p_b[k])},
                i_f=float(r.i_f[k]), i_r=float(r.i_r[k]),
                region=region, saturated=saturated))
        return points
