"""Device models: EKV MOS transistors, diodes, passives, process/PVT.

This package is the foundation the whole platform rests on.  The paper's
circuits live in the subthreshold (weak-inversion) region where the MOS
I-V is exponential; the EKV formulation used here is continuous across
weak, moderate and strong inversion so the same model serves the STSCL
gates (deep weak inversion), the current-mode analog blocks, and the
above-threshold CMOS baseline used for comparison.
"""

from .parameters import (
    MosPolarity,
    MosParameters,
    Technology,
    GENERIC_180NM,
    nmos_180,
    pmos_180,
    nmos_180_hvt,
    pmos_180_thick_oxide,
)
from .ekv import (
    inversion_coefficient,
    interp_f,
    interp_f_derivative,
    normalized_currents,
)
from .mosfet import Mosfet, MosOperatingPoint
from .diode import Diode, DiodeParameters, NWELL_DIODE_180
from .passives import resistor_current, capacitor_charge
from .process import ProcessCorner, CornerSpec, CORNERS, PvtPoint, apply_pvt
from .mismatch import MismatchModel, MismatchSample, PELGROM_180NM

__all__ = [
    "MosPolarity", "MosParameters", "Technology", "GENERIC_180NM",
    "nmos_180", "pmos_180", "nmos_180_hvt", "pmos_180_thick_oxide",
    "inversion_coefficient", "interp_f", "interp_f_derivative",
    "normalized_currents",
    "Mosfet", "MosOperatingPoint",
    "Diode", "DiodeParameters", "NWELL_DIODE_180",
    "resistor_current", "capacitor_charge",
    "ProcessCorner", "CornerSpec", "CORNERS", "PvtPoint", "apply_pvt",
    "MismatchModel", "MismatchSample", "PELGROM_180NM",
]
