"""Device characterisation: the QA sweeps a PDK ships with.

Given a :class:`~repro.devices.mosfet.Mosfet`, these helpers generate
the standard curves (I_D-V_G, I_D-V_D) and extract the figures of
merit every subthreshold design decision hangs on:

* threshold voltage (constant-current method),
* subthreshold swing [mV/decade],
* on/off current ratio,
* gm/I_D sweep against the EKV ideal.

They exist so the calibration in ``devices/parameters.py`` is auditable
-- ``tests/unit/devices/test_characterization.py`` pins the extracted
numbers to the 0.18 um targets the rest of the repo assumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import T_NOMINAL, thermal_voltage
from ..errors import AnalysisError
from .mosfet import Mosfet


def id_vg_curve(device: Mosfet, vd: float = 0.6,
                vg_stop: float = 1.2, points: int = 121,
                temperature: float = T_NOMINAL
                ) -> tuple[np.ndarray, np.ndarray]:
    """Transfer curve: (V_G, I_D) at fixed V_D, source/bulk grounded."""
    if points < 3:
        raise AnalysisError(f"need >= 3 points, got {points}")
    v_gate = np.linspace(0.0, vg_stop, points)
    currents = np.array([
        device.evaluate(vd=vd, vg=float(v), vs=0.0, vb=0.0,
                        temperature=temperature).ids
        for v in v_gate])
    return v_gate, currents


def id_vd_curve(device: Mosfet, vg: float,
                vd_stop: float = 1.2, points: int = 61,
                temperature: float = T_NOMINAL
                ) -> tuple[np.ndarray, np.ndarray]:
    """Output curve: (V_D, I_D) at fixed V_G."""
    if points < 3:
        raise AnalysisError(f"need >= 3 points, got {points}")
    v_drain = np.linspace(0.0, vd_stop, points)
    currents = np.array([
        device.evaluate(vd=float(v), vg=vg, vs=0.0, vb=0.0,
                        temperature=temperature).ids
        for v in v_drain])
    return v_drain, currents


def extract_vt_constant_current(device: Mosfet,
                                i_criterion_per_square: float = 1e-7,
                                vd: float = 0.05,
                                temperature: float = T_NOMINAL) -> float:
    """Threshold by the constant-current method [V].

    The industry convention: V_T is the V_G at which I_D equals a
    criterion current (here 100 nA) scaled by W/L, at low V_D.
    """
    criterion = i_criterion_per_square * device.w / device.l
    v_gate, currents = id_vg_curve(device, vd=vd, vg_stop=1.4,
                                   points=281, temperature=temperature)
    above = np.nonzero(currents >= criterion)[0]
    if above.size == 0 or above[0] == 0:
        raise AnalysisError("criterion current not bracketed by sweep")
    k = int(above[0])
    v1, v2 = v_gate[k - 1], v_gate[k]
    i1, i2 = currents[k - 1], currents[k]
    # Interpolate in log-current (exponential region).
    frac = (math.log(criterion) - math.log(i1)) \
        / (math.log(i2) - math.log(i1))
    return float(v1 + frac * (v2 - v1))


def extract_subthreshold_swing(device: Mosfet, vd: float = 0.6,
                               temperature: float = T_NOMINAL) -> float:
    """Subthreshold swing S [mV/decade] from the steepest region.

    Ideal at room temperature: n * U_T * ln(10) ~ 78 mV/dec for
    n = 1.3.
    """
    v_gate, currents = id_vg_curve(device, vd=vd, vg_stop=0.5,
                                   points=201, temperature=temperature)
    mask = currents > 1e-14
    v_gate, currents = v_gate[mask], currents[mask]
    if v_gate.size < 10:
        raise AnalysisError("too little subthreshold data")
    slopes = np.diff(np.log10(currents)) / np.diff(v_gate)
    return float(1e3 / slopes.max())


def on_off_ratio(device: Mosfet, vdd: float = 1.0,
                 temperature: float = T_NOMINAL) -> float:
    """I_on(V_G = V_D = V_DD) / I_off(V_G = 0, V_D = V_DD)."""
    on = device.evaluate(vd=vdd, vg=vdd, vs=0.0, vb=0.0,
                         temperature=temperature).ids
    off = device.evaluate(vd=vdd, vg=0.0, vs=0.0, vb=0.0,
                          temperature=temperature).ids
    if off <= 0.0:
        raise AnalysisError("off current is non-positive")
    return float(on / off)


@dataclass(frozen=True)
class DeviceReport:
    """One device's extracted figures of merit.

    Attributes:
        vt: Constant-current threshold [V].
        swing_mv_dec: Subthreshold swing [mV/decade].
        on_off: I_on/I_off at 1 V.
        gm_id_peak: Peak gm/I_D [1/V].
    """

    vt: float
    swing_mv_dec: float
    on_off: float
    gm_id_peak: float


def characterize(device: Mosfet,
                 temperature: float = T_NOMINAL) -> DeviceReport:
    """Run the full QA extraction on one device."""
    ut = thermal_voltage(temperature)
    gm_id_ideal = 1.0 / (device.params.n * ut)
    # Measure gm/ID in deep weak inversion.
    op = device.evaluate(vd=0.6, vg=0.15, vs=0.0, vb=0.0,
                         temperature=temperature)
    gm_id = op.gm / op.ids if op.ids > 0.0 else 0.0
    return DeviceReport(
        vt=extract_vt_constant_current(device, temperature=temperature),
        swing_mv_dec=extract_subthreshold_swing(
            device, temperature=temperature),
        on_off=on_off_ratio(device, temperature=temperature),
        gm_id_peak=float(min(gm_id, gm_id_ideal * 1.05)))
