"""Junction diode model (exponential, with junction capacitance).

Its main role in this reproduction is the reverse-biased nwell-substrate
junction D_Well of the PMOS load devices (paper Fig. 6a): its junction
capacitance loads the pre-amplifier output, and decoupling it through the
series device M_C is experiment E5 (Fig. 6d).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import T_NOMINAL, thermal_voltage
from ..errors import ModelError

_EXP_LIMIT = 350.0


@dataclass(frozen=True)
class DiodeParameters:
    """Static diode parameters.

    Attributes:
        name: Label.
        i_s: Saturation current [A].
        n: Ideality factor.
        cj0: Zero-bias junction capacitance [F].
        vj: Built-in potential [V].
        mj: Grading coefficient.
    """

    name: str
    i_s: float = 1e-16
    n: float = 1.0
    cj0: float = 10e-15
    vj: float = 0.7
    mj: float = 0.5

    def __post_init__(self) -> None:
        if self.i_s <= 0.0:
            raise ModelError(f"saturation current must be positive: {self.i_s}")
        if self.n < 1.0:
            raise ModelError(f"ideality factor must be >= 1: {self.n}")
        if self.cj0 < 0.0:
            raise ModelError(f"cj0 must be >= 0: {self.cj0}")


#: Nwell-to-substrate junction of a load-sized PMOS in 0.18 um: the well
#: is large compared to the device, hence a relatively big capacitance --
#: this is exactly why the paper needs the decoupling trick of Fig. 6b.
NWELL_DIODE_180 = DiodeParameters(
    name="nwell_substrate_180", i_s=5e-17, n=1.05, cj0=60e-15, vj=0.65,
    mj=0.4)


@dataclass
class Diode:
    """A diode instance: anode-to-cathode exponential junction."""

    params: DiodeParameters
    area: float = 1.0

    def current(self, v_ak: float,
                temperature: float = T_NOMINAL) -> tuple[float, float]:
        """Return (current, conductance) at anode-cathode voltage ``v_ak``.

        A small ohmic leakage keeps the Jacobian nonsingular in deep
        reverse bias.
        """
        ut = thermal_voltage(temperature) * self.params.n
        x = min(v_ak / ut, _EXP_LIMIT)
        e = math.exp(x)
        i_s = self.params.i_s * self.area
        current = i_s * (e - 1.0)
        conductance = i_s * e / ut
        g_leak = 1e-15
        return current + g_leak * v_ak, conductance + g_leak

    def capacitance(self, v_ak: float) -> float:
        """Bias-dependent junction capacitance [F].

        Standard depletion formula below the built-in potential, linearised
        above it to avoid the singularity.
        """
        cj0 = self.params.cj0 * self.area
        vj, mj = self.params.vj, self.params.mj
        fc = 0.5
        if v_ak < fc * vj:
            return cj0 / (1.0 - v_ak / vj) ** mj
        # Linear extension beyond fc*vj (SPICE-style).
        f1 = (1.0 - fc) ** (1.0 + mj)
        return cj0 / f1 * (1.0 - fc * (1.0 + mj) + mj * v_ak / vj)

    def charge(self, v_ak: float) -> float:
        """Depletion charge [C], the analytic integral of ``capacitance``.

        Having charge and capacitance analytically consistent keeps the
        transient integrator charge-conserving.
        """
        cj0 = self.params.cj0 * self.area
        vj, mj = self.params.vj, self.params.mj
        fc = 0.5
        v_knee = fc * vj
        if v_ak < v_knee:
            return cj0 * vj / (1.0 - mj) * (
                1.0 - (1.0 - v_ak / vj) ** (1.0 - mj))
        q_knee = cj0 * vj / (1.0 - mj) * (1.0 - (1.0 - fc) ** (1.0 - mj))
        f1 = (1.0 - fc) ** (1.0 + mj)
        # Integral of the linear extension from v_knee to v_ak.
        dv = v_ak - v_knee
        slope = cj0 / f1 * mj / vj
        c_knee = cj0 / f1 * (1.0 - fc * (1.0 + mj) + mj * v_knee / vj)
        return q_knee + c_knee * dv + 0.5 * slope * dv * dv
