"""Junction diode model (exponential, with junction capacitance).

Its main role in this reproduction is the reverse-biased nwell-substrate
junction D_Well of the PMOS load devices (paper Fig. 6a): its junction
capacitance loads the pre-amplifier output, and decoupling it through the
series device M_C is experiment E5 (Fig. 6d).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..constants import T_NOMINAL, thermal_voltage
from ..errors import ModelError

_EXP_LIMIT = 350.0


@dataclass(frozen=True)
class DiodeParameters:
    """Static diode parameters.

    Attributes:
        name: Label.
        i_s: Saturation current [A].
        n: Ideality factor.
        cj0: Zero-bias junction capacitance [F].
        vj: Built-in potential [V].
        mj: Grading coefficient.
    """

    name: str
    i_s: float = 1e-16
    n: float = 1.0
    cj0: float = 10e-15
    vj: float = 0.7
    mj: float = 0.5

    def __post_init__(self) -> None:
        if self.i_s <= 0.0:
            raise ModelError(f"saturation current must be positive: {self.i_s}")
        if self.n < 1.0:
            raise ModelError(f"ideality factor must be >= 1: {self.n}")
        if self.cj0 < 0.0:
            raise ModelError(f"cj0 must be >= 0: {self.cj0}")


#: Nwell-to-substrate junction of a load-sized PMOS in 0.18 um: the well
#: is large compared to the device, hence a relatively big capacitance --
#: this is exactly why the paper needs the decoupling trick of Fig. 6b.
NWELL_DIODE_180 = DiodeParameters(
    name="nwell_substrate_180", i_s=5e-17, n=1.05, cj0=60e-15, vj=0.65,
    mj=0.4)


@dataclass
class Diode:
    """A diode instance: anode-to-cathode exponential junction."""

    params: DiodeParameters
    area: float = 1.0

    def current(self, v_ak: float,
                temperature: float = T_NOMINAL) -> tuple[float, float]:
        """Return (current, conductance) at anode-cathode voltage ``v_ak``.

        A small ohmic leakage keeps the Jacobian nonsingular in deep
        reverse bias.
        """
        ut = thermal_voltage(temperature) * self.params.n
        x = min(v_ak / ut, _EXP_LIMIT)
        e = math.exp(x)
        i_s = self.params.i_s * self.area
        current = i_s * (e - 1.0)
        conductance = i_s * e / ut
        g_leak = 1e-15
        return current + g_leak * v_ak, conductance + g_leak

    def capacitance(self, v_ak: float) -> float:
        """Bias-dependent junction capacitance [F].

        Standard depletion formula below the built-in potential, linearised
        above it to avoid the singularity.
        """
        cj0 = self.params.cj0 * self.area
        vj, mj = self.params.vj, self.params.mj
        fc = 0.5
        if v_ak < fc * vj:
            return cj0 / (1.0 - v_ak / vj) ** mj
        # Linear extension beyond fc*vj (SPICE-style).
        f1 = (1.0 - fc) ** (1.0 + mj)
        return cj0 / f1 * (1.0 - fc * (1.0 + mj) + mj * v_ak / vj)

    def charge(self, v_ak: float) -> float:
        """Depletion charge [C], the analytic integral of ``capacitance``.

        Having charge and capacitance analytically consistent keeps the
        transient integrator charge-conserving.
        """
        cj0 = self.params.cj0 * self.area
        vj, mj = self.params.vj, self.params.mj
        fc = 0.5
        v_knee = fc * vj
        if v_ak < v_knee:
            return cj0 * vj / (1.0 - mj) * (
                1.0 - (1.0 - v_ak / vj) ** (1.0 - mj))
        q_knee = cj0 * vj / (1.0 - mj) * (1.0 - (1.0 - fc) ** (1.0 - mj))
        f1 = (1.0 - fc) ** (1.0 + mj)
        # Integral of the linear extension from v_knee to v_ak.
        dv = v_ak - v_knee
        slope = cj0 / f1 * mj / vj
        c_knee = cj0 / f1 * (1.0 - fc * (1.0 + mj) + mj * v_knee / vj)
        return q_knee + c_knee * dv + 0.5 * slope * dv * dv


class DiodeBank:
    """Array-valued evaluation over a fixed set of diode instances.

    Mirrors :meth:`Diode.current` / :meth:`Diode.capacitance` /
    :meth:`Diode.charge` elementwise so the MNA assembler can restamp
    every junction of a circuit with one numpy call.  The depletion
    branch selection is done with masked evaluation so the unused
    branch never sees an invalid base for the fractional power.
    """

    _G_LEAK = 1e-15
    _FC = 0.5

    def __init__(self, diodes: Sequence[Diode],
                 temperatures: Sequence[float]) -> None:
        if len(diodes) != len(temperatures):
            raise ModelError("one temperature per diode required")
        self.n_diodes = len(diodes)
        self.i_s = np.array([d.params.i_s * d.area for d in diodes],
                            dtype=float)
        self.n_ut = np.array(
            [thermal_voltage(t) * d.params.n
             for d, t in zip(diodes, temperatures)], dtype=float)
        self.cj0 = np.array([d.params.cj0 * d.area for d in diodes],
                            dtype=float)
        self.vj = np.array([d.params.vj for d in diodes], dtype=float)
        self.mj = np.array([d.params.mj for d in diodes], dtype=float)

    def current(self, v_ak: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(current, conductance) arrays at anode-cathode voltages."""
        x = np.minimum(v_ak / self.n_ut, _EXP_LIMIT)
        e = np.exp(x)
        current = self.i_s * (e - 1.0) + self._G_LEAK * v_ak
        conductance = self.i_s * e / self.n_ut + self._G_LEAK
        return current, conductance

    def capacitance(self, v_ak: np.ndarray) -> np.ndarray:
        """Bias-dependent junction capacitance array [F]."""
        fc = self._FC
        v_knee = fc * self.vj
        below = v_ak < v_knee
        v_safe = np.where(below, v_ak, 0.0)
        c_below = self.cj0 / (1.0 - v_safe / self.vj) ** self.mj
        f1 = (1.0 - fc) ** (1.0 + self.mj)
        c_above = self.cj0 / f1 * (1.0 - fc * (1.0 + self.mj)
                                   + self.mj * v_ak / self.vj)
        return np.where(below, c_below, c_above)

    def charge(self, v_ak: np.ndarray) -> np.ndarray:
        """Depletion charge array [C] (integral of ``capacitance``)."""
        fc = self._FC
        vj, mj, cj0 = self.vj, self.mj, self.cj0
        v_knee = fc * vj
        below = v_ak < v_knee
        v_safe = np.where(below, v_ak, 0.0)
        q_below = cj0 * vj / (1.0 - mj) * (
            1.0 - (1.0 - v_safe / vj) ** (1.0 - mj))
        q_knee = cj0 * vj / (1.0 - mj) * (1.0 - (1.0 - fc) ** (1.0 - mj))
        f1 = (1.0 - fc) ** (1.0 + mj)
        dv = v_ak - v_knee
        slope = cj0 / f1 * mj / vj
        c_knee = cj0 / f1 * (1.0 - fc * (1.0 + mj) + mj * v_knee / vj)
        q_above = q_knee + c_knee * dv + 0.5 * slope * dv * dv
        return np.where(below, q_below, q_above)
