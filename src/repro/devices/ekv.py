"""Core EKV 2.6-style large-signal equations.

The EKV model expresses the drain current of a MOS transistor as the
difference of a *forward* and a *reverse* component, each a function of
the pinch-off voltage minus the source (resp. drain) voltage, all
referenced to the local substrate:

    I_D = I_spec * (i_f - i_r)
    i_f = F((V_P - V_S) / U_T),   i_r = F((V_P - V_D) / U_T)
    V_P = (V_G - V_T0) / n
    F(v) = ln(1 + exp(v / 2))^2

``F`` interpolates smoothly between weak inversion (F -> exp(v), the
exponential law the whole paper builds on) and strong inversion
(F -> v^2/4, the square law).  All functions here accept numpy arrays so
analytic sweeps vectorise; the SPICE engine calls them with scalars.
"""

from __future__ import annotations

import numpy as np

_HALF_LOG_LIMIT = 350.0  # exp() overflow guard in double precision


def _softplus(v: np.ndarray | float) -> np.ndarray | float:
    """Numerically safe ln(1 + exp(v))."""
    return np.logaddexp(0.0, v)


def _sigmoid(v: np.ndarray | float) -> np.ndarray | float:
    """Numerically safe logistic function 1 / (1 + exp(-v))."""
    v = np.clip(v, -_HALF_LOG_LIMIT, _HALF_LOG_LIMIT)
    return 1.0 / (1.0 + np.exp(-v))


def interp_f(v: np.ndarray | float) -> np.ndarray | float:
    """EKV interpolation function F(v) = ln(1 + exp(v/2))^2.

    Asymptotes: exp(v) for v << 0 (weak inversion), (v/2)^2 for v >> 0
    (strong inversion).
    """
    sp = _softplus(np.asarray(v, dtype=float) / 2.0)
    return sp * sp


def interp_f_derivative(v: np.ndarray | float) -> np.ndarray | float:
    """dF/dv = ln(1 + exp(v/2)) * sigmoid(v/2).

    Equals sqrt(F(v)) * sigmoid(v/2); needed for transconductances.
    """
    half = np.asarray(v, dtype=float) / 2.0
    return _softplus(half) * _sigmoid(half)


def normalized_currents(vp: np.ndarray | float,
                        vs: np.ndarray | float,
                        vd: np.ndarray | float,
                        ut: float) -> tuple:
    """Return (i_f, i_r), the normalized forward/reverse currents.

    All voltages bulk-referenced, ``ut`` the thermal voltage.
    """
    i_f = interp_f((np.asarray(vp) - np.asarray(vs)) / ut)
    i_r = interp_f((np.asarray(vp) - np.asarray(vd)) / ut)
    return i_f, i_r


def inversion_coefficient(i_d: np.ndarray | float,
                          i_spec: float) -> np.ndarray | float:
    """Inversion coefficient IC = I_D / I_spec.

    IC < 0.1 is deep weak inversion (the paper's target region), IC ~ 1 is
    moderate, IC > 10 strong inversion.
    """
    if i_spec <= 0.0:
        raise ValueError(f"i_spec must be positive, got {i_spec}")
    return np.asarray(i_d, dtype=float) / i_spec


def weak_inversion_current(i_spec: float, vg: np.ndarray | float,
                           vs: np.ndarray | float, vd: np.ndarray | float,
                           vt0: float, n: float,
                           ut: float) -> np.ndarray | float:
    """Pure weak-inversion (exponential) drain current, bulk-referenced.

    I_D = I_spec * exp((V_G - V_T0)/(n U_T)) * (exp(-V_S/U_T) - exp(-V_D/U_T))

    This is the closed form the paper's Eq.-level reasoning uses.  It is
    exposed separately from the full interpolated model both for tests
    (the full model must converge to it for IC << 1) and for fast
    analytic design helpers.
    """
    vg = np.asarray(vg, dtype=float)
    exponent = (vg - vt0) / (n * ut)
    exponent = np.clip(exponent, -_HALF_LOG_LIMIT, _HALF_LOG_LIMIT)
    gate_term = np.exp(exponent)
    vs_term = np.exp(np.clip(-np.asarray(vs, dtype=float) / ut,
                             -_HALF_LOG_LIMIT, _HALF_LOG_LIMIT))
    vd_term = np.exp(np.clip(-np.asarray(vd, dtype=float) / ut,
                             -_HALF_LOG_LIMIT, _HALF_LOG_LIMIT))
    return i_spec * gate_term * (vs_term - vd_term)


def gate_voltage_for_current(i_d: float, i_spec: float, vt0: float, n: float,
                             ut: float, vs: float = 0.0) -> float:
    """Invert the weak-inversion law: V_G giving ``i_d`` in saturation.

    Assumes V_D - V_S >> U_T (saturation, reverse current negligible) and
    bulk at the source reference.  Used by bias generators and the
    minimum-supply model (Fig. 9b).
    """
    if i_d <= 0.0:
        raise ValueError(f"drain current must be positive, got {i_d}")
    if i_spec <= 0.0:
        raise ValueError(f"i_spec must be positive, got {i_spec}")
    return vt0 + n * ut * (np.log(i_d / i_spec) + vs / ut)


def saturation_voltage(ic: float, ut: float) -> float:
    """Drain saturation voltage V_DS,sat as a function of IC.

    Weak inversion saturates in ~4 U_T independent of current; strong
    inversion needs the classical overdrive.  Smooth EKV approximation:
    V_DS,sat = U_T * (2 sqrt(IC + 0.25) + 3).
    """
    if ic < 0.0:
        raise ValueError(f"inversion coefficient must be >= 0, got {ic}")
    return ut * (2.0 * np.sqrt(ic + 0.25) + 3.0)


def transconductance_efficiency(ic: np.ndarray | float,
                                n: float, ut: float) -> np.ndarray | float:
    """gm/I_D as a function of inversion coefficient (EKV interpolation).

    gm/I_D = 1 / (n U_T (sqrt(IC + 0.25) + 0.5))

    Peaks at 1/(n U_T) in weak inversion -- the reason subthreshold
    current-mode circuits are the power-efficiency optimum the paper
    exploits.
    """
    ic = np.asarray(ic, dtype=float)
    return 1.0 / (n * ut * (np.sqrt(ic + 0.25) + 0.5))
