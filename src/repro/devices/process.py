"""Process corners and PVT points.

The paper's Fig. 3 argument is that STSCL decouples performance from
process parameters while CMOS does not.  Verifying that claim
quantitatively (experiment E6) needs corner models: this module applies
global VT and mobility shifts to a :class:`~repro.devices.parameters.MosParameters`
set, plus supply and temperature, as one immutable PVT point.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..constants import T_NOMINAL, celsius_to_kelvin
from ..errors import ModelError
from .parameters import MosParameters, MosPolarity, Technology


class ProcessCorner(enum.Enum):
    """Classic five-corner set (NMOS letter first)."""

    TT = "tt"
    FF = "ff"
    SS = "ss"
    FS = "fs"
    SF = "sf"


@dataclass(frozen=True)
class CornerSpec:
    """Global shifts a corner applies.

    ``vt_shift_*`` are additive threshold shifts [V]; ``beta_factor_*``
    multiply the current factor.  Fast = lower VT, higher mobility.
    """

    nmos_vt_shift: float
    nmos_beta_factor: float
    pmos_vt_shift: float
    pmos_beta_factor: float


#: 3-sigma-ish global corner shifts typical of a 0.18 um node.
CORNERS: dict[ProcessCorner, CornerSpec] = {
    ProcessCorner.TT: CornerSpec(0.0, 1.0, 0.0, 1.0),
    ProcessCorner.FF: CornerSpec(-0.06, 1.12, -0.06, 1.12),
    ProcessCorner.SS: CornerSpec(+0.06, 0.88, +0.06, 0.88),
    ProcessCorner.FS: CornerSpec(-0.06, 1.12, +0.06, 0.88),
    ProcessCorner.SF: CornerSpec(+0.06, 0.88, -0.06, 1.12),
}


@dataclass(frozen=True)
class PvtPoint:
    """One (process, voltage, temperature) condition.

    Attributes:
        corner: Global process corner.
        vdd: Supply voltage [V].
        temperature: Junction temperature [K].
    """

    corner: ProcessCorner = ProcessCorner.TT
    vdd: float = 1.0
    temperature: float = T_NOMINAL

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ModelError(f"vdd must be positive, got {self.vdd}")
        if self.temperature <= 0.0:
            raise ModelError(
                f"temperature must be positive, got {self.temperature}")

    @classmethod
    def at_celsius(cls, corner: ProcessCorner = ProcessCorner.TT,
                   vdd: float = 1.0, temp_c: float = 27.0) -> "PvtPoint":
        """Build a PVT point with the temperature given in Celsius."""
        return cls(corner=corner, vdd=vdd,
                   temperature=celsius_to_kelvin(temp_c))


def apply_corner(params: MosParameters, corner: ProcessCorner) -> MosParameters:
    """Return device parameters shifted to ``corner``."""
    spec = CORNERS[corner]
    if params.polarity is MosPolarity.NMOS:
        vt_shift, beta = spec.nmos_vt_shift, spec.nmos_beta_factor
    else:
        vt_shift, beta = spec.pmos_vt_shift, spec.pmos_beta_factor
    return params.replace(vt0=params.vt0 + vt_shift, kp=params.kp * beta)


def apply_pvt(params: MosParameters, pvt: PvtPoint) -> MosParameters:
    """Corner-shift device parameters for ``pvt`` (temperature is applied
    at evaluation time by the model itself, so only the corner matters
    here; the function exists so call-sites read uniformly)."""
    return apply_corner(params, pvt.corner)


def corner_technology(tech: Technology, corner: ProcessCorner) -> Technology:
    """Return a technology with every flavour shifted to ``corner``."""
    return Technology(
        name=f"{tech.name}_{corner.value}",
        nmos=apply_corner(tech.nmos, corner),
        pmos=apply_corner(tech.pmos, corner),
        nmos_hvt=apply_corner(tech.nmos_hvt, corner),
        pmos_thick=apply_corner(tech.pmos_thick, corner),
        supply_nominal=tech.supply_nominal,
        metal_cap_per_um=tech.metal_cap_per_um)
