"""Technology and per-device MOS parameters (generic 0.18 um CMOS).

The paper's prototype is fabricated in 0.18 um CMOS.  We do not have the
foundry PDK, so :data:`GENERIC_180NM` carries textbook-typical values for
that node.  Every experiment reads its device parameters from here, which
makes the calibration assumptions auditable in one place (see DESIGN.md
section 5).
"""

from __future__ import annotations

import dataclasses
import enum
import math
from dataclasses import dataclass

from ..constants import EPSILON_0, EPSILON_SIO2, T_NOMINAL, thermal_voltage
from ..errors import ModelError


class MosPolarity(enum.Enum):
    """Channel polarity of a MOS transistor."""

    NMOS = 1
    PMOS = -1

    @property
    def sign(self) -> int:
        """+1 for NMOS, -1 for PMOS; used to fold both into one equation."""
        return self.value


@dataclass(frozen=True)
class MosParameters:
    """Static EKV parameters of one MOS device flavour.

    Voltages are magnitudes: ``vt0`` is positive for both polarities and
    the polarity sign is applied inside the model.

    Attributes:
        name: Flavour label, e.g. ``"nmos_180"``.
        polarity: NMOS or PMOS.
        vt0: Threshold voltage magnitude at the reference temperature [V].
        n: Subthreshold slope factor (dimensionless, > 1).
        kp: Transconductance parameter mu*Cox [A/V^2].
        tox: Gate-oxide thickness [m].
        lambda_: Channel-length-modulation coefficient per um of length
            [1/V * um]; the effective Early voltage is L_um / lambda_.
        vt_tempco: dVT/dT [V/K] (negative: VT drops with temperature).
        mobility_exponent: mu(T) = mu0 * (T/Tnom)**(-mobility_exponent).
        cj: Zero-bias junction capacitance per drain/source area [F/m^2].
        cov: Gate overlap capacitance per width [F/m].
        l_min: Minimum channel length [m].
        w_min: Minimum channel width [m].
    """

    name: str
    polarity: MosPolarity
    vt0: float
    n: float
    kp: float
    tox: float
    lambda_: float = 0.05
    vt_tempco: float = -1.0e-3
    mobility_exponent: float = 1.5
    cj: float = 1.0e-3
    cov: float = 3.0e-10
    l_min: float = 0.18e-6
    w_min: float = 0.22e-6

    def __post_init__(self) -> None:
        if self.vt0 <= 0.0:
            raise ModelError(f"vt0 must be a positive magnitude: {self.vt0}")
        if self.n < 1.0:
            raise ModelError(f"slope factor n must be >= 1: {self.n}")
        if self.kp <= 0.0:
            raise ModelError(f"kp must be positive: {self.kp}")
        if self.tox <= 0.0:
            raise ModelError(f"tox must be positive: {self.tox}")

    @property
    def cox(self) -> float:
        """Gate-oxide capacitance per unit area [F/m^2]."""
        return EPSILON_0 * EPSILON_SIO2 / self.tox

    def specific_current(self, w: float, l: float,
                         temperature: float = T_NOMINAL) -> float:
        """EKV specific current I_spec = 2 n mu Cox U_T^2 W/L [A].

        The boundary between weak and strong inversion: a device carrying
        I_D << I_spec is in weak inversion (the paper's operating region).
        """
        if w <= 0.0 or l <= 0.0:
            raise ModelError(f"W and L must be positive: W={w}, L={l}")
        ut = thermal_voltage(temperature)
        kp_t = self.kp * (temperature / T_NOMINAL) ** (-self.mobility_exponent)
        return 2.0 * self.n * kp_t * ut * ut * (w / l)

    def vt_at(self, temperature: float) -> float:
        """Threshold-voltage magnitude at ``temperature`` [K]."""
        return self.vt0 + self.vt_tempco * (temperature - T_NOMINAL)

    def leakage_per_square(self, temperature: float = T_NOMINAL) -> float:
        """Subthreshold leakage at V_GS=0, V_DS>>U_T for W/L = 1 [A].

        This is the CMOS-baseline ``I_off`` that the STSCL comparison in
        Fig. 3 / ref [11] hinges on.
        """
        ut = thermal_voltage(temperature)
        i_spec = self.specific_current(1e-6, 1e-6, temperature)
        return i_spec * math.exp(-self.vt_at(temperature) / (self.n * ut))

    def replace(self, **changes) -> "MosParameters":
        """Return a copy with ``changes`` applied (corner/mismatch shifts)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class Technology:
    """A process node: the set of device flavours available to a design."""

    name: str
    nmos: MosParameters
    pmos: MosParameters
    nmos_hvt: MosParameters
    pmos_thick: MosParameters
    supply_nominal: float = 1.8
    metal_cap_per_um: float = 0.08e-15

    def flavour(self, name: str) -> MosParameters:
        """Look up a device flavour by its ``name`` field."""
        for params in (self.nmos, self.pmos, self.nmos_hvt, self.pmos_thick):
            if params.name == name:
                return params
        raise ModelError(f"unknown device flavour {name!r} in {self.name}")


def _make_generic_180nm() -> Technology:
    nmos = MosParameters(
        name="nmos_180", polarity=MosPolarity.NMOS,
        vt0=0.45, n=1.30, kp=300e-6, tox=4.1e-9, lambda_=0.06)
    pmos = MosParameters(
        name="pmos_180", polarity=MosPolarity.PMOS,
        vt0=0.45, n=1.35, kp=70e-6, tox=4.1e-9, lambda_=0.08)
    # High-VT flavour used for the tail current source M_B (Sec. II-A2):
    # precise tail control with negligible off-leakage.
    nmos_hvt = MosParameters(
        name="nmos_180_hvt", polarity=MosPolarity.NMOS,
        vt0=0.60, n=1.32, kp=280e-6, tox=4.1e-9, lambda_=0.05)
    # Thick-oxide PMOS for negligible gate leakage at pA bias (Sec. II-A2).
    pmos_thick = MosParameters(
        name="pmos_180_thick", polarity=MosPolarity.PMOS,
        vt0=0.55, n=1.40, kp=45e-6, tox=7.0e-9, lambda_=0.07)
    return Technology(
        name="generic_180nm", nmos=nmos, pmos=pmos,
        nmos_hvt=nmos_hvt, pmos_thick=pmos_thick, supply_nominal=1.8)


#: The technology every experiment in this repo is calibrated against.
GENERIC_180NM = _make_generic_180nm()


def nmos_180() -> MosParameters:
    """Standard-VT NMOS of the generic 0.18 um node."""
    return GENERIC_180NM.nmos


def pmos_180() -> MosParameters:
    """Standard-VT PMOS of the generic 0.18 um node."""
    return GENERIC_180NM.pmos


def nmos_180_hvt() -> MosParameters:
    """High-VT NMOS (tail current sources)."""
    return GENERIC_180NM.nmos_hvt


def pmos_180_thick_oxide() -> MosParameters:
    """Thick-oxide PMOS (gate-leakage-free loads)."""
    return GENERIC_180NM.pmos_thick
