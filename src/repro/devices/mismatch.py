"""Pelgrom-law local mismatch sampling.

Static non-linearity of the paper's ADC (Fig. 11: INL 1.0 LSB, DNL
0.4 LSB) is dominated by local device mismatch: comparator/preamp offsets,
folder current errors and reference-ladder resistance errors.  The
Pelgrom model generates all of these from two technology constants:

    sigma(dVT)      = A_VT  / sqrt(W*L)
    sigma(dbeta)/b  = A_beta / sqrt(W*L)

with W, L in um and the A coefficients in mV*um and %*um respectively.
The paper's remedy -- "using large enough transistor sizes can minimize
the effect of current mismatch" (Sec. III-B) -- is exactly the 1/sqrt(WL)
scaling this module implements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from .mosfet import Mosfet


@dataclass(frozen=True)
class MismatchModel:
    """Technology mismatch coefficients.

    Attributes:
        a_vt: Threshold-voltage Pelgrom coefficient [V*m] (e.g. 4 mV*um
            = 4e-9 V*m).
        a_beta: Current-factor Pelgrom coefficient [1*m] (e.g. 1 %*um
            = 1e-8).
    """

    a_vt: float = 4.0e-9
    a_beta: float = 1.0e-8

    def sigma_vt(self, w: float, l: float) -> float:
        """Std-dev of a single device's VT mismatch [V], W/L in metres."""
        if w <= 0.0 or l <= 0.0:
            raise ModelError(f"W and L must be positive: {w}, {l}")
        return self.a_vt / np.sqrt(w * l)

    def sigma_beta(self, w: float, l: float) -> float:
        """Relative std-dev of the current factor, W/L in metres."""
        if w <= 0.0 or l <= 0.0:
            raise ModelError(f"W and L must be positive: {w}, {l}")
        return self.a_beta / np.sqrt(w * l)

    def sigma_pair_offset(self, w: float, l: float) -> float:
        """Input-referred offset std-dev of a differential pair [V].

        Two devices mismatch independently: sqrt(2) * sigma_vt of one.
        (Weak inversion: beta mismatch maps onto VT via n*U_T*ln -> small;
        we fold it in with the usual n*U_T factor at call sites that need
        the refinement.)
        """
        return np.sqrt(2.0) * self.sigma_vt(w, l)

    def sigma_mirror_gain(self, w: float, l: float, n: float,
                          ut: float) -> float:
        """Relative std-dev of a 1:1 current-mirror ratio (weak inversion).

        dI/I = dbeta/beta + dVT/(n*U_T), the two contributions independent.
        """
        s_beta = self.sigma_beta(w, l)
        s_vt_term = self.sigma_vt(w, l) / (n * ut)
        return float(np.sqrt(2.0) * np.hypot(s_beta, s_vt_term))


#: Typical 0.18 um mismatch coefficients (thin oxide).
PELGROM_180NM = MismatchModel(a_vt=4.0e-9, a_beta=1.0e-8)


@dataclass(frozen=True)
class MismatchSample:
    """One sampled (dVT, dbeta) pair for a single device."""

    vt_shift: float
    beta_factor: float


class MismatchSampler:
    """Draws per-device mismatch with a private RNG (reproducible runs)."""

    def __init__(self, model: MismatchModel = PELGROM_180NM,
                 seed: int | None = None) -> None:
        self.model = model
        self._rng = np.random.default_rng(seed)

    def sample(self, w: float, l: float) -> MismatchSample:
        """Draw mismatch for one device of size W x L [m]."""
        vt_shift = float(self._rng.normal(0.0, self.model.sigma_vt(w, l)))
        rel = float(self._rng.normal(0.0, self.model.sigma_beta(w, l)))
        return MismatchSample(vt_shift=vt_shift,
                              beta_factor=max(0.1, 1.0 + rel))

    def sample_bank(self, devices) -> tuple[np.ndarray, np.ndarray]:
        """Draw mismatch for a whole device list at once.

        Returns ``(vt_delta, beta_scale)`` arrays aligned with
        ``devices`` -- the exact shape a
        :class:`~repro.spice.batch.LaneSpec` wants.  Draws go through
        :meth:`sample` one device at a time, so the RNG stream (and
        therefore the population) is bit-identical to a serial loop
        that perturbs each device individually.
        """
        vt_delta = np.empty(len(devices))
        beta_scale = np.empty(len(devices))
        for k, device in enumerate(devices):
            draw = self.sample(device.w, device.l)
            vt_delta[k] = draw.vt_shift
            beta_scale[k] = draw.beta_factor
        return vt_delta, beta_scale

    def perturb(self, device: Mosfet) -> Mosfet:
        """Return a copy of ``device`` with fresh sampled mismatch."""
        draw = self.sample(device.w, device.l)
        return Mosfet(params=device.params, w=device.w, l=device.l,
                      vt_shift=device.vt_shift + draw.vt_shift,
                      beta_factor=device.beta_factor * draw.beta_factor,
                      m=device.m)

    def pair_offset(self, w: float, l: float) -> float:
        """Draw one input-referred offset for a differential pair [V]."""
        return float(self._rng.normal(
            0.0, self.model.sigma_pair_offset(w, l)))
