"""The mixed-signal design platform: the paper's headline deliverable.

:class:`MixedSignalPlatform` is the one-object view of the whole system
-- the ADC chip, its encoder, the PLL and the PMU -- with a single
``set_sample_rate`` knob, exactly the usage model of Fig. 1.
:mod:`repro.platform_msys.optimizer` searches the STSCL design space
(V_SW, V_DD, C_L, I_SS) under headroom and noise-margin constraints.
"""

from .platform import MixedSignalPlatform, PlatformReport
from .optimizer import DesignPoint, optimize_gate_design
from .energy import (
    AcquisitionPlan,
    average_power,
    battery_lifetime,
    sustainable_duty,
)

__all__ = [
    "MixedSignalPlatform", "PlatformReport",
    "DesignPoint", "optimize_gate_design",
    "AcquisitionPlan", "average_power", "battery_lifetime",
    "sustainable_duty",
]
