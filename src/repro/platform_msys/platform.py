"""The single-knob mixed-signal platform (paper Fig. 1).

Typical use (this is ``examples/quickstart.py`` in miniature)::

    platform = MixedSignalPlatform.build(seed=7)
    report = platform.set_sample_rate(8e3)
    print(report.describe())
    codes = platform.convert(waveform, n_samples=1024)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..adc.fai import FaiAdc
from ..adc.metrics import SineTestReport
from ..adc.testbench import dynamic_test, linearity_test
from ..digital.encoder import EncoderSpec, build_fai_encoder
from ..digital.netlist import GateNetlist
from ..digital.sta import analyze_timing
from ..errors import DesignError
from ..pmu.controller import PmuOperatingPoint, PowerManagementUnit
from ..pmu.pll import BehavioralPll
from ..stscl.gate_model import StsclGateDesign
from ..stscl.supply import minimum_supply
from ..units import format_quantity


@dataclass(frozen=True)
class PlatformReport:
    """State of the platform at one operating point."""

    operating_point: PmuOperatingPoint
    encoder_f_max: float
    vdd_min_digital: float

    def describe(self) -> str:
        """Human-readable one-screen summary."""
        op = self.operating_point
        lines = [
            f"sample rate      : {format_quantity(op.f_sample, 'S/s')}",
            f"analog current   : {format_quantity(op.analog_current, 'A')}",
            f"digital I_SS/gate: {format_quantity(op.i_ss_digital, 'A')}",
            f"total power      : {format_quantity(op.total_power, 'W')}"
            f" (digital {format_quantity(op.digital_power, 'W')},"
            f" {100 * op.digital_fraction:.1f}%)",
            f"energy/sample    : {format_quantity(op.energy_per_sample, 'J')}",
            f"encoder f_max    : {format_quantity(self.encoder_f_max, 'Hz')}",
            f"digital V_DD,min : {self.vdd_min_digital:.3f}V",
        ]
        return "\n".join(lines)


class MixedSignalPlatform:
    """ADC + encoder + PLL + PMU behind one ``set_sample_rate`` knob."""

    def __init__(self, adc: FaiAdc, encoder: GateNetlist,
                 pmu: PowerManagementUnit, pll: BehavioralPll) -> None:
        self.adc = adc
        self.encoder = encoder
        self.pmu = pmu
        self.pll = pll
        self._f_sample: float | None = None

    @classmethod
    def build(cls, seed: int | None = None,
              ideal: bool = False) -> "MixedSignalPlatform":
        """Construct the paper's system with default calibration."""
        adc = FaiAdc(ideal=ideal, seed=seed)
        encoder = build_fai_encoder(EncoderSpec())
        design = StsclGateDesign.default(i_ss=1e-9)
        timing = analyze_timing(encoder, design)
        pmu = PowerManagementUnit(
            adc, n_digital_tails=encoder.tail_count(),
            encoder_depth=timing.weighted_depth)
        pll = BehavioralPll(design)
        return cls(adc=adc, encoder=encoder, pmu=pmu, pll=pll)

    @property
    def f_sample(self) -> float:
        if self._f_sample is None:
            raise DesignError(
                "no operating point set; call set_sample_rate first")
        return self._f_sample

    def set_sample_rate(self, f_sample: float) -> PlatformReport:
        """Retune the whole system to ``f_sample`` (the single knob)."""
        point = self.pmu.operating_point(f_sample)
        self._f_sample = f_sample
        design = self.pmu.tuned_gate_design(f_sample)
        timing = analyze_timing(self.encoder, design)
        if timing.f_max < f_sample * (1.0 - 1e-9):
            raise DesignError(
                f"encoder cannot reach {f_sample:.3e} S/s at the "
                f"programmed bias (f_max {timing.f_max:.3e})")
        return PlatformReport(
            operating_point=point,
            encoder_f_max=timing.f_max,
            vdd_min_digital=minimum_supply(design))

    def convert(self, waveform, n_samples: int) -> np.ndarray:
        """Sample ``waveform(t)`` at the programmed rate and convert."""
        if n_samples < 1:
            raise DesignError(f"n_samples must be >= 1: {n_samples}")
        tuned = self.pmu.tuned_adc(self.f_sample)
        t = np.arange(n_samples) / self.f_sample
        return tuned.sample_and_convert(waveform, t)

    def characterize(self, samples_per_code: int = 16) -> dict:
        """INL/DNL and ENOB of the chip at the programmed rate."""
        tuned = self.pmu.tuned_adc(self.f_sample)
        linearity = linearity_test(tuned, samples_per_code)
        dynamic: SineTestReport = dynamic_test(tuned, self.f_sample)
        return {
            "inl_max": linearity.inl_max,
            "dnl_max": linearity.dnl_max,
            "enob": dynamic.enob,
            "sndr_db": dynamic.sndr_db,
        }

    def lock_pll(self, f_ref: float):
        """Lock the behavioural PLL to an external reference; returns
        the PLL report whose control current the PMU would fan out."""
        return self.pll.lock(f_ref)
