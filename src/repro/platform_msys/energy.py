"""Energy budgeting for duty-cycled sensor nodes.

The application-side arithmetic the paper's intro gestures at: given a
battery (or harvest rate) and an acquisition plan, how long does the
node live -- and how does the platform's linear power-frequency scaling
change the answer versus a fixed-rate design?
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DesignError
from ..pmu.controller import PowerManagementUnit

#: Typical coin-cell: CR2032, 225 mAh at 3 V -> ~2430 J usable.
CR2032_ENERGY_J = 0.225 * 3600.0 * 3.0


@dataclass(frozen=True)
class AcquisitionPlan:
    """How the node spends its time.

    Attributes:
        duty_segments: (fraction_of_time, sample_rate) pairs; the
            fractions must sum to <= 1 (the remainder is deep sleep).
        sleep_power: Residual power while fully idle [W].
    """

    duty_segments: tuple[tuple[float, float], ...]
    sleep_power: float = 1e-9

    def __post_init__(self) -> None:
        total = sum(fraction for fraction, _rate in self.duty_segments)
        if not 0.0 < total <= 1.0 + 1e-9:
            raise DesignError(
                f"duty fractions must sum to (0, 1], got {total}")
        if any(fraction <= 0.0 or rate <= 0.0
               for fraction, rate in self.duty_segments):
            raise DesignError("fractions and rates must be positive")
        if self.sleep_power < 0.0:
            raise DesignError(
                f"sleep power must be >= 0: {self.sleep_power}")

    @property
    def sleep_fraction(self) -> float:
        return 1.0 - sum(f for f, _r in self.duty_segments)


def average_power(pmu: PowerManagementUnit,
                  plan: AcquisitionPlan) -> float:
    """Time-averaged node power under ``plan`` [W]."""
    total = plan.sleep_fraction * plan.sleep_power
    for fraction, rate in plan.duty_segments:
        total += fraction * pmu.operating_point(rate).total_power
    return total


def battery_lifetime(pmu: PowerManagementUnit, plan: AcquisitionPlan,
                     battery_energy: float = CR2032_ENERGY_J) -> float:
    """Node lifetime on ``battery_energy`` joules [s]."""
    if battery_energy <= 0.0:
        raise DesignError(
            f"battery energy must be positive: {battery_energy}")
    return battery_energy / average_power(pmu, plan)


def sustainable_duty(pmu: PowerManagementUnit, rate: float,
                     harvest_power: float,
                     sleep_power: float = 1e-9) -> float:
    """Largest duty cycle at ``rate`` a harvester can sustain.

    Solves harvest = d * P(rate) + (1-d) * P_sleep for d, clamped to
    [0, 1]; 0 means the harvester cannot even cover sleep.
    """
    if harvest_power <= 0.0:
        raise DesignError(
            f"harvest power must be positive: {harvest_power}")
    active = pmu.operating_point(rate).total_power
    if harvest_power <= sleep_power:
        return 0.0
    duty = (harvest_power - sleep_power) / (active - sleep_power)
    return float(min(1.0, max(0.0, duty)))
