"""STSCL design-space optimisation.

The decoupling the paper celebrates (Fig. 3b) turns gate design into a
small constrained optimisation: pick swing, supply and tail current to
minimise power at a required operating frequency, subject to

* regeneration / noise margin  (V_SW large enough),
* headroom                     (V_DD >= V_DD,min(I_SS) + margin),
* timing                       (f_max(I_SS) >= f_op at the logic depth).

Because the constraints are monotone, a modest grid search is exact
enough and keeps the tool transparent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DesignError
from ..stscl.gate_model import StsclGateDesign
from ..stscl.power import required_tail_current
from ..stscl.supply import minimum_supply


@dataclass(frozen=True)
class DesignPoint:
    """One optimised gate design.

    Attributes:
        design: The chosen gate design.
        vdd: Chosen supply [V].
        power_per_gate: I_SS * V_DD [W].
        noise_margin: Static noise margin [V].
        vdd_min: Minimum workable supply at this bias [V].
    """

    design: StsclGateDesign
    vdd: float
    power_per_gate: float
    noise_margin: float
    vdd_min: float


def optimize_gate_design(f_op: float, logic_depth: int = 1,
                         min_noise_margin: float = 0.05,
                         vdd_margin: float = 0.05,
                         v_sw_grid=None,
                         c_load: float | None = None) -> DesignPoint:
    """Minimise per-gate power for a required clock rate.

    Sweeps the swing grid; for each swing the required tail current
    follows from Eq. (1), the minimum supply from the headroom model,
    and power is their product.  Returns the cheapest feasible point.

    The result makes the paper's design choices quantitative: lowering
    V_SW buys a linear power saving twice (through I_SS and through
    V_DD,min) until the noise-margin constraint bites -- which is why
    the paper settles at 200 mV.
    """
    if f_op <= 0.0:
        raise DesignError(f"f_op must be positive: {f_op}")
    if logic_depth < 1:
        raise DesignError(f"logic_depth must be >= 1: {logic_depth}")
    if v_sw_grid is None:
        v_sw_grid = np.arange(0.12, 0.42, 0.02)

    best: DesignPoint | None = None
    for v_sw in v_sw_grid:
        v_sw = float(v_sw)
        try:
            probe = StsclGateDesign(
                i_ss=1e-9, v_sw=v_sw,
                **({} if c_load is None else {"c_load": c_load}))
        except DesignError:
            continue  # swing below the regeneration limit
        if probe.noise_margin() < min_noise_margin:
            continue
        i_ss = required_tail_current(v_sw, probe.c_load, logic_depth, f_op)
        design = probe.with_current(i_ss)
        vdd_min = minimum_supply(design)
        vdd = vdd_min + vdd_margin
        power = design.power(vdd)
        if best is None or power < best.power_per_gate:
            best = DesignPoint(design=design, vdd=vdd,
                               power_per_gate=power,
                               noise_margin=design.noise_margin(),
                               vdd_min=vdd_min)
    if best is None:
        raise DesignError(
            "no feasible design point: noise-margin constraint "
            "excludes every swing in the grid")
    return best
