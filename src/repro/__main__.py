"""Command-line front end: quick platform reports without writing code.

Usage:

    python -m repro report --rate 8k            # platform at a rate
    python -m repro characterize --seed 3       # INL/DNL/ENOB of a chip
    python -m repro gate --iss 1n               # one gate's numbers
    python -m repro sweep                       # the power-scaling table
    python -m repro faults                      # fault blast-radius table
    python -m repro bench --quick               # time the solver hot paths
    python -m repro trace --scenario op_chain   # run a scenario traced
    python -m repro scope --vcd edge.vcd        # triggered edge capture

Library failures (:class:`~repro.errors.ReproError`) are reported as a
one-line diagnosis with exit status 2 instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys

from .errors import ConvergenceError, ReproError
from .units import format_quantity, parse_quantity


def _cmd_report(args: argparse.Namespace) -> int:
    from .platform_msys import MixedSignalPlatform

    platform = MixedSignalPlatform.build(seed=args.seed)
    report = platform.set_sample_rate(parse_quantity(args.rate))
    print(report.describe())
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .adc import FaiAdc, dynamic_test, linearity_test

    adc = FaiAdc(ideal=args.ideal, seed=args.seed)
    linearity = linearity_test(adc, samples_per_code=args.density)
    dynamic = dynamic_test(adc, f_sample=80e3, n_samples=2048, cycles=67)
    print(f"chip seed {args.seed}"
          f"{' (ideal)' if args.ideal else ''}:")
    print(f"  INL  : {linearity.inl_max:.2f} LSB   (paper 1.0)")
    print(f"  DNL  : {linearity.dnl_max:.2f} LSB   (paper 0.4)")
    print(f"  ENOB : {dynamic.enob:.2f}       (paper 6.5)")
    print(f"  SNDR : {dynamic.sndr_db:.1f} dB")
    if linearity.missing_codes:
        print(f"  missing codes: {linearity.missing_codes}")
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    from .stscl import StsclGateDesign, minimum_supply

    gate = StsclGateDesign.default(parse_quantity(args.iss))
    for key, value in gate.summary().items():
        print(f"  {key:22}: {value:.4g}")
    print(f"  {'minimum_supply':22}: {minimum_supply(gate):.4g}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .adc import FaiAdc
    from .pmu import PowerManagementUnit

    pmu = PowerManagementUnit(FaiAdc(ideal=False, seed=args.seed))
    print(f"{'f_s':>10} {'P_total':>10} {'P_digital':>10} {'E/sample':>10}")
    for f_s in (800.0, 2e3, 8e3, 20e3, 80e3):
        point = pmu.operating_point(f_s)
        print(f"{format_quantity(f_s, 'S/s'):>10} "
              f"{format_quantity(point.total_power, 'W'):>10} "
              f"{format_quantity(point.digital_power, 'W'):>10} "
              f"{format_quantity(point.energy_per_sample, 'J'):>10}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults import standard_adc_campaign

    campaign = standard_adc_campaign(seed=args.seed,
                                     samples_per_code=args.density)
    report = campaign.run()
    print(f"fault blast radius, chip seed {args.seed} "
          f"(metric deltas vs healthy chip):")
    print(report.describe())
    if report.failed:
        print(f"{len(report.failed)} fault(s) could not be evaluated")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import run_benchmarks, write_report

    results = run_benchmarks(quick=args.quick, repeats=args.repeats,
                             n_workers=args.workers)
    for result in results:
        print(f"  {result.name:18}: {result.wall_s * 1e3:8.1f} ms "
              f"(best of {result.repeats})")
    path = write_report(results, args.output, quick=args.quick)
    print(f"report written to {path}")
    if args.compare is None:
        return 0
    from .bench.compare import (compare_results, load_baseline,
                                regression_allowed)
    report = compare_results(results, load_baseline(args.compare),
                             max_ratio=args.max_ratio,
                             require_cases=args.require_cases,
                             min_wall_s=args.min_wall_ms / 1e3)
    print(report.describe())
    if report.passed:
        return 0
    if regression_allowed():
        print("regression tolerated (REPRO_BENCH_ALLOW_REGRESSION set); "
              "refresh the committed baseline in this change")
        return 0
    return 1


#: Scenarios the ``trace`` subcommand can run (bench cases + faults;
#: ``ac`` is the stacked-frequency ``ac_sweep`` bench case,
#: ``batched_tran`` the lockstep ``batched_transient_montecarlo`` one).
TRACE_SCENARIOS = ("op_chain", "dc_sweep", "transient", "transient_lte",
                   "ac", "montecarlo", "batched_tran", "faults")


def _cmd_trace(args: argparse.Namespace) -> int:
    from . import telemetry
    from .bench.perf import default_cases

    scenarios = dict(default_cases(quick=not args.full,
                                   n_workers=args.workers))

    def faults_case() -> dict:
        from .faults import standard_adc_campaign

        report = standard_adc_campaign(seed=args.seed,
                                       samples_per_code=4).run()
        return {"n_faults": len(report.outcomes),
                "n_failed": len(report.failed)}

    scenarios["faults"] = faults_case
    scenarios["ac"] = scenarios["ac_sweep"]
    scenarios["batched_tran"] = scenarios["batched_transient_montecarlo"]
    case = scenarios[args.scenario]
    with telemetry.tracing(f"scenario-{args.scenario}",
                           scenario=args.scenario) as trace:
        meta = case()
    path = telemetry.write_jsonl(trace, args.output)
    max_depth = None if args.max_depth < 0 else args.max_depth
    print(telemetry.tree_summary(trace, max_depth=max_depth))
    detail = " ".join(f"{k}={v}" for k, v in meta.items())
    if detail:
        print(f"scenario detail: {detail}")
    print(f"trace written to {path}")
    return 0


def _cmd_scope(args: argparse.Namespace) -> int:
    from .stscl import StsclGateDesign, buffer_chain_capture, characterize_gate
    from .units import parse_quantity as pq

    design = StsclGateDesign.default(pq(args.iss))
    vdd = float(args.vdd)
    print(f"triggered capture: {args.stages}-stage STSCL buffer chain, "
          f"I_SS {format_quantity(design.i_ss, 'A')}, VDD {vdd} V")
    session = buffer_chain_capture(design, vdd, n_stages=args.stages)
    segment = session.segment()
    print(f"  window   : {len(segment)} samples "
          f"({segment.nbytes} bytes), trigger at "
          f"{format_quantity(segment.trigger_time, 's')}")
    report = characterize_gate(design, vdd, segment=segment)
    print(f"  delay    : {report.delay.describe()}")
    print(f"  slew     : {report.rise.describe()}")
    print(f"  swing    : {report.swing.describe()}")
    print(f"  analytic : t_d = {format_quantity(report.delay_analytic, 's')}"
          f" (measured/analytic = {report.delay_ratio:.2f})")
    if args.vcd is None and not args.check:
        return 0
    text = segment.to_vcd(scope="stscl")
    if args.vcd is not None:
        with open(args.vcd, "w", encoding="ascii") as stream:
            stream.write(text)
        print(f"  VCD written to {args.vcd}")
    if args.check:
        from .scope.vcd import parse_vcd

        document = parse_vcd(text)
        n_changes = len(document.changes)
        expected = len(segment) * len(segment.signals)
        if n_changes > expected:
            raise ReproError(
                f"VCD round-trip: {n_changes} changes > "
                f"{expected} stored samples")
        print(f"  VCD round-trip OK: timescale {document.timescale}, "
              f"{len(document.variables)} variables, "
              f"{n_changes} value changes")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from . import telemetry
    from .fuzz import (FuzzBudgets, FuzzReport, load_corpus, replay_entry,
                       run_campaign, save_entry, shrink_case)
    from .fuzz.corpus import CorpusEntry

    budgets = FuzzBudgets(max_iterations=args.max_iterations,
                          op_wall=args.phase_wall,
                          sweep_wall=2 * args.phase_wall,
                          tran_wall=2 * args.phase_wall,
                          fault_wall=2 * args.phase_wall)

    def replay() -> FuzzReport:
        report = FuzzReport()
        entries = load_corpus(args.corpus_dir)
        print(f"replaying {len(entries)} corpus case(s) "
              f"from {args.corpus_dir}")
        for path, entry in entries:
            result = replay_entry(entry, budgets)
            report.cases.append(result)
            print(f"  {path.name:40s} {result.status:10s} "
                  f"[{result.phase}]")
        return report

    def fresh() -> FuzzReport:
        def on_case(result, circuit) -> None:
            if args.verbose or result.status == "violation":
                print(f"  seed={result.seed} {result.circuit_name:24s} "
                      f"{result.status:10s} [{result.phase}] "
                      f"{result.detail[:100]}")
            if (args.save_failures and circuit is not None
                    and result.status != "ok"):
                deck, evals = shrink_case(circuit, result, budgets)
                entry = CorpusEntry.from_result(
                    result, deck, note=f"shrunk in {evals} evals")
                path = save_entry(entry, args.corpus_dir)
                print(f"    -> saved {path}")

        return run_campaign(args.circuits, seed=args.seed,
                            mode=args.mode, budgets=budgets,
                            on_case=on_case)

    runner = replay if args.replay_corpus else fresh
    if args.telemetry_out:
        with telemetry.tracing("fuzz-cli", mode=args.mode,
                               seed=args.seed) as trace:
            report = runner()
        path = telemetry.write_jsonl(trace, args.telemetry_out)
        print(f"telemetry written to {path}")
    else:
        report = runner()
    print(report.describe())
    return 1 if report.violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Subthreshold source-coupled mixed-signal platform "
                    "(Tajalli & Leblebici, DATE 2010 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="platform operating point")
    p_report.add_argument("--rate", default="8k",
                          help="sampling rate, e.g. 8k or 80kS/s")
    p_report.add_argument("--seed", type=int, default=7)
    p_report.set_defaults(func=_cmd_report)

    p_char = sub.add_parser("characterize",
                            help="INL/DNL/ENOB of one chip")
    p_char.add_argument("--seed", type=int, default=1)
    p_char.add_argument("--ideal", action="store_true")
    p_char.add_argument("--density", type=int, default=16,
                        help="ramp samples per code")
    p_char.set_defaults(func=_cmd_characterize)

    p_gate = sub.add_parser("gate", help="one STSCL gate's numbers")
    p_gate.add_argument("--iss", default="1n",
                        help="tail current, e.g. 1n or 10pA")
    p_gate.set_defaults(func=_cmd_gate)

    p_sweep = sub.add_parser("sweep", help="the power-scaling table")
    p_sweep.add_argument("--seed", type=int, default=1)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_faults = sub.add_parser(
        "faults", help="fault-injection blast-radius table")
    p_faults.add_argument("--seed", type=int, default=1)
    p_faults.add_argument("--density", type=int, default=8,
                          help="ramp samples per code")
    p_faults.set_defaults(func=_cmd_faults)

    p_bench = sub.add_parser(
        "bench", help="time the solver hot paths, emit BENCH_perf.json")
    p_bench.add_argument("--quick", action="store_true",
                         help="smaller workloads, single repeat "
                              "(CI smoke)")
    p_bench.add_argument("--repeats", type=int, default=None,
                         help="timed repetitions per case "
                              "(default: 1 quick, 3 full)")
    p_bench.add_argument("--workers", type=int, default=1,
                         help="process-pool width for the Monte-Carlo "
                              "case")
    p_bench.add_argument("--compare", default=None, metavar="BASELINE",
                         help="gate against a committed BENCH_perf.json: "
                              "exit 1 when any shared case got more than "
                              "--max-ratio slower (escape hatch: set "
                              "REPRO_BENCH_ALLOW_REGRESSION=1)")
    p_bench.add_argument("--require-cases", action="store_true",
                         help="fail --compare when a baseline case is "
                              "missing from the fresh run (a dropped "
                              "case is a dropped regression check)")
    p_bench.add_argument("--max-ratio", type=float, default=2.0,
                         help="slowdown factor tolerated by --compare "
                              "(default 2.0)")
    p_bench.add_argument("--min-wall-ms", type=float, default=20.0,
                         help="absolute floor for --compare: cases where "
                              "both sides run under this many ms are "
                              "reported but never fail the ratio gate "
                              "(default 20; 0 gates everything)")
    p_bench.add_argument("--output", default="BENCH_perf.json",
                         help="report path (default: BENCH_perf.json)")
    p_bench.set_defaults(func=_cmd_bench)

    p_trace = sub.add_parser(
        "trace", help="run a bench/fault scenario under telemetry "
                      "tracing; write a JSONL trace + tree summary")
    p_trace.add_argument("--scenario", choices=TRACE_SCENARIOS,
                         default="op_chain")
    p_trace.add_argument("--output", default="trace.jsonl",
                         help="JSONL trace path (default: trace.jsonl)")
    p_trace.add_argument("--full", action="store_true",
                         help="full-size workload (default: quick sizes)")
    p_trace.add_argument("--workers", type=int, default=1,
                         help="process-pool width for the Monte-Carlo "
                              "scenario (worker spans are merged)")
    p_trace.add_argument("--seed", type=int, default=1,
                         help="chip seed for the faults scenario")
    p_trace.add_argument("--max-depth", type=int, default=3,
                         help="summary tree depth (-1: unlimited; "
                              "the JSONL always keeps everything)")
    p_trace.set_defaults(func=_cmd_trace)

    p_scope = sub.add_parser(
        "scope", help="triggered waveform capture of an STSCL edge: "
                      "measure delay/slew/swing, optionally export VCD")
    p_scope.add_argument("--iss", default="1n",
                         help="tail current, e.g. 1n or 10pA")
    p_scope.add_argument("--vdd", type=float, default=0.4,
                         help="supply voltage [V] (default 0.4)")
    p_scope.add_argument("--stages", type=int, default=3,
                         help="buffer-chain length (default 3)")
    p_scope.add_argument("--vcd", default=None, metavar="PATH",
                         help="write the captured window as VCD")
    p_scope.add_argument("--check", action="store_true",
                         help="parse the VCD back and verify the "
                              "round-trip (CI smoke)")
    p_scope.set_defaults(func=_cmd_scope)

    p_fuzz = sub.add_parser(
        "fuzz", help="constrained-random circuit fuzzing under the "
                     "converge-or-diagnose invariant")
    p_fuzz.add_argument("--circuits", type=int, default=60,
                        help="number of fresh cases (default 60)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="first case seed (case k uses seed+k)")
    p_fuzz.add_argument("--mode", choices=("random", "stscl", "mixed"),
                        default="mixed")
    p_fuzz.add_argument("--max-iterations", type=int, default=80,
                        help="Newton iteration cap per solve")
    p_fuzz.add_argument("--phase-wall", type=float, default=5.0,
                        help="wall-clock budget [s] for the op phase "
                             "(sweep/transient/faults get 2x)")
    p_fuzz.add_argument("--replay-corpus", action="store_true",
                        help="replay the committed corpus instead of "
                             "fuzzing fresh seeds")
    p_fuzz.add_argument("--corpus-dir", default="tests/corpus",
                        help="corpus directory (default: tests/corpus)")
    p_fuzz.add_argument("--save-failures", action="store_true",
                        help="shrink every non-ok fresh case and save "
                             "it to --corpus-dir")
    p_fuzz.add_argument("--telemetry-out", default=None, metavar="PATH",
                        help="write a JSONL telemetry trace of the run")
    p_fuzz.add_argument("--verbose", action="store_true",
                        help="print every case, not just violations")
    p_fuzz.set_defaults(func=_cmd_fuzz)
    return parser


def _diagnose(error: ReproError) -> str:
    """One-line diagnosis of a library failure."""
    kind = type(error).__name__
    line = f"error: {kind}: {error}"
    if isinstance(error, ConvergenceError) and error.stage:
        line += f" [last stage: {error.stage}]"
    return line


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(_diagnose(error), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
