"""The comparator pre-amplifier with the D_Well decoupling trick
(paper Fig. 6, experiment E5).

The pre-amplifier is a double differential stage built like an STSCL
gate (same loads, same tail).  Its bandwidth problem: the PMOS load's
nwell-substrate junction D_Well hangs directly on the output node and,
at nA bias levels, R_L is so large that this junction capacitance
dominates the pole.  The fix (Fig. 6b): insert a very-high-valued
series device M_C between the output and the bulk/well node, so the
well capacitance is reached only through R_C -- which turns the plain
pole into a pole-zero pair and recovers bandwidth (Fig. 6d).

Transfer function of the output network (gm drive into the load):

    without decoupling:  Z(s) = R_L || 1/s(C_out + C_well)
    with decoupling:     Z(s) = R_L || 1/sC_out || (R_C + 1/sC_well)

:func:`preamp_output_circuit` builds the same network for the MNA
engine so the analytic model is cross-checked by AC analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..constants import T_NOMINAL, thermal_voltage
from ..devices.parameters import GENERIC_180NM, Technology
from ..errors import ModelError
from ..spice.netlist import Circuit


@dataclass(frozen=True)
class Preamp:
    """Double differential pre-amplifier (Fig. 6c).

    Computes out = A * [(in1p - in1n) - (in2p - in2n)] with tanh
    limiting, plus the dynamic model of the decoupled/plain load.

    Attributes:
        i_bias: Tail current [A].
        v_sw: Output swing (load drop at full steer) [V].
        c_out: Intrinsic output capacitance (wiring + next stage) [F].
        c_well: D_Well junction capacitance [F].
        r_c_ratio: R_C expressed as a multiple of R_L.  The paper calls
            M_C "a very high-valued load resistance": R_C must exceed
            R_L by a few times, or the well branch still loads the
            mid-band (at R_C = 5 R_L the mid-band plateau sits at
            5/6 of DC, above the -3 dB line, and the bandwidth extends
            to the C_out pole).
        decoupled: Whether M_C is present (Fig. 6b) or the well sits
            directly on the output (Fig. 6a).
        offset: Input-referred offset [V] (mismatch).
        tech: Technology.
        temperature: Junction temperature [K].
    """

    i_bias: float
    v_sw: float = 0.2
    c_out: float = 10e-15
    c_well: float = 60e-15
    r_c_ratio: float = 5.0
    decoupled: bool = True
    offset: float = 0.0
    tech: Technology = field(default_factory=lambda: GENERIC_180NM)
    temperature: float = T_NOMINAL

    def __post_init__(self) -> None:
        if self.i_bias <= 0.0:
            raise ModelError(f"i_bias must be positive: {self.i_bias}")
        if self.v_sw <= 0.0:
            raise ModelError(f"v_sw must be positive: {self.v_sw}")
        if self.c_out < 0.0 or self.c_well < 0.0:
            raise ModelError("capacitances must be >= 0")
        if self.r_c_ratio <= 0.0:
            raise ModelError(f"r_c_ratio must be positive: {self.r_c_ratio}")

    def with_bias(self, i_bias: float) -> "Preamp":
        """Retuned copy (the PMU scaling operation)."""
        return Preamp(i_bias=i_bias, v_sw=self.v_sw, c_out=self.c_out,
                      c_well=self.c_well, r_c_ratio=self.r_c_ratio,
                      decoupled=self.decoupled, offset=self.offset,
                      tech=self.tech, temperature=self.temperature)

    @property
    def load_resistance(self) -> float:
        """R_L = V_SW / I_bias [ohm] (same law as the STSCL gate)."""
        return self.v_sw / self.i_bias

    def dc_gain(self) -> float:
        """A = g_m R_L = V_SW / (2 n U_T)."""
        ut = thermal_voltage(self.temperature)
        return self.v_sw / (2.0 * self.tech.nmos.n * ut)

    def output_voltage(self, v1: np.ndarray | float,
                       v2: np.ndarray | float = 0.0) -> np.ndarray | float:
        """Static differential output for the double-difference input."""
        ut = thermal_voltage(self.temperature)
        scale = 2.0 * self.tech.nmos.n * ut
        drive = (np.asarray(v1, dtype=float) - np.asarray(v2, dtype=float)
                 - self.offset)
        result = self.v_sw * np.tanh(drive / scale)
        return float(result) if np.ndim(result) == 0 else result

    # -- dynamics -----------------------------------------------------------

    def transfer(self, frequencies: np.ndarray) -> np.ndarray:
        """Complex small-signal transfer H(jw) normalised to DC gain 1."""
        s = 2j * np.pi * np.asarray(frequencies, dtype=float)
        r_l = self.load_resistance
        if not self.decoupled:
            return 1.0 / (1.0 + s * r_l * (self.c_out + self.c_well))
        r_c = self.r_c_ratio * r_l
        z_well = r_c + 1.0 / (s * self.c_well)
        y_total = 1.0 / r_l + s * self.c_out + 1.0 / z_well
        return (1.0 / r_l) / y_total

    def bandwidth(self) -> float:
        """-3 dB bandwidth [Hz] from the analytic transfer."""
        r_l = self.load_resistance
        if not self.decoupled:
            return 1.0 / (2.0 * math.pi * r_l * (self.c_out + self.c_well))
        # Numeric search on the analytic transfer (pole-zero pair).
        f0 = 1.0 / (2.0 * math.pi * r_l
                    * (self.c_out + self.c_well))
        freqs = np.logspace(math.log10(f0) - 1.0, math.log10(f0) + 4.0,
                            1001)
        mags = np.abs(self.transfer(freqs))
        below = np.nonzero(mags < 1.0 / math.sqrt(2.0))[0]
        if below.size == 0:
            return float(freqs[-1])
        k = int(below[0])
        if k == 0:
            return float(freqs[0])
        f1, f2 = freqs[k - 1], freqs[k]
        m1, m2 = mags[k - 1], mags[k]
        frac = (m1 - 1.0 / math.sqrt(2.0)) / (m1 - m2)
        return float(f1 * (f2 / f1) ** frac)

    def step_settling_time(self, fraction: float = 0.9,
                           horizon_tau: float = 20.0) -> float:
        """Time for the step response to reach ``fraction`` of final [s].

        Evaluated by numerically integrating the one/two-pole network;
        the decoupled load settles markedly faster (Fig. 6d).
        """
        if not 0.0 < fraction < 1.0:
            raise ModelError(f"fraction must be in (0,1): {fraction}")
        r_l = self.load_resistance
        tau_ref = r_l * (self.c_out + self.c_well)
        dt = tau_ref / 2000.0
        steps = int(horizon_tau * tau_ref / dt)
        v_out, v_well = 0.0, 0.0
        i_in = 1.0 / r_l  # unit final value
        r_c = self.r_c_ratio * r_l
        for k in range(steps):
            if self.decoupled:
                i_well = (v_out - v_well) / r_c
                dv_out = (i_in - v_out / r_l - i_well) / self.c_out
                dv_well = i_well / self.c_well
                v_out += dv_out * dt
                v_well += dv_well * dt
            else:
                dv_out = (i_in - v_out / r_l) / (self.c_out + self.c_well)
                v_out += dv_out * dt
            if v_out >= fraction:
                return (k + 1) * dt
        raise ModelError(
            f"output did not reach {fraction} within {horizon_tau} tau")


def preamp_output_circuit(preamp: Preamp,
                          unit_gm: float = 1e-6) -> Circuit:
    """MNA model of the pre-amplifier output network for AC analysis.

    A VCCS of transconductance ``unit_gm`` drives the load network from
    a unit AC source, so ``out`` carries gm * Z(jw); normalising by the
    DC value gives the same curve as :meth:`Preamp.transfer` -- the
    cross-check used by the E5 benchmark and the integration tests.
    """
    circuit = Circuit("preamp_output")
    circuit.add_vsource("vin", "in", "0", 0.0, ac_mag=1.0)
    circuit.add_vccs("gmin", "0", "out", "in", "0", unit_gm)
    circuit.add_resistor("rl", "out", "0", preamp.load_resistance)
    circuit.add_capacitor("cout", "out", "0", preamp.c_out)
    if preamp.decoupled:
        r_c = preamp.r_c_ratio * preamp.load_resistance
        circuit.add_resistor("rc", "out", "well", r_c)
        circuit.add_capacitor("cwell", "well", "0", preamp.c_well)
    else:
        circuit.add_capacitor("cwell", "out", "0", preamp.c_well)
    return circuit
