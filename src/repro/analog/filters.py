"""Power-scalable gm-C filters (paper Sec. II-B, refs [22] and [23]).

The paper offers "widely-tunable and power-scalable" filters as the
canonical scalable analog block: a gm-C biquad's corner frequency is
f_0 = gm / (2 pi C) with gm = I / (2 n U_T), so the corner rides
*linearly* on the bias current while the quality factor (a gm ratio)
and the linear input range (n U_T) stay put -- exactly the
"compatible power-frequency behaviour" that lets one PMU drive analog
and digital together.

:class:`GmCBiquad` is the behavioural model;
:func:`gm_c_biquad_circuit` builds the same two-integrator loop from
VCCS elements for the MNA engine, so the analytic transfer is
cross-checked by AC analysis in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..constants import T_NOMINAL, thermal_voltage
from ..devices.parameters import GENERIC_180NM, Technology
from ..errors import ModelError
from ..spice.netlist import Circuit
from .transconductor import SubthresholdTransconductor


@dataclass(frozen=True)
class GmCBiquad:
    """A two-integrator-loop gm-C low-pass biquad.

    Topology (Tow-Thomas-style): four identical transconductors of
    value gm and two capacitors C; the damping transconductor is scaled
    by 1/Q.  Transfer to the low-pass output:

        H(s) = w0^2 / (s^2 + s w0/Q + w0^2),   w0 = gm / C.

    Attributes:
        i_bias: Tail current of each transconductor [A] -- the knob.
        c: Integration capacitance [F].
        q: Quality factor (a transconductance *ratio*: bias-invariant).
        tech: Technology (slope factor).
        temperature: Junction temperature [K].
    """

    i_bias: float
    c: float = 10e-12
    q: float = 0.707
    tech: Technology = field(default_factory=lambda: GENERIC_180NM)
    temperature: float = T_NOMINAL

    def __post_init__(self) -> None:
        if self.i_bias <= 0.0:
            raise ModelError(f"i_bias must be positive: {self.i_bias}")
        if self.c <= 0.0:
            raise ModelError(f"capacitance must be positive: {self.c}")
        if self.q <= 0.0:
            raise ModelError(f"Q must be positive: {self.q}")

    def with_bias(self, i_bias: float) -> "GmCBiquad":
        """Retuned copy (the PMU scaling operation)."""
        return GmCBiquad(i_bias=i_bias, c=self.c, q=self.q,
                         tech=self.tech, temperature=self.temperature)

    def transconductor(self) -> SubthresholdTransconductor:
        """One of the four identical gm cells."""
        return SubthresholdTransconductor(
            i_bias=self.i_bias, tech=self.tech,
            temperature=self.temperature)

    @property
    def gm(self) -> float:
        """Cell transconductance [S]."""
        return self.transconductor().transconductance()

    def corner_frequency(self) -> float:
        """f_0 = gm / (2 pi C) [Hz]; linear in the bias current."""
        return self.gm / (2.0 * math.pi * self.c)

    def transfer(self, frequencies: np.ndarray) -> np.ndarray:
        """Complex low-pass transfer H(j 2 pi f)."""
        s = 2j * np.pi * np.asarray(frequencies, dtype=float)
        w0 = 2.0 * math.pi * self.corner_frequency()
        return w0 ** 2 / (s ** 2 + s * w0 / self.q + w0 ** 2)

    def power(self, vdd: float) -> float:
        """Static power: four tail currents [W]."""
        if vdd <= 0.0:
            raise ModelError(f"vdd must be positive: {vdd}")
        return 4.0 * self.i_bias * vdd

    def linear_range(self) -> float:
        """Input linear range [V]; bias-invariant (set by n U_T)."""
        return self.transconductor().linear_range()

    def dynamic_range_estimate(self) -> float:
        """Rough DR: linear range over the kT/C noise of one
        integrator, in dB.  Bias-invariant -- scaling power does not
        cost fidelity, the property the paper's platform relies on."""
        ktc = math.sqrt(1.380649e-23 * self.temperature / self.c)
        return 20.0 * math.log10(self.linear_range() / ktc)


def gm_c_biquad_circuit(biquad: GmCBiquad) -> Circuit:
    """The same biquad as an MNA netlist of VCCS integrators.

    Two-integrator loop: gm1 drives the band-pass node (damped by the
    gm/Q cell), gm2 integrates it into the low-pass output, and the
    loop closes through gm3.  AC magnitude at ``lp`` matches
    :meth:`GmCBiquad.transfer` -- the cross-check the tests enforce.
    """
    gm = biquad.gm
    circuit = Circuit("gmc_biquad")
    circuit.add_vsource("vin", "in", "0", 0.0, ac_mag=1.0)
    # Band-pass node.
    circuit.add_vccs("g_in", "0", "bp", "in", "0", gm)
    circuit.add_vccs("g_damp", "bp", "0", "bp", "0", gm / biquad.q)
    circuit.add_capacitor("c_bp", "bp", "0", biquad.c)
    # Low-pass node.
    circuit.add_vccs("g_fwd", "0", "lp", "bp", "0", gm)
    circuit.add_capacitor("c_lp", "lp", "0", biquad.c)
    # Loop closure (negative feedback).
    circuit.add_vccs("g_fb", "bp", "0", "lp", "0", gm)
    return circuit
