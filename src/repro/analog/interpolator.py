"""Current-mode interpolation (paper Fig. 5b).

Interpolation synthesises additional zero crossings *between* folder
outputs by current averaging: the midpoint signal (I_a + I_b)/2 crosses
zero halfway between the crossings of I_a and I_b (exactly so for
matched folders in the linear region).  Because the averaging is done
with current mirrors, its only error source is mirror gain mismatch --
and its bandwidth scales with the same bias current as everything else.

The paper interpolates by 8 in total: x2 merged into the folder plus
two x2 stages of this circuit.  Mirror mismatch is *frozen per chip*:
:meth:`CurrentInterpolator.sample_gains` draws one set of gains that
every subsequent conversion reuses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError


@dataclass(frozen=True)
class CurrentInterpolator:
    """A chain of 2x current-averaging interpolation stages.

    Attributes:
        stages: Number of 2x stages (3 stages turn 4 folders into 32
            signals, the paper's factor 8).
        mirror_sigma: Std-dev of each averaging mirror's relative gain
            error (used by :meth:`sample_gains`).
        merged_first_stage: When True the first stage's mirrors are
            ideal -- it is merged into the folder output split (the
            paper's 1:1:2 trick of Fig. 5a).
    """

    stages: int = 3
    mirror_sigma: float = 0.0
    merged_first_stage: bool = True

    def __post_init__(self) -> None:
        if self.stages < 0:
            raise ModelError(f"stages must be >= 0: {self.stages}")
        if self.mirror_sigma < 0.0:
            raise ModelError(
                f"mirror_sigma must be >= 0: {self.mirror_sigma}")

    @property
    def factor(self) -> int:
        """Signal-count multiplication of the whole chain."""
        return 2 ** self.stages

    def sample_gains(self, n_inputs: int,
                     rng: np.random.Generator) -> list[np.ndarray]:
        """Draw one chip's frozen mirror gains.

        Returns, per stage, an array of shape (n_midpoints, 2): the two
        mirror gains feeding each averaged signal.
        """
        gains = []
        n = n_inputs
        for stage in range(self.stages):
            sigma = self.mirror_sigma
            if stage == 0 and self.merged_first_stage:
                sigma = 0.0
            gains.append(1.0 + rng.normal(0.0, sigma, size=(n, 2))
                         if sigma > 0.0 else np.ones((n, 2)))
            n *= 2
        return gains

    def interpolate(self, signals: np.ndarray,
                    gains: list[np.ndarray] | None = None) -> np.ndarray:
        """Run the chain over ``signals``.

        ``signals`` has shape (n_signals, ...) with axis 0 enumerating
        the folded signals in crossing order; the set is treated as
        *cyclic* (past the last signal the next crossing belongs to the
        first signal inverted -- the physical wrap of a folded bank).
        Returns shape (n_signals * 2**stages, ...).
        """
        current = np.asarray(signals, dtype=float)
        if current.ndim < 1 or current.shape[0] < 1:
            raise ModelError("need at least one input signal")
        if gains is not None and len(gains) != self.stages:
            raise ModelError(
                f"expected {self.stages} gain arrays, got {len(gains)}")
        for stage in range(self.stages):
            n = current.shape[0]
            stage_gains = gains[stage] if gains is not None else None
            if stage_gains is not None and stage_gains.shape[0] != n:
                raise ModelError(
                    f"stage {stage} gains sized {stage_gains.shape[0]}, "
                    f"expected {n}")
            result = np.empty((2 * n,) + current.shape[1:])
            for i in range(n):
                a = current[i]
                b = current[i + 1] if i + 1 < n else -current[0]
                g_a = g_b = 1.0
                if stage_gains is not None:
                    g_a, g_b = stage_gains[i]
                result[2 * i] = a
                result[2 * i + 1] = 0.5 * (g_a * a + g_b * b)
            current = result
        return current

    def branch_count(self, n_inputs: int) -> int:
        """Current branches (power units) of the non-merged stages."""
        total = 0
        n = n_inputs
        for stage in range(self.stages):
            if not (stage == 0 and self.merged_first_stage):
                total += 2 * n  # two mirrors per generated midpoint
            n *= 2
        return total
