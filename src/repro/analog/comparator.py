"""Clocked comparator: pre-amplifier plus regenerative latch.

The FAI ADC's decision elements.  The pre-amplifier (Fig. 6) both
reduces the input-referred latch offset by its gain and isolates the
inputs from kickback; the latch regenerates to full logic levels within
the clock phase when the amplified difference exceeds its metastability
window.

Error model (all the mechanisms the measured INL/DNL of Fig. 11 needs):

* input-referred offset (preamp pair mismatch, dominant);
* input-referred noise (thermal, optional);
* metastability: inputs smaller than the regeneration window resolve
  randomly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import T_NOMINAL, thermal_voltage
from ..devices.mismatch import MismatchModel, PELGROM_180NM
from ..errors import ModelError
from .preamp import Preamp


@dataclass
class Comparator:
    """One clocked comparator.

    Attributes:
        preamp: The input pre-amplifier (carries bias and offset).
        noise_rms: Input-referred rms noise [V].
        metastability_window: Input magnitude below which the decision
            is random [V] (after preamp gain this is sub-LSB for any
            sane design; kept for failure-injection tests).
        rng: Random generator for noise/metastability; None = ideal
            deterministic comparator.
    """

    preamp: Preamp
    noise_rms: float = 0.0
    metastability_window: float = 0.0
    rng: np.random.Generator | None = None

    def with_bias(self, i_bias: float) -> "Comparator":
        """Retuned copy (the PMU scaling operation)."""
        return Comparator(preamp=self.preamp.with_bias(i_bias),
                          noise_rms=self.noise_rms,
                          metastability_window=self.metastability_window,
                          rng=self.rng)

    def decide(self, v_pos: float, v_neg: float) -> bool:
        """One clocked decision: True when v_pos > v_neg (plus errors)."""
        difference = v_pos - v_neg - self.preamp.offset
        if self.rng is not None and self.noise_rms > 0.0:
            difference += float(self.rng.normal(0.0, self.noise_rms))
        if abs(difference) < self.metastability_window:
            if self.rng is None:
                return difference >= 0.0
            return bool(self.rng.random() < 0.5)
        return difference > 0.0

    def decide_array(self, v_pos: np.ndarray,
                     v_neg: np.ndarray | float) -> np.ndarray:
        """Vectorised decisions (noise applied elementwise)."""
        difference = (np.asarray(v_pos, dtype=float)
                      - np.asarray(v_neg, dtype=float)
                      - self.preamp.offset)
        if self.rng is not None and self.noise_rms > 0.0:
            difference = difference + self.rng.normal(
                0.0, self.noise_rms, size=difference.shape)
        return difference > 0.0

    def max_clock(self) -> float:
        """Highest clock rate the preamp bandwidth supports [Hz].

        The preamp must settle within half a clock period; its -3 dB
        bandwidth scales with the bias current, which is how the whole
        comparator bank follows the PMU.
        """
        return self.preamp.bandwidth()


def _default_preamp() -> Preamp:
    return Preamp(i_bias=1e-9)


@dataclass
class ComparatorBank:
    """A bank of matched comparators sharing one bias rail.

    Offsets are drawn once at construction (a "chip") from the Pelgrom
    model at the given pair size, so repeated conversions see the same
    static errors -- as a real chip does.
    """

    n: int
    i_bias: float
    pair_w: float = 2.0e-6
    pair_l: float = 0.5e-6
    mismatch: MismatchModel = field(
        default_factory=lambda: PELGROM_180NM)
    noise_rms: float = 0.0
    seed: int | None = None
    temperature: float = T_NOMINAL
    ideal: bool = False

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ModelError(f"need at least one comparator: {self.n}")
        if self.i_bias <= 0.0:
            raise ModelError(f"i_bias must be positive: {self.i_bias}")
        rng = np.random.default_rng(self.seed)
        sigma = self.mismatch.sigma_pair_offset(self.pair_w, self.pair_l)
        self.comparators: list[Comparator] = []
        for _k in range(self.n):
            offset = 0.0 if self.ideal else float(rng.normal(0.0, sigma))
            preamp = Preamp(i_bias=self.i_bias, offset=offset,
                            temperature=self.temperature)
            noise_rng = np.random.default_rng(rng.integers(2 ** 32)) \
                if self.noise_rms > 0.0 else None
            self.comparators.append(Comparator(
                preamp=preamp, noise_rms=self.noise_rms, rng=noise_rng))

    def offsets(self) -> np.ndarray:
        """The drawn input-referred offsets [V]."""
        return np.array([c.preamp.offset for c in self.comparators])

    def with_bias(self, i_bias: float) -> "ComparatorBank":
        """Same chip (same offsets) at a new bias current."""
        clone = ComparatorBank.__new__(ComparatorBank)
        clone.n = self.n
        clone.i_bias = i_bias
        clone.pair_w, clone.pair_l = self.pair_w, self.pair_l
        clone.mismatch = self.mismatch
        clone.noise_rms = self.noise_rms
        clone.seed = self.seed
        clone.temperature = self.temperature
        clone.ideal = self.ideal
        clone.comparators = [c.with_bias(i_bias) for c in self.comparators]
        return clone

    def decide_all(self, v_pos: np.ndarray,
                   v_neg: np.ndarray | float = 0.0) -> tuple[bool, ...]:
        """One clocked decision per comparator.

        ``v_pos`` supplies each comparator's positive input (length n);
        ``v_neg`` a shared or per-comparator negative input.
        """
        v_pos = np.asarray(v_pos, dtype=float)
        if v_pos.shape != (self.n,):
            raise ModelError(
                f"expected {self.n} inputs, got shape {v_pos.shape}")
        v_neg = np.broadcast_to(np.asarray(v_neg, dtype=float), (self.n,))
        return tuple(c.decide(float(p), float(m))
                     for c, p, m in zip(self.comparators, v_pos, v_neg))
