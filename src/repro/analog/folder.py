"""Current-mode folding stage (paper Fig. 5a, after Flynn & Allstot [14]).

A folder converts the input voltage to a differential current and folds
it with a row of current-steering cells whose references are spaced one
fold apart: as the input sweeps the full scale, the differential output
current zig-zags, crossing zero once per fold.  The fine ADC then only
needs to digitise *within* one fold.

Behavioural model: between consecutive zero crossings the output is a
sine arch of alternating polarity.  For a matched folder this glues
into a single sinusoid of period two folds -- the standard behavioural
abstraction of a current-mode folder, with two properties that are also
true of the silicon:

* zero crossings sit exactly on the (offset-shifted) references, which
  is where all the fine-code information lives;
* current-averaging interpolation between two staggered folders is
  *exact* at every stage (sin a + sin b = 2 sin((a+b)/2) cos(...)), so
  an ideal chain has zero INL and every non-linearity in the model
  comes from an explicit, physical mismatch term.

Mismatch enters as per-crossing reference offsets (folder pair V_T
mismatch) and per-pair gain errors (arch amplitude imbalance, which
deflects *interpolated* crossings -- the ref. [15] distortion
mechanism).

In the paper the folder's output is split 1:1:2 so that the first 2x
interpolation stage merges into the folder itself; :meth:`outputs_1_1_2`
exposes exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import T_NOMINAL
from ..devices.parameters import GENERIC_180NM, Technology
from ..errors import ModelError


@dataclass(frozen=True)
class CurrentFolder:
    """One folding amplifier.

    Attributes:
        references: Zero-crossing reference voltages, ascending [V].
            Include dummy references beyond the conversion range (see
            :func:`FolderBank`) so edge crossings behave like interior
            ones.
        i_unit: Tail current of each folding cell = arch amplitude [A].
        tech: Technology (kept for bias-voltage queries).
        pair_offsets: Per-crossing input-referred offsets [V]
            (mismatch); zeros when ideal.
        pair_gain_errors: Per-crossing relative current errors
            (mismatch); they scale the adjacent arch amplitudes.
        temperature: Junction temperature [K].
    """

    references: tuple[float, ...]
    i_unit: float
    tech: Technology = field(default_factory=lambda: GENERIC_180NM)
    pair_offsets: tuple[float, ...] = ()
    pair_gain_errors: tuple[float, ...] = ()
    temperature: float = T_NOMINAL

    def __post_init__(self) -> None:
        if self.i_unit <= 0.0:
            raise ModelError(f"i_unit must be positive: {self.i_unit}")
        if len(self.references) < 2:
            raise ModelError("folder needs at least two references")
        refs = list(self.references)
        if any(a >= b for a, b in zip(refs, refs[1:])):
            raise ModelError("references must be strictly ascending")
        for name, extras in (("pair_offsets", self.pair_offsets),
                             ("pair_gain_errors", self.pair_gain_errors)):
            if extras and len(extras) != len(refs):
                raise ModelError(
                    f"{name} must match the reference count "
                    f"({len(extras)} vs {len(refs)})")

    @property
    def folding_factor(self) -> int:
        """Number of zero crossings (including dummies)."""
        return len(self.references)

    def with_bias(self, i_unit: float) -> "CurrentFolder":
        """Retuned copy (the PMU scaling operation)."""
        return CurrentFolder(
            references=self.references, i_unit=i_unit, tech=self.tech,
            pair_offsets=self.pair_offsets,
            pair_gain_errors=self.pair_gain_errors,
            temperature=self.temperature)

    def crossing_positions(self) -> np.ndarray:
        """Actual crossing voltages: references plus offsets [V]."""
        refs = np.asarray(self.references, dtype=float)
        if self.pair_offsets:
            refs = refs + np.asarray(self.pair_offsets, dtype=float)
        return refs

    def output_current(self, vin: np.ndarray | float) -> np.ndarray | float:
        """Folded differential output current [A]."""
        v = np.atleast_1d(np.asarray(vin, dtype=float))
        crossings = self.crossing_positions()
        if np.any(np.diff(crossings) <= 0.0):
            raise ModelError(
                "mismatch offsets reordered the crossings; "
                "folder is broken (offsets too large for the pitch)")
        gains = (1.0 + np.asarray(self.pair_gain_errors, dtype=float)
                 if self.pair_gain_errors
                 else np.ones(len(self.references)))
        k = np.clip(np.searchsorted(crossings, v) - 1,
                    0, crossings.size - 2)
        x_lo = crossings[k]
        x_hi = crossings[k + 1]
        t = (v - x_lo) / (x_hi - x_lo)
        amplitude = 0.5 * (gains[k] + gains[k + 1]) * self.i_unit
        sign = np.where(k % 2 == 0, 1.0, -1.0)
        result = sign * amplitude * np.sin(np.pi * t)
        return float(result[0]) if np.isscalar(vin) else result

    def outputs_1_1_2(self, vin: np.ndarray | float) -> tuple:
        """The paper's three-way output split (I, I, 2I) of Fig. 5a.

        The double-weight branch feeds the merged first interpolation
        stage; the two unit branches feed the neighbouring interpolators.
        """
        base = self.output_current(vin)
        return (base, base, 2.0 * np.asarray(base, dtype=float))

    def crossing_estimates(self, span: tuple[float, float],
                           points: int = 4001) -> np.ndarray:
        """Numerically locate the output zero crossings inside ``span``.

        Used by tests to confirm crossings land on the references (and
        to measure how far mismatch moves them).
        """
        grid = np.linspace(span[0], span[1], points)
        current = self.output_current(grid)
        sign_change = np.nonzero(np.diff(np.signbit(current)))[0]
        crossings = []
        for idx in sign_change:
            x1, x2 = grid[idx], grid[idx + 1]
            y1, y2 = current[idx], current[idx + 1]
            crossings.append(x1 - y1 * (x2 - x1) / (y2 - y1))
        return np.asarray(crossings)


def FolderBank(n_folders: int, full_scale: tuple[float, float],
               folding_factor: int, n_signals: int, i_unit: float,
               dummy_folds: int = 2,
               tech: Technology | None = None,
               temperature: float = T_NOMINAL) -> list[CurrentFolder]:
    """Build the staggered folder bank of an FAI fine path.

    ``n_folders`` folders each fold the range ``folding_factor`` times;
    interpolation later expands them to ``n_signals`` signals (one per
    fine LSB).  Folder j's first in-range crossing is placed at

        lo + LSB * (j * n_signals / n_folders + 1)

    so that after interpolation, signal m's crossings sit exactly at
    code boundaries m+1, m+1+n_signals, ... -- the convention of
    :func:`repro.digital.encoder.cyclic_fine_thermometer`.

    ``dummy_folds`` extra references beyond each range end keep the
    edge arches shaped like interior ones (the standard dummy-folding-
    cell technique); their tail currents are real and counted by the
    power model.
    """
    if n_folders < 1:
        raise ModelError(f"n_folders must be >= 1: {n_folders}")
    if n_signals % n_folders != 0:
        raise ModelError(
            f"n_signals ({n_signals}) must be a multiple of "
            f"n_folders ({n_folders})")
    if dummy_folds < 1:
        raise ModelError(f"dummy_folds must be >= 1: {dummy_folds}")
    lo, hi = full_scale
    if hi <= lo:
        raise ModelError("full_scale must be an ascending pair")
    tech = tech or GENERIC_180NM
    fold_width = (hi - lo) / folding_factor
    lsb = fold_width / n_signals
    stride = n_signals // n_folders
    folders = []
    for j in range(n_folders):
        refs = tuple(lo + lsb * (j * stride + 1) + k * fold_width
                     for k in range(-dummy_folds,
                                    folding_factor + dummy_folds))
        folders.append(CurrentFolder(
            references=refs, i_unit=i_unit, tech=tech,
            temperature=temperature))
    return folders
