"""Power-scalable subthreshold current-mode analog blocks (paper Sec. II-B
and III-A).

Everything here is built on the same source-coupled primitive as the
STSCL gates, which is the paper's central point: scaling one bias
current scales the bandwidth of every block while gains, swings and
phase margins stay put (the exponential I-V keeps bias *voltages*
logarithmic in current).

Blocks: transconductor, the current-mode folder and interpolator of
Fig. 5, the pre-amplifier with the D_Well-decoupling load trick of
Fig. 6, the regenerative comparator, the tunable high-value PMOS
resistor ladder of Fig. 7, and the bias-distribution tree.
"""

from .transconductor import SubthresholdTransconductor
from .folder import CurrentFolder, FolderBank
from .interpolator import CurrentInterpolator
from .preamp import Preamp, preamp_output_circuit
from .comparator import Comparator, ComparatorBank
from .ladder import PmosResistor, ResistorLadder, LadderBiasScheme
from .bias import CurrentMirror, BiasTree
from .filters import GmCBiquad, gm_c_biquad_circuit

__all__ = [
    "SubthresholdTransconductor",
    "CurrentFolder", "FolderBank",
    "CurrentInterpolator",
    "Preamp", "preamp_output_circuit",
    "Comparator", "ComparatorBank",
    "PmosResistor", "ResistorLadder", "LadderBiasScheme",
    "CurrentMirror", "BiasTree",
    "GmCBiquad", "gm_c_biquad_circuit",
]
