"""Bias generation and distribution: mirrors and the single-knob tree.

Fig. 1's architecture: one controlling bias current I_C feeds a mirror
tree whose branches bias every analog block, and a fixed *fraction*
I_C,DIG of it biases the STSCL replica generator -- so one knob scales
the whole mixed-signal system (the claim the E3 power-scaling benchmark
demonstrates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import T_NOMINAL, thermal_voltage
from ..devices.mismatch import MismatchModel, PELGROM_180NM
from ..errors import DesignError, ModelError


@dataclass(frozen=True)
class CurrentMirror:
    """A weak-inversion current mirror with Pelgrom gain error.

    Attributes:
        ratio: Nominal output/input current ratio.
        w, l: Device size [m] (sets the mismatch sigma).
        gain_error: Frozen relative gain error of this instance.
    """

    ratio: float = 1.0
    w: float = 2.0e-6
    l: float = 2.0e-6
    gain_error: float = 0.0

    def __post_init__(self) -> None:
        if self.ratio <= 0.0:
            raise ModelError(f"ratio must be positive: {self.ratio}")

    def output(self, i_in: float) -> float:
        """Mirrored current [A]."""
        if i_in < 0.0:
            raise ModelError(f"input current must be >= 0: {i_in}")
        return i_in * self.ratio * (1.0 + self.gain_error)

    @classmethod
    def sampled(cls, ratio: float, rng: np.random.Generator,
                w: float = 2.0e-6, l: float = 2.0e-6,
                mismatch: MismatchModel = PELGROM_180NM,
                n: float = 1.3,
                temperature: float = T_NOMINAL) -> "CurrentMirror":
        """Draw one mirror instance with Pelgrom-scaled gain error."""
        ut = thermal_voltage(temperature)
        sigma = mismatch.sigma_mirror_gain(w, l, n, ut)
        return cls(ratio=ratio, w=w, l=l,
                   gain_error=float(rng.normal(0.0, sigma)))


@dataclass
class BiasTree:
    """The single-knob bias distribution of Fig. 1.

    Branches are registered with a name and a ratio relative to the
    master control current I_C; reading a branch applies the (optionally
    mismatched) mirror.  ``digital_fraction`` is the paper's
    I_C,DIG / I_C.
    """

    digital_fraction: float = 0.05
    seed: int | None = None
    ideal: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.digital_fraction <= 1.0:
            raise DesignError(
                f"digital_fraction must be in (0,1]: "
                f"{self.digital_fraction}")
        self._rng = np.random.default_rng(self.seed)
        self._branches: dict[str, CurrentMirror] = {}
        self.add_branch("digital", self.digital_fraction)

    def add_branch(self, name: str, ratio: float) -> None:
        """Register a mirror branch ``name`` at ``ratio`` : 1."""
        if name in self._branches:
            raise DesignError(f"branch {name!r} already exists")
        if self.ideal:
            self._branches[name] = CurrentMirror(ratio=ratio)
        else:
            self._branches[name] = CurrentMirror.sampled(
                ratio, self._rng)

    def branch_current(self, name: str, i_control: float) -> float:
        """Bias current delivered to branch ``name`` at master
        current ``i_control`` [A]."""
        if i_control <= 0.0:
            raise DesignError(
                f"control current must be positive: {i_control}")
        try:
            mirror = self._branches[name]
        except KeyError:
            raise DesignError(f"no branch named {name!r}") from None
        return mirror.output(i_control)

    def digital_current(self, i_control: float) -> float:
        """I_C,DIG = fraction * I_C (Sec. III intro)."""
        return self.branch_current("digital", i_control)

    def total_current(self, i_control: float) -> float:
        """Sum over all branches plus the master itself [A]."""
        branches = sum(m.output(i_control)
                       for m in self._branches.values())
        return i_control + branches

    def branch_names(self) -> list[str]:
        return list(self._branches)
