"""Subthreshold differential transconductor: the V-to-I primitive.

A source-coupled pair in weak inversion steers its tail current as

    I_diff(v) = I_bias * tanh(v / (2 n U_T))

-- the same element that switches an STSCL gate, reused linearly around
v = 0.  Scaling I_bias scales g_m (and with it every downstream
bandwidth) proportionally while the linear input range, set only by
n U_T, stays constant: that is the "compatible power-frequency
behaviour" the paper builds the common PMU on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..constants import T_NOMINAL, thermal_voltage
from ..devices.parameters import GENERIC_180NM, Technology
from ..errors import ModelError


@dataclass(frozen=True)
class SubthresholdTransconductor:
    """A weak-inversion differential pair used as a transconductor.

    Attributes:
        i_bias: Tail current [A].
        tech: Technology (slope factor source).
        offset: Input-referred offset [V] (mismatch).
        gain_error: Relative tail-current error (mismatch).
        temperature: Junction temperature [K].
    """

    i_bias: float
    tech: Technology = field(default_factory=lambda: GENERIC_180NM)
    offset: float = 0.0
    gain_error: float = 0.0
    temperature: float = T_NOMINAL

    def __post_init__(self) -> None:
        if self.i_bias <= 0.0:
            raise ModelError(f"i_bias must be positive: {self.i_bias}")

    def with_bias(self, i_bias: float) -> "SubthresholdTransconductor":
        """Retuned copy -- the PMU scaling operation."""
        return SubthresholdTransconductor(
            i_bias=i_bias, tech=self.tech, offset=self.offset,
            gain_error=self.gain_error, temperature=self.temperature)

    @property
    def _scale(self) -> float:
        """Input normalisation 2 n U_T [V]."""
        return 2.0 * self.tech.nmos.n * thermal_voltage(self.temperature)

    def output_current(self, v_diff: np.ndarray | float) -> np.ndarray | float:
        """Differential output current at input ``v_diff`` [A]."""
        effective = np.asarray(v_diff, dtype=float) - self.offset
        i_tail = self.i_bias * (1.0 + self.gain_error)
        result = i_tail * np.tanh(effective / self._scale)
        return float(result) if np.isscalar(v_diff) else result

    def transconductance(self) -> float:
        """Small-signal g_m at balance [S]: I_bias / (2 n U_T)."""
        return self.i_bias * (1.0 + self.gain_error) / self._scale

    def linear_range(self, compression: float = 0.01) -> float:
        """Input amplitude where gm drops by ``compression`` [V].

        Independent of I_bias -- the structural reason the block scales.
        """
        if not 0.0 < compression < 1.0:
            raise ModelError(f"compression must be in (0,1): {compression}")
        # gm(v)/gm(0) = sech^2(v/s); solve sech^2 = 1 - compression.
        return self._scale * math.acosh(1.0 / math.sqrt(1.0 - compression))

    def bandwidth(self, c_load: float) -> float:
        """Unity-gain bandwidth g_m / (2 pi C) [Hz] into ``c_load``."""
        if c_load <= 0.0:
            raise ModelError(f"c_load must be positive: {c_load}")
        return self.transconductance() / (2.0 * math.pi * c_load)
